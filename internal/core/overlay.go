package core

import (
	"fmt"
	"math/big"
	"sync"

	"drugtree/internal/integrate"
	"drugtree/internal/phylo"
	"drugtree/internal/query"
	"drugtree/internal/store"
)

// Incremental subtree-overlay maintenance. The hot interactive shape —
// "ligand activity aggregated over this clade" — is a WITHIN_SUBTREE
// aggregate over the activities table. ActivityOverlay keeps, for
// every tree node, the (rows, count, exact sum) of affinity over all
// activity rows whose protein sits inside that node's subtree, updated
// from the store's commit-event stream: each changed row costs one
// walk up its leaf's ancestor chain (O(changed rows × depth)) instead
// of a full recompute. The overlay is versioned with the activities
// table's commit version, so the optimizer substitutes an O(1)
// OverlayRead for the scan exactly when a statement's pinned snapshot
// matches (see query/overlay.go).

// overlayKeyColumn and overlayMetricColumn name the activities columns
// the overlay is keyed and summed on.
const (
	overlayKeyColumn    = "protein_id"
	overlayMetricColumn = "affinity"
)

// exactSum accumulates float64 values exactly: each addend f is the
// integer f × 2^1074 (every finite float64 is an integer multiple of
// 2^-1074), summed in arbitrary-precision integers. Add and remove are
// exact inverses, so an overlay maintained by incremental deltas lands
// on bit-identical state to one rebuilt from scratch regardless of the
// order rows arrived or left in — the T14 byte-identity gate rests on
// this.
type exactSum struct{ acc big.Int }

// fixedPoint returns f × 2^1074 as an exact integer.
func fixedPoint(f float64) *big.Int {
	bf := new(big.Float).SetFloat64(f)
	bf.SetMantExp(bf, 1074)
	i, _ := bf.Int(nil)
	return i
}

// Float64 rounds the exact accumulator to the nearest float64 — one
// correctly-rounded conversion, no intermediate rounding.
func (s *exactSum) Float64() float64 {
	prec := uint(s.acc.BitLen()) + 1
	if prec < 64 {
		prec = 64
	}
	bf := new(big.Float).SetPrec(prec).SetInt(&s.acc)
	bf.SetMantExp(bf, -1074)
	f, _ := bf.Float64()
	return f
}

// ActivityOverlay implements query.SubtreeOverlay over the activities
// table. Safe for concurrent use: Read takes a read lock, commit-event
// application a write lock.
type ActivityOverlay struct {
	tree      *phylo.Tree
	keyIdx    int
	metricIdx int
	nameToPre map[string]int
	parent    []int // preorder → parent preorder, -1 at the root

	mu      sync.RWMutex
	ready   bool
	version int64
	// pending buffers events that land while the base image is still
	// loading; they replay (version-filtered) once the load finishes.
	pending []store.CommitEvent
	rows    []int64
	count   []int64
	sums    []exactSum
}

// newOverlayShell allocates the per-node state and tree mappings.
func newOverlayShell(tree *phylo.Tree, schema *store.Schema) (*ActivityOverlay, error) {
	keyIdx := schema.ColumnIndex(overlayKeyColumn)
	metricIdx := schema.ColumnIndex(overlayMetricColumn)
	if keyIdx < 0 || metricIdx < 0 {
		return nil, fmt.Errorf("core: activities table lacks %s/%s columns", overlayKeyColumn, overlayMetricColumn)
	}
	n := tree.Len()
	o := &ActivityOverlay{
		tree:      tree,
		keyIdx:    keyIdx,
		metricIdx: metricIdx,
		nameToPre: make(map[string]int, n),
		parent:    make([]int, n),
		rows:      make([]int64, n),
		count:     make([]int64, n),
		sums:      make([]exactSum, n),
	}
	for p := 0; p < n; p++ {
		id := tree.NodeAtPre(p)
		node := tree.Node(id)
		if node.Name != "" {
			o.nameToPre[node.Name] = p
		}
		if node.Parent == phylo.None {
			o.parent[p] = -1
		} else {
			o.parent[p] = tree.Pre(node.Parent)
		}
	}
	return o, nil
}

// NewActivityOverlay builds the overlay against the current activities
// version and keeps it current from the database's commit-event
// stream. The subscription is registered before the base image loads;
// commits landing mid-load are buffered and replayed version-filtered,
// so none is missed or double-applied.
func NewActivityOverlay(db *store.DB, tree *phylo.Tree) (*ActivityOverlay, error) {
	t, err := db.Table(integrate.TableActivities)
	if err != nil {
		return nil, err
	}
	o, err := newOverlayShell(tree, t.Schema())
	if err != nil {
		return nil, err
	}
	db.OnCommit(o.onCommit)
	snap := db.PinSnapshot()
	defer snap.Release()
	tv, err := snap.View(integrate.TableActivities)
	if err != nil {
		return nil, err
	}
	// All store reads happen before taking o.mu: the commit hook runs
	// under the table lock and takes o.mu, so the reverse order here
	// would be a lock-order cycle.
	ver := tv.Version()
	base := tv.Snapshot()
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, r := range base {
		o.bumpLocked(r, +1)
	}
	o.version = ver
	o.ready = true
	for _, ev := range o.pending {
		if ev.Version > ver {
			o.applyLocked(ev)
		}
	}
	o.pending = nil
	return o, nil
}

// RebuildActivityOverlay computes the overlay from scratch against the
// image pinned by snap, without subscribing to commits — the full-
// recompute oracle T14 compares the live overlay against.
func RebuildActivityOverlay(snap *store.SnapshotHandle, tree *phylo.Tree) (*ActivityOverlay, error) {
	tv, err := snap.View(integrate.TableActivities)
	if err != nil {
		return nil, err
	}
	o, err := newOverlayShell(tree, tv.Table().Schema())
	if err != nil {
		return nil, err
	}
	ver := tv.Version()
	base := tv.Snapshot()
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, r := range base {
		o.bumpLocked(r, +1)
	}
	o.version = ver
	o.ready = true
	return o, nil
}

// onCommit is the db hook: it applies activities deltas in commit
// order. It runs inside the table's commit critical section, so the
// overlay version is never behind the latest commit once the call
// returns.
func (o *ActivityOverlay) onCommit(ev store.CommitEvent) {
	if ev.Table != integrate.TableActivities {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.ready {
		o.pending = append(o.pending, ev)
		return
	}
	o.applyLocked(ev)
}

func (o *ActivityOverlay) applyLocked(ev store.CommitEvent) {
	for _, r := range ev.Inserted {
		o.bumpLocked(r, +1)
	}
	for _, r := range ev.Deleted {
		o.bumpLocked(r, -1)
	}
	o.version = ev.Version
}

// bumpLocked propagates one row up its key node's ancestor chain.
// Aggregation semantics mirror the executor's aggState: every row
// counts toward Rows, non-NULL metrics toward Count, numeric metrics
// toward Sum. Rows keyed outside the tree contribute nothing — the
// scan path's subtree-membership test would not match them either.
func (o *ActivityOverlay) bumpLocked(r store.Row, sign int64) {
	key := r[o.keyIdx]
	if key.K != store.KindString {
		return
	}
	pre, ok := o.nameToPre[key.S]
	if !ok {
		return
	}
	m := r[o.metricIdx]
	nonNull := !m.IsNull()
	var fx *big.Int
	if nonNull && m.Numeric() {
		fx = fixedPoint(m.AsFloat())
	}
	for p := pre; p >= 0; p = o.parent[p] {
		o.rows[p] += sign
		if nonNull {
			o.count[p] += sign
		}
		if fx != nil {
			if sign > 0 {
				o.sums[p].acc.Add(&o.sums[p].acc, fx)
			} else {
				o.sums[p].acc.Sub(&o.sums[p].acc, fx)
			}
		}
	}
}

// Table implements query.SubtreeOverlay.
func (o *ActivityOverlay) Table() string { return integrate.TableActivities }

// KeyColumn implements query.SubtreeOverlay.
func (o *ActivityOverlay) KeyColumn() string { return overlayKeyColumn }

// MetricColumn implements query.SubtreeOverlay.
func (o *ActivityOverlay) MetricColumn() string { return overlayMetricColumn }

// Read implements query.SubtreeOverlay: the aggregate for the named
// node as of exactly the requested activities commit version. ok is
// false on a version mismatch or unknown node — the caller falls back
// to scanning its snapshot.
func (o *ActivityOverlay) Read(node string, version int64) (query.OverlayAgg, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if !o.ready || version != o.version {
		return query.OverlayAgg{}, false
	}
	pre, ok := o.nameToPre[node]
	if !ok {
		return query.OverlayAgg{}, false
	}
	return o.aggLocked(pre), true
}

// Version returns the activities commit version the overlay reflects.
func (o *ActivityOverlay) Version() int64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.version
}

// Nodes returns the number of tree nodes the overlay covers.
func (o *ActivityOverlay) Nodes() int { return len(o.rows) }

// Agg returns the aggregate at preorder position p — the comparison
// hook the T14 byte-identity gate walks.
func (o *ActivityOverlay) Agg(p int) query.OverlayAgg {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.aggLocked(p)
}

func (o *ActivityOverlay) aggLocked(p int) query.OverlayAgg {
	return query.OverlayAgg{Rows: o.rows[p], Count: o.count[p], Sum: o.sums[p].Float64()}
}
