package core

import (
	"context"
	"fmt"
)

// ActivitySummary aggregates the binding activity measured beneath
// one tree node — the core DrugTree overlay: ligand data summarized
// along the phylogeny.
type ActivitySummary struct {
	Node        string
	Proteins    int64 // leaves in the subtree
	Activities  int64 // measurements over those leaves
	MeanAff     float64
	MaxAff      float64
	DistinctLig int64
}

// SubtreeActivity computes the activity summary under the named node
// through the DTQL engine (exercising the subtree rewrite + joins).
func (e *Engine) SubtreeActivity(ctx context.Context, nodeName string) (*ActivitySummary, error) {
	id, err := e.NodeByName(nodeName)
	if err != nil {
		return nil, err
	}
	res, err := e.Query(ctx, fmt.Sprintf(
		`SELECT COUNT(*) AS n, AVG(a.affinity) AS mean_aff, MAX(a.affinity) AS max_aff
		 FROM tree_nodes t
		 JOIN activities a ON t.name = a.protein_id
		 WHERE WITHIN_SUBTREE(t.pre, '%s') AND t.is_leaf = TRUE`, nodeName))
	if err != nil {
		return nil, err
	}
	out := &ActivitySummary{Node: nodeName, Proteins: int64(e.tree.LeafCount(id))}
	if len(res.Rows) == 1 {
		r := res.Rows[0]
		out.Activities = r[0].I
		if !r[1].IsNull() {
			out.MeanAff = r[1].F
		}
		if !r[2].IsNull() {
			out.MaxAff = r[2].AsFloat()
		}
	}
	// Distinct ligands: count grouped ligand_ids.
	res2, err := e.Query(ctx, fmt.Sprintf(
		`SELECT a.ligand_id, COUNT(*) FROM tree_nodes t
		 JOIN activities a ON t.name = a.protein_id
		 WHERE WITHIN_SUBTREE(t.pre, '%s') AND t.is_leaf = TRUE
		 GROUP BY a.ligand_id`, nodeName))
	if err != nil {
		return nil, err
	}
	out.DistinctLig = int64(len(res2.Rows))
	return out, nil
}

// LigandHit is one row of a top-ligand ranking.
type LigandHit struct {
	LigandID string
	Count    int64
	MeanAff  float64
	MaxAff   float64
}

// TopLigands ranks ligands by mean affinity across the subtree's
// proteins, strongest first, requiring at least minMeasurements.
func (e *Engine) TopLigands(ctx context.Context, nodeName string, k, minMeasurements int) ([]LigandHit, error) {
	if _, err := e.NodeByName(nodeName); err != nil {
		return nil, err
	}
	res, err := e.Query(ctx, fmt.Sprintf(
		`SELECT a.ligand_id AS lig, COUNT(*) AS n, AVG(a.affinity) AS mean_aff, MAX(a.affinity) AS max_aff
		 FROM tree_nodes t
		 JOIN activities a ON t.name = a.protein_id
		 WHERE WITHIN_SUBTREE(t.pre, '%s') AND t.is_leaf = TRUE
		 GROUP BY a.ligand_id
		 ORDER BY mean_aff DESC`, nodeName))
	if err != nil {
		return nil, err
	}
	var out []LigandHit
	for _, r := range res.Rows {
		hit := LigandHit{LigandID: r[0].S, Count: r[1].I}
		if !r[2].IsNull() {
			hit.MeanAff = r[2].F
		}
		if !r[3].IsNull() {
			hit.MaxAff = r[3].AsFloat()
		}
		if hit.Count < int64(minMeasurements) {
			continue
		}
		out = append(out, hit)
		if k > 0 && len(out) >= k {
			break
		}
	}
	return out, nil
}

// ProteinProfile joins one protein's integrated records: annotation
// plus its activity list.
type ProteinProfile struct {
	Accession  string
	Family     string
	Organism   string
	EC         string
	Activities []LigandHit
}

// ProteinProfile gathers the cross-source profile of one protein (the
// three-source integration query class).
func (e *Engine) ProteinProfile(ctx context.Context, accession string) (*ProteinProfile, error) {
	res, err := e.Query(ctx, fmt.Sprintf(
		`SELECT p.accession, p.family, n.organism, n.ec
		 FROM proteins p JOIN annotations n ON p.accession = n.protein_id
		 WHERE p.accession = '%s'`, accession))
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("core: no protein %q", accession)
	}
	r := res.Rows[0]
	out := &ProteinProfile{Accession: r[0].S, Family: r[1].S, Organism: r[2].S, EC: r[3].S}
	res2, err := e.Query(ctx, fmt.Sprintf(
		`SELECT a.ligand_id, a.affinity FROM activities a
		 WHERE a.protein_id = '%s' ORDER BY a.affinity DESC`, accession))
	if err != nil {
		return nil, err
	}
	for _, ar := range res2.Rows {
		out.Activities = append(out.Activities, LigandHit{
			LigandID: ar[0].S, Count: 1, MeanAff: ar[1].F, MaxAff: ar[1].F,
		})
	}
	return out, nil
}

// SimilarLigand is one hit of a chemical similarity search.
type SimilarLigand struct {
	LigandID   string
	SMILES     string
	Similarity float64
}

// SimilarLigands ranks the ligand table by Tanimoto similarity to a
// query structure, strongest first, returning up to k hits with
// similarity ≥ threshold. It runs through DTQL so the TANIMOTO
// operator, top-k execution, and caching all apply.
func (e *Engine) SimilarLigands(ctx context.Context, smiles string, k int, threshold float64) ([]SimilarLigand, error) {
	if k <= 0 {
		k = 10
	}
	res, err := e.Query(ctx, fmt.Sprintf(
		`SELECT ligand_id, smiles, TANIMOTO(smiles, '%s') AS sim
		 FROM ligands
		 WHERE TANIMOTO(smiles, '%s') >= %g
		 ORDER BY sim DESC LIMIT %d`, smiles, smiles, threshold, k))
	if err != nil {
		return nil, err
	}
	out := make([]SimilarLigand, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, SimilarLigand{
			LigandID:   r[0].S,
			SMILES:     r[1].S,
			Similarity: r[2].F,
		})
	}
	return out, nil
}

// FamilyEnrichment finds the clades most enriched for strong binders
// of one ligand: for each internal node at most maxDepth deep, the
// mean affinity of the ligand across its subtree leaves.
type EnrichedClade struct {
	Clade   string
	Leaves  int64
	Hits    int64
	MeanAff float64
}

// FamilyEnrichment ranks clades by mean affinity for the ligand.
func (e *Engine) FamilyEnrichment(ctx context.Context, ligandID string, maxDepth, topK int) ([]EnrichedClade, error) {
	var out []EnrichedClade
	for i := 0; i < e.tree.Len(); i++ {
		id := e.tree.NodeAtPre(i)
		n := e.tree.Node(id)
		if n.IsLeaf() || e.tree.Depth(id) > maxDepth {
			continue
		}
		res, err := e.Query(ctx, fmt.Sprintf(
			`SELECT COUNT(*) AS n, AVG(a.affinity) AS mean_aff
			 FROM tree_nodes t JOIN activities a ON t.name = a.protein_id
			 WHERE WITHIN_SUBTREE(t.pre, '%s') AND t.is_leaf = TRUE AND a.ligand_id = '%s'`,
			n.Name, ligandID))
		if err != nil {
			return nil, err
		}
		if len(res.Rows) != 1 || res.Rows[0][0].I == 0 {
			continue
		}
		out = append(out, EnrichedClade{
			Clade:   n.Name,
			Leaves:  int64(e.tree.LeafCount(id)),
			Hits:    res.Rows[0][0].I,
			MeanAff: res.Rows[0][1].F,
		})
	}
	// Sort by mean affinity, strongest first (insertion sort; clade
	// lists are small).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].MeanAff > out[j-1].MeanAff; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if topK > 0 && len(out) > topK {
		out = out[:topK]
	}
	return out, nil
}
