package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"drugtree/internal/datagen"
	"drugtree/internal/integrate"
	"drugtree/internal/netsim"
	"drugtree/internal/query"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

// TestConcurrentQueriesDuringResync hammers one engine from many
// goroutines while the importer re-syncs the source tables — the
// server's steady state when a background refresh lands mid-session.
// Run under -race this is the executor's thread-safety certificate:
// parallel scans share row snapshots with writers, ExecStats counters
// are updated from worker pools, and the statement cache is off so
// every query truly executes.
func TestConcurrentQueriesDuringResync(t *testing.T) {
	gen := datagen.DefaultConfig()
	gen.NumFamilies = 3
	gen.ProteinsPerFamily = 8
	gen.NumLigands = 15
	gen.ActivityDensity = 0.5
	ds, err := datagen.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	bundle := source.NewBundle(ds, netsim.ProfileLAN, 5, true)
	importer := integrate.NewImporter(db, bundle)
	if _, err := importer.ImportAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.QueryOptions.Parallelism = 4 // force parallel operators even on 1 CPU
	e, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{
		"SELECT COUNT(*) FROM proteins",
		"SELECT family, COUNT(*), AVG(length) FROM proteins GROUP BY family",
		"SELECT p.accession, a.ligand_id FROM proteins p JOIN activities a ON p.accession = a.protein_id WHERE a.affinity > 6",
		"SELECT protein_id, COUNT(DISTINCT ligand_id) FROM activities GROUP BY protein_id",
		"SELECT name FROM tree_nodes WHERE is_leaf = TRUE ORDER BY name LIMIT 5",
	}

	const (
		workers      = 8
		perWorker    = 25
		resyncRounds = 10
	)
	var (
		wg       sync.WaitGroup
		ran      int64
		firstErr atomic.Value
	)
	stop := make(chan struct{})
	// Re-sync loop: the importer is idempotent, so each round rewrites
	// the same logical rows while readers are mid-scan.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < resyncRounds; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := importer.ImportAll(context.Background()); err != nil {
				firstErr.Store(fmt.Errorf("resync: %w", err))
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := queries[(w+i)%len(queries)]
				if _, err := e.Query(context.Background(), q); err != nil {
					firstErr.Store(fmt.Errorf("worker %d: %q: %w", w, q, err))
					return
				}
				atomic.AddInt64(&ran, 1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		t.Fatal(err)
	}
	if ran != workers*perWorker {
		t.Fatalf("ran %d queries, want %d", ran, workers*perWorker)
	}
}

// TestQueryCancellationThroughCore verifies the context threads all
// the way from the core API into the executor.
func TestQueryCancellationThroughCore(t *testing.T) {
	e := buildEngine(t, DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Query(ctx, "SELECT COUNT(*) FROM proteins")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Navigation APIs share the same path.
	if _, err := e.Breadcrumbs(ctx, e.Root().Name); !errors.Is(err, context.Canceled) {
		t.Fatalf("Breadcrumbs err = %v, want context.Canceled", err)
	}
}

// TestParallelMatchesSerialThroughCore runs the analysis layer's
// query shapes under both executors via core engines sharing one
// database, pinning end-to-end equivalence above the query package.
func TestParallelMatchesSerialThroughCore(t *testing.T) {
	serialCfg := DefaultConfig()
	serialCfg.QueryOptions.Parallelism = 1
	serialCfg.CacheBytes = 0
	e := buildEngine(t, serialCfg)

	parallelOpts := query.DefaultOptions()
	parallelOpts.Parallelism = 4
	par := query.NewEngine(query.NewDBCatalog(e.DB(), e.Tree()), parallelOpts)

	queries := []string{
		"SELECT family, COUNT(*), AVG(length) FROM proteins GROUP BY family",
		`SELECT p.family, COUNT(*), AVG(a.affinity) FROM proteins p
		 JOIN activities a ON p.accession = a.protein_id GROUP BY p.family`,
		"SELECT COUNT(*) FROM tree_nodes WHERE is_leaf = TRUE",
	}
	for _, q := range queries {
		sres, err := e.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		pres, err := par.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("parallel %q: %v", q, err)
		}
		if len(sres.Rows) != len(pres.Rows) {
			t.Fatalf("%q: %d vs %d rows", q, len(sres.Rows), len(pres.Rows))
		}
		if sres.Plan != pres.Plan {
			t.Fatalf("%q: plans diverge:\n%s\nvs\n%s", q, sres.Plan, pres.Plan)
		}
	}
}
