package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"drugtree/internal/datagen"
	"drugtree/internal/integrate"
	"drugtree/internal/netsim"
	"drugtree/internal/query"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

// TestConcurrentQueriesDuringResync hammers one engine from many
// goroutines while the importer re-syncs the source tables — the
// server's steady state when a background refresh lands mid-session.
// Run under -race this is the executor's thread-safety certificate;
// beyond mere survival it asserts exact snapshot isolation: a probe
// table is rewritten generation by generation through atomic delta
// commits, and every reader must observe one complete generation —
// full row count, a single gen value — never a mix of two. The
// statement cache is off, so every query truly executes.
func TestConcurrentQueriesDuringResync(t *testing.T) {
	gen := datagen.DefaultConfig()
	gen.NumFamilies = 3
	gen.ProteinsPerFamily = 8
	gen.NumLigands = 15
	gen.ActivityDensity = 0.5
	ds, err := datagen.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	bundle := source.NewBundle(ds, netsim.ProfileLAN, 5, true)
	importer := integrate.NewImporter(db, bundle)
	if _, err := importer.ImportAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Isolation probe: probeRows rows that always share one gen value.
	// Each flip deletes the whole old generation and inserts the new
	// one in a single CommitDeltas, so a statement whose snapshot
	// straddled the publish would see COUNT != probeRows or
	// MIN(gen) != MAX(gen).
	const probeRows = 32
	probeSchema := store.MustSchema(
		store.Column{Name: "slot", Kind: store.KindInt},
		store.Column{Name: "gen", Kind: store.KindInt},
	)
	if _, err := db.CreateTable("ingest_probe", probeSchema); err != nil {
		t.Fatal(err)
	}
	probeGen := func(g int64) []store.Row {
		rows := make([]store.Row, probeRows)
		for i := range rows {
			rows[i] = store.Row{store.IntValue(int64(i)), store.IntValue(g)}
		}
		return rows
	}
	if err := db.CommitDeltas([]store.TableDelta{
		{Table: "ingest_probe", Inserts: probeGen(0)},
	}); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.QueryOptions.Parallelism = 4 // force parallel operators even on 1 CPU
	e, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{
		"SELECT COUNT(*) FROM proteins",
		"SELECT family, COUNT(*), AVG(length) FROM proteins GROUP BY family",
		"SELECT p.accession, a.ligand_id FROM proteins p JOIN activities a ON p.accession = a.protein_id WHERE a.affinity > 6",
		"SELECT protein_id, COUNT(DISTINCT ligand_id) FROM activities GROUP BY protein_id",
		"SELECT name FROM tree_nodes WHERE is_leaf = TRUE ORDER BY name LIMIT 5",
	}
	const probeQuery = "SELECT COUNT(*), MIN(gen), MAX(gen) FROM ingest_probe"

	const (
		workers      = 8
		perWorker    = 25
		resyncRounds = 10
	)
	var (
		wg       sync.WaitGroup
		ran      int64
		firstErr atomic.Value
	)
	stop := make(chan struct{})
	// Re-sync loop: each round diffs the same logical rows and flips
	// the probe generation while readers are mid-scan.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < resyncRounds; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := importer.Sync(context.Background()); err != nil {
				firstErr.Store(fmt.Errorf("resync: %w", err))
				return
			}
			var old []int64
			snap := db.PinSnapshot()
			if tv, verr := snap.View("ingest_probe"); verr == nil {
				tv.Scan(func(id int64, r store.Row) bool {
					old = append(old, id)
					return true
				})
			}
			snap.Release()
			if err := db.CommitDeltas([]store.TableDelta{{
				Table:     "ingest_probe",
				DeleteIDs: old,
				Inserts:   probeGen(int64(i + 1)),
			}}); err != nil {
				firstErr.Store(fmt.Errorf("probe flip: %w", err))
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := queries[(w+i)%len(queries)]
				if _, err := e.Query(context.Background(), q); err != nil {
					firstErr.Store(fmt.Errorf("worker %d: %q: %w", w, q, err))
					return
				}
				res, err := e.Query(context.Background(), probeQuery)
				if err != nil {
					firstErr.Store(fmt.Errorf("worker %d: probe: %w", w, err))
					return
				}
				row := res.Rows[0]
				if row[0].I != probeRows || row[1].I != row[2].I {
					firstErr.Store(fmt.Errorf(
						"worker %d: torn read: COUNT=%d MIN(gen)=%d MAX(gen)=%d",
						w, row[0].I, row[1].I, row[2].I))
					return
				}
				atomic.AddInt64(&ran, 1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		t.Fatal(err)
	}
	if ran != workers*perWorker {
		t.Fatalf("ran %d queries, want %d", ran, workers*perWorker)
	}
}

// TestQueryCancellationThroughCore verifies the context threads all
// the way from the core API into the executor.
func TestQueryCancellationThroughCore(t *testing.T) {
	e := buildEngine(t, DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Query(ctx, "SELECT COUNT(*) FROM proteins")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Navigation APIs share the same path.
	if _, err := e.Breadcrumbs(ctx, e.Root().Name); !errors.Is(err, context.Canceled) {
		t.Fatalf("Breadcrumbs err = %v, want context.Canceled", err)
	}
}

// TestParallelMatchesSerialThroughCore runs the analysis layer's
// query shapes under both executors via core engines sharing one
// database, pinning end-to-end equivalence above the query package.
func TestParallelMatchesSerialThroughCore(t *testing.T) {
	serialCfg := DefaultConfig()
	serialCfg.QueryOptions.Parallelism = 1
	serialCfg.CacheBytes = 0
	e := buildEngine(t, serialCfg)

	parallelOpts := query.DefaultOptions()
	parallelOpts.Parallelism = 4
	par := query.NewEngine(query.NewDBCatalog(e.DB(), e.Tree()), parallelOpts)

	queries := []string{
		"SELECT family, COUNT(*), AVG(length) FROM proteins GROUP BY family",
		`SELECT p.family, COUNT(*), AVG(a.affinity) FROM proteins p
		 JOIN activities a ON p.accession = a.protein_id GROUP BY p.family`,
		"SELECT COUNT(*) FROM tree_nodes WHERE is_leaf = TRUE",
	}
	for _, q := range queries {
		sres, err := e.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		pres, err := par.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("parallel %q: %v", q, err)
		}
		if len(sres.Rows) != len(pres.Rows) {
			t.Fatalf("%q: %d vs %d rows", q, len(sres.Rows), len(pres.Rows))
		}
		if sres.Plan != pres.Plan {
			t.Fatalf("%q: plans diverge:\n%s\nvs\n%s", q, sres.Plan, pres.Plan)
		}
	}
}
