package admission

import "time"

// AIMDConfig enables adaptive concurrency: the limiter probes upward
// by one slot every IncreaseEvery completions while latency stays at
// or under Target, and multiplicatively backs off when a completion
// comes in over Target — the TCP congestion-control shape, applied to
// a concurrency limit. Useful when the safe concurrency is unknown or
// shifts with workload (e.g. query mix changes service time).
type AIMDConfig struct {
	// Target is the per-unit-weight service-time ceiling; completions
	// above it signal saturation. Required (zero disables backoff).
	Target time.Duration
	// Min and Max bound the live limit (defaults 1 and
	// Config.MaxConcurrency).
	Min, Max int
	// IncreaseEvery is how many on-target completions buy one +1
	// probe (default 16).
	IncreaseEvery int
	// Backoff is the multiplicative-decrease factor in (0,1)
	// (default 0.5).
	Backoff float64
	// Cooldown is the minimum time between backoffs, so one burst of
	// slow completions counts as one congestion signal, not many
	// (default Target).
	Cooldown time.Duration
}

// normalize applies defaults and returns the starting limit.
func (a *AIMDConfig) normalize(maxConcurrency int) int {
	if a.Min <= 0 {
		a.Min = 1
	}
	if a.Max <= 0 {
		a.Max = maxConcurrency
	}
	if a.Max < a.Min {
		a.Max = a.Min
	}
	if a.IncreaseEvery <= 0 {
		a.IncreaseEvery = 16
	}
	if a.Backoff <= 0 || a.Backoff >= 1 {
		a.Backoff = 0.5
	}
	if a.Cooldown <= 0 {
		a.Cooldown = a.Target
	}
	return a.Max
}

// aimdState is the controller's mutable half (guarded by Limiter.mu).
type aimdState struct {
	onTarget    int
	lastBackoff time.Duration
	backedOff   bool
}

// aimdOnFinishLocked folds one completion into the controller,
// possibly moving l.limit. Caller holds l.mu.
func (l *Limiter) aimdOnFinishLocked(now time.Duration, svc time.Duration, weight int) {
	a := l.cfg.AIMD
	if a == nil || a.Target <= 0 {
		return
	}
	perUnit := svc / time.Duration(weight)
	if perUnit > a.Target {
		l.aimd.onTarget = 0
		if !l.aimd.backedOff || now-l.aimd.lastBackoff >= a.Cooldown {
			next := int(float64(l.limit) * a.Backoff)
			if next < a.Min {
				next = a.Min
			}
			l.limit = next
			l.aimd.lastBackoff = now
			l.aimd.backedOff = true
		}
		return
	}
	l.aimd.onTarget++
	if l.aimd.onTarget >= a.IncreaseEvery && l.limit < a.Max {
		l.limit++
		l.aimd.onTarget = 0
	}
}
