package admission

import (
	"sync"
	"time"

	"drugtree/internal/netsim"
)

// RateConfig tunes a RateLimiter.
type RateConfig struct {
	// QPS is the sustained per-client allowance (default 25).
	QPS float64
	// Burst is the bucket capacity (default 2×QPS, min 1).
	Burst float64
	// Clock supplies time; nil uses the wall clock.
	Clock netsim.Clock
	// IdleEvict forgets a client's bucket after this much inactivity
	// (default 10min) so the per-client map cannot grow without bound.
	IdleEvict time.Duration
	// MaxClients hard-bounds the tracked-client map (default 4096);
	// at the bound the stalest bucket is evicted.
	MaxClients int
}

// RateLimiter is a per-client token bucket keyed by session or remote
// ID. It protects fair share: one chatty client exhausts its own
// bucket, not the engine.
type RateLimiter struct {
	cfg   RateConfig
	clock netsim.Clock

	mu      sync.Mutex
	buckets map[string]*bucket
	allows  int // sweep cadence counter
}

type bucket struct {
	tokens float64
	last   time.Duration
}

// NewRateLimiter builds a limiter from cfg, applying defaults.
func NewRateLimiter(cfg RateConfig) *RateLimiter {
	if cfg.QPS <= 0 {
		cfg.QPS = 25
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 2 * cfg.QPS
	}
	if cfg.Burst < 1 {
		cfg.Burst = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = netsim.NewWallClock()
	}
	if cfg.IdleEvict <= 0 {
		cfg.IdleEvict = 10 * time.Minute
	}
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = 4096
	}
	return &RateLimiter{cfg: cfg, clock: cfg.Clock, buckets: make(map[string]*bucket)}
}

// Allow charges one request to client's bucket. It returns nil when
// admitted, or a *Rejection wrapping ErrRateLimited whose RetryAfter
// says when the next token lands.
func (rl *RateLimiter) Allow(client string) error {
	now := rl.clock.Now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	rl.allows++
	if rl.allows%256 == 0 || len(rl.buckets) >= rl.cfg.MaxClients {
		rl.sweepLocked(now)
	}
	b, ok := rl.buckets[client]
	if !ok {
		b = &bucket{tokens: rl.cfg.Burst}
		rl.buckets[client] = b
	} else {
		elapsed := (now - b.last).Seconds()
		b.tokens += elapsed * rl.cfg.QPS
		if b.tokens > rl.cfg.Burst {
			b.tokens = rl.cfg.Burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return nil
	}
	wait := time.Duration((1 - b.tokens) / rl.cfg.QPS * float64(time.Second))
	return &Rejection{Err: ErrRateLimited, RetryAfter: wait}
}

// Clients reports how many buckets are tracked.
func (rl *RateLimiter) Clients() int {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return len(rl.buckets)
}

// sweepLocked drops idle buckets; at the hard bound it also evicts
// the stalest live one so a new client can always be tracked.
func (rl *RateLimiter) sweepLocked(now time.Duration) {
	for k, b := range rl.buckets {
		if now-b.last >= rl.cfg.IdleEvict {
			delete(rl.buckets, k)
		}
	}
	if len(rl.buckets) < rl.cfg.MaxClients {
		return
	}
	var oldestKey string
	oldest := time.Duration(1<<63 - 1)
	for k, b := range rl.buckets {
		if b.last < oldest {
			oldest = b.last
			oldestKey = k
		}
	}
	if oldestKey != "" {
		delete(rl.buckets, oldestKey)
	}
}
