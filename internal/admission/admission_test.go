package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drugtree/internal/metrics"
	"drugtree/internal/netsim"
)

// take asserts a ticket resolved to an admission and returns the
// release function.
func take(t *testing.T, tk *Ticket) func() {
	t.Helper()
	select {
	case rel := <-tk.C():
		if rel == nil {
			t.Fatalf("ticket shed: %v", tk.Err())
		}
		return rel
	default:
		t.Fatal("ticket not resolved")
		return nil
	}
}

// pending asserts a ticket has not resolved yet.
func pending(t *testing.T, tk *Ticket) {
	t.Helper()
	select {
	case rel := <-tk.C():
		t.Fatalf("ticket resolved early (rel=%v err=%v)", rel != nil, tk.Err())
	default:
	}
}

// shedded asserts a ticket resolved to a shed and returns the reason.
func sheddedErr(t *testing.T, tk *Ticket) error {
	t.Helper()
	select {
	case rel := <-tk.C():
		if rel != nil {
			rel()
			t.Fatal("ticket admitted, want shed")
		}
		return tk.Err()
	default:
		t.Fatal("ticket not resolved")
		return nil
	}
}

func TestLimiterAdmitAndQueue(t *testing.T) {
	vc := netsim.NewVirtualClock()
	reg := metrics.NewRegistry()
	l := NewLimiter(Config{Name: "t", MaxConcurrency: 2, MaxQueue: 4, Clock: vc, Metrics: reg})
	ctx := context.Background()

	t1, err := l.Begin(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := l.Begin(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	rel1, rel2 := take(t, t1), take(t, t2)

	t3, err := l.Begin(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	pending(t, t3)
	if s := l.Stats(); s.Inflight != 2 || s.Queued != 1 || s.Admitted != 2 {
		t.Fatalf("stats = %+v", s)
	}

	vc.Sleep(10 * time.Millisecond)
	rel1()
	rel3 := take(t, t3)
	if s := l.Stats(); s.Inflight != 2 || s.Queued != 0 || s.Admitted != 3 {
		t.Fatalf("stats after wake = %+v", s)
	}
	rel2()
	rel3()
	rel3() // double release must be a no-op
	if s := l.Stats(); s.Inflight != 0 {
		t.Fatalf("inflight = %d after all releases", s.Inflight)
	}
	if got := reg.Counter("admission.t.admitted").Value(); got != 3 {
		t.Fatalf("admitted counter = %d", got)
	}
}

func TestLimiterQueueBound(t *testing.T) {
	vc := netsim.NewVirtualClock()
	l := NewLimiter(Config{MaxConcurrency: 1, MaxQueue: 2, Clock: vc})
	ctx := context.Background()

	t1, _ := l.Begin(ctx, 1)
	rel := take(t, t1)
	q1, _ := l.Begin(ctx, 1)
	q2, _ := l.Begin(ctx, 1)
	pending(t, q1)
	pending(t, q2)

	_, err := l.Begin(ctx, 1)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third waiter got %v, want ErrQueueFull", err)
	}
	if !IsShed(err) {
		t.Fatal("queue-full rejection not recognized by IsShed")
	}
	if hint := RetryAfterHint(err, 0); hint <= 0 {
		t.Fatalf("rejection hint = %v, want > 0", hint)
	}
	rel()
	take(t, q1)()
	take(t, q2)()
}

func TestLimiterZeroQueueShedsImmediately(t *testing.T) {
	l := NewLimiter(Config{MaxConcurrency: 1, MaxQueue: 0, Clock: netsim.NewVirtualClock()})
	t1, _ := l.Begin(context.Background(), 1)
	rel := take(t, t1)
	if _, err := l.Begin(context.Background(), 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull with MaxQueue=0", err)
	}
	rel()
}

func TestLimiterFIFOOrder(t *testing.T) {
	testQueueOrder(t, FIFO, []int{0, 1, 2})
}

func TestLimiterLIFOOrder(t *testing.T) {
	testQueueOrder(t, LIFO, []int{2, 1, 0})
}

func testQueueOrder(t *testing.T, p Policy, wantOrder []int) {
	t.Helper()
	vc := netsim.NewVirtualClock()
	l := NewLimiter(Config{MaxConcurrency: 1, MaxQueue: 8, Policy: p, Clock: vc})
	ctx := context.Background()

	first, _ := l.Begin(ctx, 1)
	rel := take(t, first)
	var tickets []*Ticket
	for i := 0; i < 3; i++ {
		tk, err := l.Begin(ctx, 1)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	var order []int
	for len(order) < 3 {
		rel()
		resolved := false
		for i, tk := range tickets {
			if tk == nil {
				continue
			}
			select {
			case r := <-tk.C():
				if r == nil {
					t.Fatalf("waiter %d shed: %v", i, tk.Err())
				}
				rel = r
				order = append(order, i)
				tickets[i] = nil
				resolved = true
			default:
			}
		}
		if !resolved {
			t.Fatal("release admitted nobody")
		}
	}
	rel()
	for i, want := range wantOrder {
		if order[i] != want {
			t.Fatalf("%v admission order = %v, want %v", p, order, wantOrder)
		}
	}
}

// LIFO lets a newcomer overtake the queue when capacity frees for a
// light request a heavy head-of-queue waiter cannot use.
func TestLIFOOvertakesFIFODoesNot(t *testing.T) {
	for _, p := range []Policy{FIFO, LIFO} {
		l := NewLimiter(Config{MaxConcurrency: 2, MaxQueue: 8, Policy: p, Clock: netsim.NewVirtualClock()})
		ctx := context.Background()
		a, _ := l.Begin(ctx, 1)
		relA := take(t, a)
		heavy, _ := l.Begin(ctx, 2) // queued: 1+2 exceeds the limit
		pending(t, heavy)
		// One unit of capacity is free, which heavy cannot use.
		narrow, _ := l.Begin(ctx, 1)
		if p == LIFO {
			// The newcomer fits and LIFO serves newest first: overtake.
			take(t, narrow)()
		} else {
			// FIFO refuses to overtake: the newcomer queues behind heavy.
			pending(t, narrow)
		}
		// Unwind: freeing A admits heavy; freeing heavy admits the
		// FIFO-queued narrow.
		relA()
		take(t, heavy)()
		if p == FIFO {
			take(t, narrow)()
		}
	}
}

func TestLimiterDeadlineShed(t *testing.T) {
	vc := netsim.NewVirtualClock()
	l := NewLimiter(Config{MaxConcurrency: 1, MaxQueue: 8, Clock: vc})
	ctx := context.Background()

	// Teach the estimator: one request served in 10ms.
	t1, _ := l.Begin(ctx, 1)
	rel := take(t, t1)
	vc.Sleep(10 * time.Millisecond)
	rel()

	// Occupy capacity and half the queue.
	hold, _ := l.Begin(ctx, 1)
	relHold := take(t, hold)
	q1, _ := l.Begin(ctx, 1)
	q2, _ := l.Begin(ctx, 1)

	// Predicted completion for a 4th concurrent request ≈ 3 queued
	// services + its own ≈ 40ms; a 5ms budget cannot survive it.
	tight := WithDeadlineAt(ctx, vc.Now()+5*time.Millisecond)
	_, err := l.Begin(tight, 1)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("tight deadline got %v, want ErrDeadline", err)
	}
	// A roomy budget queues fine.
	roomy := WithDeadlineAt(ctx, vc.Now()+time.Second)
	q3, err := l.Begin(roomy, 1)
	if err != nil {
		t.Fatalf("roomy deadline rejected: %v", err)
	}
	relHold()
	for _, tk := range []*Ticket{q1, q2, q3} {
		vc.Sleep(10 * time.Millisecond)
		take(t, tk)()
	}
	if s := l.Stats(); s.ShedDeadline != 1 {
		t.Fatalf("ShedDeadline = %d", s.ShedDeadline)
	}
}

func TestLimiterExpiredInQueueShed(t *testing.T) {
	vc := netsim.NewVirtualClock()
	l := NewLimiter(Config{MaxConcurrency: 1, MaxQueue: 8, Clock: vc})
	ctx := context.Background()

	hold, _ := l.Begin(ctx, 1)
	rel := take(t, hold)
	// Queued with a deadline that lapses while waiting (no service
	// estimate yet, so the arrival-time shed cannot catch it).
	short, _ := l.Begin(WithDeadlineAt(ctx, vc.Now()+5*time.Millisecond), 1)
	pending(t, short)
	vc.Sleep(50 * time.Millisecond)
	rel()
	err := sheddedErr(t, short)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired waiter got %v, want ErrDeadline", err)
	}
	if s := l.Stats(); s.Expired != 1 {
		t.Fatalf("Expired = %d", s.Expired)
	}
	// The expired waiter must not have consumed the freed capacity.
	next, _ := l.Begin(ctx, 1)
	take(t, next)()
}

func TestLimiterWallClockContextDeadline(t *testing.T) {
	// A real (wall-clock) context deadline feeds the same shedding
	// path through the wallRemaining shim.
	l := NewLimiter(Config{MaxConcurrency: 1, MaxQueue: 8})
	ctx := context.Background()
	t1, _ := l.Begin(ctx, 1)
	rel := take(t, t1)
	time.Sleep(2 * time.Millisecond)
	rel() // seed the estimator with ~2ms service

	hold, _ := l.Begin(ctx, 1)
	relHold := take(t, hold)
	tight, cancel := context.WithDeadline(ctx, time.Now().Add(time.Millisecond))
	defer cancel()
	// Either the shim sheds it (predicted wait ≈ 4ms > 1ms budget) or
	// the context expired on the way in; both must refuse admission.
	if _, err := l.Begin(tight, 1); err == nil {
		t.Fatal("un-meetable wall deadline admitted")
	}
	relHold()
}

func TestLimiterDrain(t *testing.T) {
	vc := netsim.NewVirtualClock()
	l := NewLimiter(Config{MaxConcurrency: 2, MaxQueue: 4, Clock: vc})
	ctx := context.Background()

	a, _ := l.Begin(ctx, 1)
	b, _ := l.Begin(ctx, 1)
	relA, relB := take(t, a), take(t, b)
	queued, _ := l.Begin(ctx, 1)
	pending(t, queued)

	drained := make(chan error, 1)
	go func() { drained <- l.Drain(context.Background()) }()

	// The queued waiter is shed with ErrDraining...
	giveUp := time.Now().Add(5 * time.Second)
	for {
		select {
		case rel := <-queued.C():
			if rel != nil {
				t.Fatal("queued waiter admitted during drain")
			}
		default:
			if time.Now().After(giveUp) {
				t.Fatal("queued waiter never shed")
			}
			continue
		}
		break
	}
	if err := queued.Err(); !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter reason = %v", err)
	}
	// ...new arrivals are refused...
	if _, err := l.Begin(ctx, 1); !errors.Is(err, ErrDraining) {
		t.Fatalf("begin during drain = %v", err)
	}
	// ...and Drain waits for both in-flight releases: zero dropped.
	select {
	case err := <-drained:
		t.Fatalf("drain returned %v with work in flight", err)
	case <-time.After(10 * time.Millisecond):
	}
	relA()
	select {
	case err := <-drained:
		t.Fatalf("drain returned %v with one release outstanding", err)
	case <-time.After(10 * time.Millisecond):
	}
	relB()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain never completed")
	}
	// Idempotent once idle.
	if err := l.Drain(context.Background()); err != nil {
		t.Fatalf("second drain = %v", err)
	}
}

func TestLimiterDrainDeadline(t *testing.T) {
	l := NewLimiter(Config{MaxConcurrency: 1, Clock: netsim.NewVirtualClock()})
	tk, _ := l.Begin(context.Background(), 1)
	rel := take(t, tk)
	dctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := l.Drain(dctx)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("bounded drain = %v, want ctx error", err)
	}
	rel()
	// After the straggler finishes, a second drain observes idle.
	if err := l.Drain(context.Background()); err != nil {
		t.Fatalf("drain after release = %v", err)
	}
}

func TestAcquireCancelWhileQueued(t *testing.T) {
	l := NewLimiter(Config{MaxConcurrency: 1, MaxQueue: 4, Clock: netsim.NewVirtualClock()})
	hold, _ := l.Begin(context.Background(), 1)
	rel := take(t, hold)

	cctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := l.Acquire(cctx, 1)
		got <- err
	}()
	// Wait until the acquire is queued, then cancel it.
	for l.Stats().Queued == 0 {
	}
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v", err)
	}
	if s := l.Stats(); s.Queued != 0 {
		t.Fatalf("cancelled waiter still queued: %+v", s)
	}
	// The slot is intact: release and reacquire.
	rel()
	release, err := l.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	release()
}

func TestAIMDBackoffAndRecovery(t *testing.T) {
	vc := netsim.NewVirtualClock()
	l := NewLimiter(Config{
		MaxConcurrency: 8, MaxQueue: 8, Clock: vc,
		AIMD: &AIMDConfig{Target: 10 * time.Millisecond, Min: 1, Max: 8, IncreaseEvery: 2},
	})
	ctx := context.Background()
	if l.Stats().Limit != 8 {
		t.Fatalf("starting limit = %d", l.Stats().Limit)
	}
	slow := func() {
		tk, err := l.Begin(ctx, 1)
		if err != nil {
			t.Fatal(err)
		}
		rel := take(t, tk)
		vc.Sleep(50 * time.Millisecond) // 5× target: congestion
		rel()
	}
	fast := func() {
		tk, err := l.Begin(ctx, 1)
		if err != nil {
			t.Fatal(err)
		}
		rel := take(t, tk)
		vc.Sleep(time.Millisecond)
		rel()
	}
	slow()
	if got := l.Stats().Limit; got != 4 {
		t.Fatalf("limit after one congestion signal = %d, want 4", got)
	}
	// Within the cooldown a second slow completion is the same signal.
	vc.Sleep(time.Millisecond)
	slow()
	// Cooldown (= target) elapsed during the slow call itself, so the
	// second backoff landed: 4 → 2.
	if got := l.Stats().Limit; got != 2 {
		t.Fatalf("limit after second congestion = %d, want 2", got)
	}
	// Additive recovery: two on-target completions buy +1.
	for i := 0; i < 4; i++ {
		fast()
	}
	if got := l.Stats().Limit; got != 4 {
		t.Fatalf("limit after recovery = %d, want 4", got)
	}
	// Recovery never exceeds Max.
	for i := 0; i < 64; i++ {
		fast()
	}
	if got := l.Stats().Limit; got != 8 {
		t.Fatalf("limit capped = %d, want 8", got)
	}
}

// The race certificate: concurrent acquire/release with the limit
// invariant checked at every admission.
func TestLimiterConcurrentInvariant(t *testing.T) {
	const limit, workers, rounds = 4, 16, 50
	l := NewLimiter(Config{MaxConcurrency: limit, MaxQueue: workers})
	var inflight, maxSeen atomic.Int64
	var wg sync.WaitGroup
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				rel, err := l.Acquire(ctx, 1)
				if err != nil {
					// Queue overflow under contention is a valid shed.
					if !errors.Is(err, ErrQueueFull) {
						t.Errorf("acquire: %v", err)
						return
					}
					continue
				}
				cur := inflight.Add(1)
				for {
					prev := maxSeen.Load()
					if cur <= prev || maxSeen.CompareAndSwap(prev, cur) {
						break
					}
				}
				time.Sleep(time.Microsecond)
				inflight.Add(-1)
				rel()
			}
		}()
	}
	wg.Wait()
	if got := maxSeen.Load(); got > limit {
		t.Fatalf("observed %d concurrent admissions, limit %d", got, limit)
	}
	if s := l.Stats(); s.Inflight != 0 || s.Queued != 0 {
		t.Fatalf("limiter not idle after workers drained: %+v", s)
	}
}

// Drain racing live traffic: every admitted request completes (zero
// dropped), every unadmitted one is shed with a typed reason.
func TestLimiterDrainUnderLoad(t *testing.T) {
	l := NewLimiter(Config{MaxConcurrency: 2, MaxQueue: 8})
	var admitted, completed, shed atomic.Int64
	var wg sync.WaitGroup
	ctx := context.Background()
	start := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 20; i++ {
				rel, err := l.Acquire(ctx, 1)
				if err != nil {
					if !IsShed(err) {
						t.Errorf("non-shed acquire error: %v", err)
					}
					shed.Add(1)
					continue
				}
				admitted.Add(1)
				time.Sleep(50 * time.Microsecond)
				completed.Add(1)
				rel()
			}
		}()
	}
	close(start)
	time.Sleep(500 * time.Microsecond)
	if err := l.Drain(context.Background()); err != nil {
		t.Fatalf("drain = %v", err)
	}
	wg.Wait()
	if admitted.Load() != completed.Load() {
		t.Fatalf("admitted %d but completed %d — drain dropped in-flight work", admitted.Load(), completed.Load())
	}
	if shed.Load() == 0 {
		t.Fatal("drain under load shed nothing (expected ErrDraining rejections)")
	}
}

func TestRejectionErrorText(t *testing.T) {
	err := &Rejection{Err: ErrQueueFull, RetryAfter: 50 * time.Millisecond}
	if err.Error() == "" || !errors.Is(err, ErrQueueFull) {
		t.Fatalf("rejection: %v", err)
	}
	if IsShed(errors.New("plain")) {
		t.Fatal("plain error classified as shed")
	}
	if got := RetryAfterHint(errors.New("plain"), 7*time.Millisecond); got != 7*time.Millisecond {
		t.Fatalf("default hint = %v", got)
	}
}
