// Package admission is DrugTree's overload-protection layer: a
// weighted concurrency limiter with a bounded wait queue (FIFO for
// fairness, LIFO for tail latency under saturation), deadline-aware
// load shedding (reject immediately when the caller's deadline cannot
// survive the predicted queue wait), per-client token-bucket rate
// limiting, an AIMD adaptive-concurrency mode, and graceful drain.
//
// The poster's complaint is interactive lag; the ROADMAP's north star
// is heavy traffic. Without admission control an offered load past
// saturation piles unbounded work onto the engine and collapses
// goodput exactly when load peaks (experiment T9 measures this). The
// limiter bounds concurrency and queueing so the server keeps serving
// near-peak goodput with bounded p99, answering the overflow with
// machine-readable retry hints instead of silence.
//
// All timing runs on an injectable netsim.Clock, so experiments drive
// the real limiter deterministically on a virtual timeline.
package admission

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"drugtree/internal/metrics"
	"drugtree/internal/netsim"
)

// Policy selects the wait-queue service order.
type Policy uint8

const (
	// FIFO serves waiters oldest-first: fair, but under sustained
	// saturation every request waits the full queue depth.
	FIFO Policy = iota
	// LIFO serves waiters newest-first: under saturation the freshest
	// requests (whose deadlines can still be met) ride a short queue
	// while stale ones age out — the adaptive-LIFO tail-latency trade.
	LIFO
)

func (p Policy) String() string {
	if p == LIFO {
		return "lifo"
	}
	return "fifo"
}

// Shed reasons. Every rejection wraps one of these inside a
// *Rejection carrying the retry hint.
var (
	// ErrQueueFull means concurrency and the wait queue are both at
	// capacity.
	ErrQueueFull = errors.New("admission: queue full")
	// ErrDeadline means the caller's deadline cannot survive the
	// predicted queue wait, so queueing would only waste capacity.
	ErrDeadline = errors.New("admission: deadline cannot be met")
	// ErrDraining means the limiter is shutting down gracefully.
	ErrDraining = errors.New("admission: draining")
	// ErrRateLimited means the client exceeded its token bucket.
	ErrRateLimited = errors.New("admission: rate limited")
)

// Rejection is a shed decision: the reason plus a suggested minimum
// wait before retrying, sized from the limiter's service estimate so
// clients back off long enough for capacity to free up.
type Rejection struct {
	Err        error
	RetryAfter time.Duration
}

func (r *Rejection) Error() string {
	return fmt.Sprintf("%v (retry after %v)", r.Err, r.RetryAfter)
}

// Unwrap lets errors.Is(err, ErrQueueFull) etc. see the reason.
func (r *Rejection) Unwrap() error { return r.Err }

// IsShed reports whether err is (or wraps) an admission rejection of
// any kind — the signal serving layers translate into RetryMsg / 429.
func IsShed(err error) bool {
	var rej *Rejection
	return errors.As(err, &rej)
}

// RetryAfterHint extracts the rejection's retry hint from err, or def
// when err carries none.
func RetryAfterHint(err error, def time.Duration) time.Duration {
	var rej *Rejection
	if errors.As(err, &rej) && rej.RetryAfter > 0 {
		return rej.RetryAfter
	}
	return def
}

// deadlineKey carries an absolute deadline on the limiter clock's
// timeline through a context.
type deadlineKey struct{}

// WithDeadlineAt attaches an absolute deadline, expressed on the
// limiter clock's timeline, to ctx. Virtual-clock experiments cannot
// use context.WithDeadline (its deadline is wall time), so this is
// the deterministic path into deadline-aware shedding; it takes
// precedence over ctx.Deadline().
func WithDeadlineAt(ctx context.Context, at time.Duration) context.Context {
	return context.WithValue(ctx, deadlineKey{}, at)
}

func deadlineAt(ctx context.Context) (time.Duration, bool) {
	at, ok := ctx.Value(deadlineKey{}).(time.Duration)
	return at, ok
}

// Config tunes a Limiter.
type Config struct {
	// Name prefixes the limiter's metric names ("admission.<name>.*").
	Name string
	// MaxConcurrency is the admitted-weight capacity (default 4). The
	// AIMD mode moves the live limit within [AIMD.Min, AIMD.Max].
	MaxConcurrency int
	// MaxQueue bounds the number of queued waiters; 0 disables
	// queueing entirely (admit or shed, never wait).
	MaxQueue int
	// Policy selects FIFO (default) or LIFO queue service order.
	Policy Policy
	// Clock supplies time; nil uses the wall clock. Experiments inject
	// a netsim.VirtualClock.
	Clock netsim.Clock
	// Metrics, when set, receives admission counters and the
	// queue-wait histogram.
	Metrics *metrics.Registry
	// AIMD, when set, adapts the concurrency limit to observed
	// latency instead of holding MaxConcurrency fixed.
	AIMD *AIMDConfig
	// RetryHint is the rejection hint used before the limiter has a
	// service-time estimate (default 50ms).
	RetryHint time.Duration
}

// Waiter lifecycle states (guarded by Limiter.mu).
const (
	wQueued = iota
	wAdmitted
	wShed
	wCancelled
)

// waiter is one pending admission.
type waiter struct {
	weight     int
	enqueuedAt time.Duration
	// deadline is absolute on the limiter clock's timeline; 0 = none.
	deadline time.Duration
	state    int
	rej      error
	// admit delivers the release function on admission, or nil when
	// the waiter is shed (see Ticket.Err for the reason). Buffered so
	// the limiter never blocks delivering it.
	admit chan func()
}

// Limiter is a weighted concurrency limiter with a bounded wait
// queue, deadline-aware shedding, and graceful drain. The zero value
// is not usable; construct with NewLimiter.
type Limiter struct {
	cfg   Config
	clock netsim.Clock

	mu       sync.Mutex
	limit    int // live concurrency limit (AIMD moves it)
	inflight int // admitted weight
	queue    []*waiter
	draining bool
	drained  chan struct{} // lazily made by Drain; closed at idle
	// ewmaSvc estimates service time per unit weight (EWMA over
	// completions); 0 until the first completion.
	ewmaSvc time.Duration
	aimd    aimdState
	stats   Stats

	// Metric handles (nil when no registry is configured).
	mAdmitted, mQueueFull, mDeadline, mDraining, mExpired *metrics.Counter
	mQueueWait                                            *metrics.Histogram
}

// Stats is a point-in-time snapshot of the limiter.
type Stats struct {
	// Limit is the live concurrency limit (AIMD may have moved it off
	// Config.MaxConcurrency).
	Limit int
	// Inflight is the currently admitted weight.
	Inflight int
	// Queued is the number of waiters in the queue.
	Queued int
	// Draining reports whether the limiter has stopped admitting.
	Draining bool
	// Admitted counts admissions; the Shed* fields count rejections
	// by reason; Expired counts waiters whose deadline lapsed while
	// queued.
	Admitted, ShedQueueFull, ShedDeadline, ShedDraining, Expired int64
}

// NewLimiter builds a limiter from cfg, applying defaults.
func NewLimiter(cfg Config) *Limiter {
	if cfg.MaxConcurrency <= 0 {
		cfg.MaxConcurrency = 4
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.RetryHint <= 0 {
		cfg.RetryHint = 50 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = netsim.NewWallClock()
	}
	if cfg.Name == "" {
		cfg.Name = "limiter"
	}
	l := &Limiter{cfg: cfg, clock: cfg.Clock, limit: cfg.MaxConcurrency}
	if a := cfg.AIMD; a != nil {
		l.limit = a.normalize(cfg.MaxConcurrency)
	}
	if m := cfg.Metrics; m != nil {
		p := "admission." + cfg.Name
		l.mAdmitted = m.Counter(p + ".admitted")
		l.mQueueFull = m.Counter(p + ".shed.queue_full")
		l.mDeadline = m.Counter(p + ".shed.deadline")
		l.mDraining = m.Counter(p + ".shed.draining")
		l.mExpired = m.Counter(p + ".shed.expired")
		l.mQueueWait = m.Histogram(p + ".queue_wait")
	}
	return l
}

func inc(c *metrics.Counter) {
	if c != nil {
		c.Inc()
	}
}

// Ticket is a pending admission started with Begin. Exactly one value
// arrives on C: the release function when the request is admitted, or
// nil when the limiter sheds it (Err then carries the reason). Cancel
// abandons the ticket; after admission it releases the slot.
type Ticket struct {
	l *Limiter
	w *waiter
}

// C delivers the outcome: a non-nil release function (call it exactly
// once when the work completes) or nil when shed.
func (t *Ticket) C() <-chan func() { return t.w.admit }

// Err returns the shed reason after C delivered nil.
func (t *Ticket) Err() error {
	t.l.mu.Lock()
	defer t.l.mu.Unlock()
	return t.w.rej
}

// Cancel abandons the ticket: a queued waiter is removed, an
// already-admitted one has its slot released. Safe to call at most
// once, from the goroutine that owns the ticket.
func (t *Ticket) Cancel() {
	l, w := t.l, t.w
	l.mu.Lock()
	switch w.state {
	case wQueued:
		for i, q := range l.queue {
			if q == w {
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				break
			}
		}
		w.state = wCancelled
		ch := l.drainedChLocked()
		l.mu.Unlock()
		if ch != nil {
			close(ch)
		}
	case wAdmitted:
		l.mu.Unlock()
		// The release fn is in flight on the buffered channel (or
		// already there); consume and release the slot.
		if rel := <-w.admit; rel != nil {
			rel()
		}
	default: // shed or already cancelled: clear any pending delivery.
		l.mu.Unlock()
		select {
		case <-w.admit:
		default:
		}
	}
}

// drainedChLocked returns the drained channel to close when a drain
// is pending and the limiter just went idle, nilling it so it closes
// exactly once. Caller holds l.mu and must close outside it.
func (l *Limiter) drainedChLocked() chan struct{} {
	if l.draining && l.inflight == 0 && len(l.queue) == 0 && l.drained != nil {
		ch := l.drained
		l.drained = nil
		return ch
	}
	return nil
}

// Begin requests admission for weight units without blocking. It
// returns a Ticket whose channel resolves to a release function (or
// nil on shed), or an immediate rejection error. Experiments use it
// to drive the limiter from a single-threaded event loop; most
// callers want Acquire.
func (l *Limiter) Begin(ctx context.Context, weight int) (*Ticket, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if weight <= 0 {
		weight = 1
	}
	now := l.clock.Now()
	dl, hasDL := l.resolveDeadline(ctx, now)

	w := &waiter{weight: weight, enqueuedAt: now, admit: make(chan func(), 1)}
	if hasDL {
		w.deadline = dl
	}

	l.mu.Lock()
	if l.draining {
		l.stats.ShedDraining++
		hint := l.retryHintLocked(weight)
		l.mu.Unlock()
		inc(l.mDraining)
		return nil, &Rejection{Err: ErrDraining, RetryAfter: hint}
	}
	if l.canAdmitNowLocked(weight) {
		l.inflight += weight
		l.stats.Admitted++
		w.state = wAdmitted
		rel := l.releaser(weight, now)
		l.mu.Unlock()
		inc(l.mAdmitted)
		w.admit <- rel
		return &Ticket{l: l, w: w}, nil
	}
	if len(l.queue) >= l.cfg.MaxQueue {
		l.stats.ShedQueueFull++
		hint := l.retryHintLocked(weight)
		l.mu.Unlock()
		inc(l.mQueueFull)
		return nil, &Rejection{Err: ErrQueueFull, RetryAfter: hint}
	}
	if hasDL {
		// Predicted completion = queue wait ahead of us + our own
		// service; shed now if it lands past the deadline, instead of
		// wasting a queue slot on work that will time out anyway.
		eta := now + l.predictWaitLocked(weight) + l.ewmaSvc*time.Duration(weight)
		if dl <= now || (l.ewmaSvc > 0 && eta > dl) {
			l.stats.ShedDeadline++
			hint := l.retryHintLocked(weight)
			l.mu.Unlock()
			inc(l.mDeadline)
			return nil, &Rejection{Err: ErrDeadline, RetryAfter: hint}
		}
	}
	l.queue = append(l.queue, w)
	l.mu.Unlock()
	return &Ticket{l: l, w: w}, nil
}

// Acquire blocks until the request is admitted, shed, or ctx is done.
// On success it returns the release function, which the caller must
// invoke exactly once when the work completes.
func (l *Limiter) Acquire(ctx context.Context, weight int) (func(), error) {
	if ctx == nil {
		ctx = context.Background()
	}
	t, err := l.Begin(ctx, weight)
	if err != nil {
		return nil, err
	}
	select {
	case rel := <-t.C():
		if rel == nil {
			return nil, t.Err()
		}
		return rel, nil
	case <-ctx.Done():
		t.Cancel()
		return nil, ctx.Err()
	}
}

// Drain stops admission, sheds every queued waiter, and waits for
// in-flight work to finish. The wait is bounded by ctx: when it
// expires the drain returns the context error with work still in
// flight (the caller decides whether to force-quit). Drain is
// idempotent; the limiter stays draining forever after.
func (l *Limiter) Drain(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	l.mu.Lock()
	l.draining = true
	shed := l.queue
	l.queue = nil
	for _, w := range shed {
		w.state = wShed
		w.rej = &Rejection{Err: ErrDraining}
		l.stats.ShedDraining++
	}
	idle := l.inflight == 0
	var ch chan struct{}
	if !idle {
		if l.drained == nil {
			l.drained = make(chan struct{})
		}
		ch = l.drained
	}
	l.mu.Unlock()
	for _, w := range shed {
		inc(l.mDraining)
		w.admit <- nil
	}
	if idle {
		return nil
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		l.mu.Lock()
		inflight := l.inflight
		l.mu.Unlock()
		return fmt.Errorf("admission: drain aborted with %d weight in flight: %w", inflight, ctx.Err())
	}
}

// Stats snapshots the limiter.
func (l *Limiter) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Limit = l.limit
	s.Inflight = l.inflight
	s.Queued = len(l.queue)
	s.Draining = l.draining
	return s
}

// canAdmitNowLocked reports whether weight fits right now. FIFO never
// lets a newcomer overtake the queue; LIFO overtaking is the policy's
// point (the newest request is exactly who it would serve next).
func (l *Limiter) canAdmitNowLocked(weight int) bool {
	if l.inflight+weight > l.limit {
		return false
	}
	return len(l.queue) == 0 || l.cfg.Policy == LIFO
}

// predictWaitLocked estimates the queue wait for a new waiter of the
// given weight: the weight ahead of it served at the limit's
// parallelism, priced at the EWMA service time. A heuristic, not a
// queueing model — it only needs to be right about "can this deadline
// possibly survive".
func (l *Limiter) predictWaitLocked(weight int) time.Duration {
	if l.ewmaSvc == 0 {
		return 0
	}
	ahead := 0
	if l.cfg.Policy == FIFO {
		for _, w := range l.queue {
			ahead += w.weight
		}
	}
	return l.ewmaSvc * time.Duration(ahead+weight) / time.Duration(l.limit)
}

// retryHintLocked sizes a rejection's retry hint: roughly when the
// present queue should clear, with a floor before any estimate.
func (l *Limiter) retryHintLocked(weight int) time.Duration {
	if hint := l.predictWaitLocked(weight); hint > 0 {
		return hint
	}
	return l.cfg.RetryHint
}

// releaser builds the one-shot release function for an admission.
func (l *Limiter) releaser(weight int, admittedAt time.Duration) func() {
	var once sync.Once
	return func() {
		once.Do(func() { l.finish(weight, admittedAt) })
	}
}

// wakeEntry pairs a waiter with what to deliver on its channel.
type wakeEntry struct {
	w   *waiter
	rel func() // nil = shed
}

// finish returns weight to the pool, folds the observed service time
// into the estimator and AIMD controller, and admits queued waiters.
// Channel deliveries happen strictly outside l.mu (the lockcheck
// invariant: no channel operations while a mutex is held).
func (l *Limiter) finish(weight int, admittedAt time.Duration) {
	now := l.clock.Now()
	svc := now - admittedAt

	l.mu.Lock()
	l.inflight -= weight
	perUnit := svc / time.Duration(weight)
	if l.ewmaSvc == 0 {
		l.ewmaSvc = perUnit
	} else {
		// EWMA with alpha = 1/8: smooth enough to ride out one slow
		// query, fresh enough to track a shifting workload.
		l.ewmaSvc += (perUnit - l.ewmaSvc) / 8
	}
	l.aimdOnFinishLocked(now, svc, weight)
	wake := l.admitQueuedLocked(now)
	ch := l.drainedChLocked()
	l.mu.Unlock()

	for _, e := range wake {
		if e.rel == nil {
			inc(l.mExpired)
		} else {
			inc(l.mAdmitted)
		}
		e.w.admit <- e.rel
	}
	if ch != nil {
		close(ch)
	}
}

// admitQueuedLocked pops waiters in policy order while they fit,
// shedding any whose deadline lapsed in the queue. Returns the
// deliveries to perform after unlocking.
func (l *Limiter) admitQueuedLocked(now time.Duration) []wakeEntry {
	var wake []wakeEntry
	for len(l.queue) > 0 {
		i := 0
		if l.cfg.Policy == LIFO {
			i = len(l.queue) - 1
		}
		w := l.queue[i]
		if w.deadline > 0 && now > w.deadline {
			// Expired while queued: admitting it would burn capacity
			// on work whose caller already gave up.
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			w.state = wShed
			w.rej = &Rejection{Err: ErrDeadline, RetryAfter: l.retryHintLocked(w.weight)}
			l.stats.Expired++
			wake = append(wake, wakeEntry{w: w})
			continue
		}
		if l.inflight+w.weight > l.limit {
			break
		}
		l.queue = append(l.queue[:i], l.queue[i+1:]...)
		l.inflight += w.weight
		l.stats.Admitted++
		w.state = wAdmitted
		if l.mQueueWait != nil {
			l.mQueueWait.Record(now - w.enqueuedAt)
		}
		wake = append(wake, wakeEntry{w: w, rel: l.releaser(w.weight, now)})
	}
	return wake
}

// resolveDeadline maps the caller's deadline onto the limiter clock's
// timeline: an explicit WithDeadlineAt wins; otherwise a context
// deadline is converted from wall time via the shim in wallclock.go.
func (l *Limiter) resolveDeadline(ctx context.Context, now time.Duration) (time.Duration, bool) {
	if at, ok := deadlineAt(ctx); ok {
		return at, true
	}
	if remaining, ok := wallRemaining(ctx); ok {
		return now + remaining, true
	}
	return 0, false
}
