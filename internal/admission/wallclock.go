package admission

import (
	"context"
	"time"
)

// wallRemaining is this package's only wall-clock read (a clockcheck
// shim): a context.Context deadline is an absolute wall time, so
// converting it to a remaining budget requires consulting the wall
// clock. Deterministic callers bypass it entirely by attaching a
// clock-timeline deadline with WithDeadlineAt.
func wallRemaining(ctx context.Context) (time.Duration, bool) {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0, false
	}
	return time.Until(dl), true
}
