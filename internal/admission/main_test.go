package admission

import (
	"testing"

	"drugtree/internal/lint/leaktest"
)

// TestMain gates the package on goroutine hygiene: the limiter's
// waiter bookkeeping must never strand a goroutine (see
// internal/lint/leaktest).
func TestMain(m *testing.M) { leaktest.VerifyTestMain(m) }
