package admission

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"drugtree/internal/netsim"
)

func TestRateLimiterBurstAndRefill(t *testing.T) {
	vc := netsim.NewVirtualClock()
	rl := NewRateLimiter(RateConfig{QPS: 1, Burst: 2, Clock: vc})

	if err := rl.Allow("a"); err != nil {
		t.Fatalf("first: %v", err)
	}
	if err := rl.Allow("a"); err != nil {
		t.Fatalf("second (burst): %v", err)
	}
	err := rl.Allow("a")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("third got %v, want ErrRateLimited", err)
	}
	if hint := RetryAfterHint(err, 0); hint < 900*time.Millisecond || hint > 1100*time.Millisecond {
		t.Fatalf("retry hint = %v, want ≈1s at 1 QPS", hint)
	}
	// Other clients have their own bucket.
	if err := rl.Allow("b"); err != nil {
		t.Fatalf("client b: %v", err)
	}
	// A token lands after 1s.
	vc.Sleep(time.Second)
	if err := rl.Allow("a"); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	if err := rl.Allow("a"); err == nil {
		t.Fatal("bucket refilled beyond rate")
	}
}

func TestRateLimiterIdleEviction(t *testing.T) {
	vc := netsim.NewVirtualClock()
	rl := NewRateLimiter(RateConfig{QPS: 100, Burst: 100, Clock: vc, IdleEvict: time.Minute, MaxClients: 8})
	for i := 0; i < 8; i++ {
		if err := rl.Allow(fmt.Sprintf("client-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := rl.Clients(); got != 8 {
		t.Fatalf("clients = %d", got)
	}
	// At the bound a new client evicts the stalest bucket.
	if err := rl.Allow("fresh"); err != nil {
		t.Fatal(err)
	}
	if got := rl.Clients(); got > 8 {
		t.Fatalf("clients = %d, bound 8", got)
	}
	// After the idle window everyone but a recent caller is swept.
	vc.Sleep(2 * time.Minute)
	if err := rl.Allow("later"); err != nil {
		t.Fatal(err)
	}
	if got := rl.Clients(); got != 1 {
		t.Fatalf("clients after idle sweep = %d, want 1", got)
	}
}

func TestRateLimiterDefaults(t *testing.T) {
	rl := NewRateLimiter(RateConfig{})
	if rl.cfg.QPS != 25 || rl.cfg.Burst != 50 || rl.cfg.MaxClients != 4096 {
		t.Fatalf("defaults = %+v", rl.cfg)
	}
	if err := rl.Allow("x"); err != nil {
		t.Fatal(err)
	}
}
