package mobile

import (
	"container/heap"
	"sort"

	"drugtree/internal/core"
	"drugtree/internal/phylo"
)

// BuildViewport selects the level-of-detail view of the subtree
// rooted at focus under a node budget: a best-first expansion from
// the focus that always expands the internal node with the largest
// subtree (the clade the eye is drawn to), until the budget is
// exhausted. Internal nodes whose children were pruned are marked
// Collapsed, carrying their leaf count so the client can render a
// "+N" placeholder.
//
// The returned nodes always form a connected subtree containing
// focus, so the client can draw edges from ParentPre alone.
func BuildViewport(e *core.Engine, focus phylo.NodeID, budget int) []WireNode {
	t := e.Tree()
	layout := e.Layout()
	if budget < 1 {
		budget = 1
	}
	pq := &itemHeap{}
	heap.Init(pq)
	taken := make(map[phylo.NodeID]bool, budget)
	expanded := make(map[phylo.NodeID]bool, budget)

	take := func(id phylo.NodeID) {
		taken[id] = true
		heap.Push(pq, heapItem{id: id, priority: int64(t.LeafCount(id))})
	}
	take(focus)
	for pq.Len() > 0 && len(taken) < budget {
		it := heap.Pop(pq).(heapItem)
		node := t.Node(it.id)
		if node.IsLeaf() {
			continue
		}
		if len(taken)+len(node.Children) > budget {
			continue // expanding would blow the budget; stays collapsed
		}
		expanded[it.id] = true
		for _, c := range node.Children {
			take(c)
		}
	}
	// Emit in preorder for deterministic output.
	out := make([]WireNode, 0, len(taken))
	lo, hi := t.SubtreeInterval(focus)
	for p := lo; p <= hi; p++ {
		id := t.NodeAtPre(p)
		if !taken[id] {
			continue
		}
		node := t.Node(id)
		parentPre := int64(-1)
		if node.Parent != phylo.None && taken[node.Parent] {
			parentPre = int64(t.Pre(node.Parent))
		}
		out = append(out, WireNode{
			Pre:       int64(p),
			Name:      node.Name,
			ParentPre: parentPre,
			IsLeaf:    node.IsLeaf(),
			Collapsed: !node.IsLeaf() && !expanded[id],
			LeafCount: int64(t.LeafCount(id)),
			Length:    node.Length,
			X:         layout.X[id],
			Y:         layout.Y[id],
		})
	}
	return out
}

// FullTree emits every node (the baseline strategy).
func FullTree(e *core.Engine) []WireNode {
	t := e.Tree()
	layout := e.Layout()
	out := make([]WireNode, 0, t.Len())
	for p := 0; p < t.Len(); p++ {
		id := t.NodeAtPre(p)
		node := t.Node(id)
		parentPre := int64(-1)
		if node.Parent != phylo.None {
			parentPre = int64(t.Pre(node.Parent))
		}
		out = append(out, WireNode{
			Pre:       int64(p),
			Name:      node.Name,
			ParentPre: parentPre,
			IsLeaf:    node.IsLeaf(),
			LeafCount: int64(t.LeafCount(id)),
			Length:    node.Length,
			X:         layout.X[id],
			Y:         layout.Y[id],
		})
	}
	return out
}

// DiffViewports computes the delta from the node set the client holds
// to the new viewport.
func DiffViewports(held map[int64]bool, next []WireNode) (add []WireNode, remove []int64) {
	nextSet := make(map[int64]bool, len(next))
	for _, n := range next {
		nextSet[n.Pre] = true
		if !held[n.Pre] {
			add = append(add, n)
		}
	}
	for pre := range held {
		if !nextSet[pre] {
			remove = append(remove, pre)
		}
	}
	sort.Slice(remove, func(i, j int) bool { return remove[i] < remove[j] })
	return add, remove
}

// heapItem / itemHeap implement a max-heap on subtree leaf count.
type heapItem struct {
	id       phylo.NodeID
	priority int64
}

type itemHeap []heapItem

func (h itemHeap) Len() int           { return len(h) }
func (h itemHeap) Less(i, j int) bool { return h[i].priority > h[j].priority }
func (h itemHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x any)        { *h = append(*h, x.(heapItem)) }
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
