package mobile

import "time"

// wallNow is the package's only wall-clock read (this file is the
// clockcheck allowlist shim): read deadlines handed to net.Conn must
// be absolute wall times, so they cannot come from the monotonic
// netsim.Clock. Everything else in the package times itself through
// an injectable clock.
func wallNow() time.Time { return time.Now() }
