// Package mobile implements DrugTree's mobile interaction layer: a
// compact binary wire protocol, viewport/level-of-detail tree
// streaming, and delta encoding between interactions — the mechanisms
// that make tree navigation usable over cellular links. A simulated
// client drives sessions over netsim-shaped connections for the
// mobile experiments.
package mobile

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"drugtree/internal/store"
)

// MsgType tags wire messages.
type MsgType uint8

const (
	// Client → server.
	MsgHello MsgType = iota + 1
	MsgOpen          // open a subtree by node name
	MsgQuery         // run a DTQL query
	MsgBye

	// Server → client.
	MsgTreeDelta
	MsgQueryResult
	MsgError

	// Protocol rev 2: freshness reporting.
	MsgStatusReq // client → server: ask for per-source freshness
	MsgStatus    // server → client: per-source freshness

	// Protocol rev 3: overload protection. RETRY tells the client the
	// server refused the request (or the whole session) under load and
	// when to come back; HELLO_ACK confirms a handshake so the client
	// can distinguish acceptance from refusal before sending work.
	MsgRetry
	MsgHelloAck
)

func (m MsgType) String() string {
	switch m {
	case MsgHello:
		return "HELLO"
	case MsgOpen:
		return "OPEN"
	case MsgQuery:
		return "QUERY"
	case MsgBye:
		return "BYE"
	case MsgTreeDelta:
		return "TREE_DELTA"
	case MsgQueryResult:
		return "QUERY_RESULT"
	case MsgError:
		return "ERROR"
	case MsgStatusReq:
		return "STATUS_REQ"
	case MsgStatus:
		return "STATUS"
	case MsgRetry:
		return "RETRY"
	case MsgHelloAck:
		return "HELLO_ACK"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(m))
}

// Strategy selects how the server ships tree data.
type Strategy uint8

const (
	// StrategyFull sends the entire tree on every interaction (the
	// baseline the poster's "lags" correspond to).
	StrategyFull Strategy = iota
	// StrategyLOD sends only the viewport-limited subtree.
	StrategyLOD
	// StrategyLODDelta sends only the viewport difference against
	// what the client already holds.
	StrategyLODDelta
)

func (s Strategy) String() string {
	switch s {
	case StrategyFull:
		return "full"
	case StrategyLOD:
		return "lod"
	case StrategyLODDelta:
		return "lod+delta"
	}
	return fmt.Sprintf("Strategy(%d)", uint8(s))
}

// Hello opens a session.
type Hello struct {
	Strategy Strategy
	// Budget is the max nodes the client viewport displays.
	Budget int
	// Compress asks the server to deflate large responses.
	Compress bool
}

// Open requests the subtree rooted at a named node.
type Open struct {
	Node string
}

// Query runs DTQL server-side.
type Query struct {
	DTQL string
}

// WireNode is the on-wire representation of one visible tree node.
type WireNode struct {
	Pre       int64
	Name      string
	ParentPre int64
	IsLeaf    bool
	Collapsed bool // true when the node summarizes a pruned subtree
	LeafCount int64
	Length    float64
	X, Y      float64
}

// TreeDelta updates the client's node set.
type TreeDelta struct {
	// Reset tells the client to discard all nodes first.
	Reset bool
	Add   []WireNode
	// Remove lists pre numbers leaving the viewport.
	Remove []int64
	// Focus is the pre number the interaction centered on.
	Focus int64
}

// QueryResult returns DTQL output.
type QueryResult struct {
	Columns []string
	Rows    []store.Row
}

// ErrorMsg reports a failure.
type ErrorMsg struct {
	Text string
}

// StatusReq asks the server for per-source freshness. A mobile client
// polls it to badge stale panels instead of presenting degraded data
// as live.
type StatusReq struct{}

// SourceStatus is one source's freshness on the wire.
type SourceStatus struct {
	Name   string
	Status string // "fresh" | "degraded" | "failed"
	Stale  bool
	// AgeMs is milliseconds since the source last synced successfully.
	AgeMs int64
	// Seq is the WAL position backing a shard or replica pseudo-source:
	// the shard frontier for shard-<i>, the applied sequence for
	// shard-<i>-replica-<j>. 0 for real ingestion sources.
	Seq int64
	// Lag is how many WAL records a replica pseudo-source trails its
	// shard's frontier by — the client's staleness signal for reads
	// served under a lag bound.
	Lag int64
}

// StatusMsg answers a StatusReq. Empty Sources means the server has
// no freshness provider (static snapshot deployment).
type StatusMsg struct {
	Sources []SourceStatus
}

// RetryMsg tells the client the server shed this request (or refused
// the session during handshake) and suggests when to retry. A cellular
// client backs off rather than hammering a saturated uplink.
type RetryMsg struct {
	// AfterMS is the suggested wait before retrying, in milliseconds.
	AfterMS int64
}

// HelloAck accepts a handshake. Sent before any other server message
// so a client can tell acceptance from a RetryMsg refusal without
// racing its first request against the verdict.
type HelloAck struct {
	SessionID int64
}

// maxFrame bounds one message (defensive).
const maxFrame = 64 << 20

// Frame layout: uvarint body length, then body = flag byte + payload.
// flag 0 is a raw payload; flag 1 a DEFLATE-compressed payload.
const (
	frameRaw     = 0
	frameDeflate = 1
	// compressThreshold is the minimum payload size worth deflating;
	// below it the flate header overhead wins.
	compressThreshold = 512
)

// WriteMsg frames and writes one message uncompressed. It returns the
// number of bytes put on the wire.
func WriteMsg(w io.Writer, msg any) error {
	_, err := writeMsg(w, msg, false)
	return err
}

// WriteMsgCompressed frames one message, deflating payloads above the
// size threshold. It returns the bytes put on the wire.
func WriteMsgCompressed(w io.Writer, msg any) (int64, error) {
	return writeMsg(w, msg, true)
}

func writeMsg(w io.Writer, msg any, allowCompress bool) (int64, error) {
	payload, err := encodeMsg(msg)
	if err != nil {
		return 0, err
	}
	flag := byte(frameRaw)
	if allowCompress && len(payload) >= compressThreshold {
		var buf bytes.Buffer
		fw, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return 0, err
		}
		if _, err := fw.Write(payload); err != nil {
			return 0, err
		}
		if err := fw.Close(); err != nil {
			return 0, err
		}
		if buf.Len() < len(payload) {
			payload = buf.Bytes()
			flag = frameDeflate
		}
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)+1))
	if _, err := w.Write(hdr[:n]); err != nil {
		return 0, err
	}
	if _, err := w.Write([]byte{flag}); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return int64(n + 1 + len(payload)), nil
}

// ReadMsg reads one framed message, returning the decoded message and
// the number of bytes it occupied on the wire (so clients can account
// for compression accurately).
func ReadMsg(r *bufio.Reader) (any, int64, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, 0, err
	}
	if n > maxFrame {
		return nil, 0, fmt.Errorf("mobile: frame of %d bytes exceeds limit", n)
	}
	if n < 1 {
		return nil, 0, fmt.Errorf("mobile: empty frame")
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, 0, err
	}
	wire := int64(uvarintLen(n) + len(body))
	payload := body[1:]
	if body[0] == frameDeflate {
		fr := flate.NewReader(bytes.NewReader(payload))
		raw, err := io.ReadAll(io.LimitReader(fr, maxFrame))
		if err != nil {
			return nil, 0, fmt.Errorf("mobile: inflating frame: %w", err)
		}
		fr.Close()
		payload = raw
	} else if body[0] != frameRaw {
		return nil, 0, fmt.Errorf("mobile: unknown frame flag %d", body[0])
	}
	msg, err := decodeMsg(payload)
	return msg, wire, err
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// MsgSize returns the uncompressed framed size of a message, for byte
// accounting without writing.
func MsgSize(msg any) (int64, error) {
	payload, err := encodeMsg(msg)
	if err != nil {
		return 0, err
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)+1))
	return int64(n + 1 + len(payload)), nil
}

func encodeMsg(msg any) ([]byte, error) {
	var b []byte
	switch m := msg.(type) {
	case *Hello:
		b = append(b, byte(MsgHello), byte(m.Strategy))
		b = binary.AppendUvarint(b, uint64(m.Budget))
		if m.Compress {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case *Open:
		b = append(b, byte(MsgOpen))
		b = appendStr(b, m.Node)
	case *Query:
		b = append(b, byte(MsgQuery))
		b = appendStr(b, m.DTQL)
	case *Bye:
		b = append(b, byte(MsgBye))
	case *TreeDelta:
		b = append(b, byte(MsgTreeDelta))
		if m.Reset {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.AppendVarint(b, m.Focus)
		b = binary.AppendUvarint(b, uint64(len(m.Add)))
		for _, n := range m.Add {
			b = appendWireNode(b, n)
		}
		b = binary.AppendUvarint(b, uint64(len(m.Remove)))
		for _, pre := range m.Remove {
			b = binary.AppendVarint(b, pre)
		}
	case *QueryResult:
		b = append(b, byte(MsgQueryResult))
		b = binary.AppendUvarint(b, uint64(len(m.Columns)))
		for _, c := range m.Columns {
			b = appendStr(b, c)
		}
		b = binary.AppendUvarint(b, uint64(len(m.Rows)))
		for _, r := range m.Rows {
			b = store.AppendRow(b, r)
		}
	case *ErrorMsg:
		b = append(b, byte(MsgError))
		b = appendStr(b, m.Text)
	case *RetryMsg:
		b = append(b, byte(MsgRetry))
		b = binary.AppendVarint(b, m.AfterMS)
	case *HelloAck:
		b = append(b, byte(MsgHelloAck))
		b = binary.AppendVarint(b, m.SessionID)
	case *StatusReq:
		b = append(b, byte(MsgStatusReq))
	case *StatusMsg:
		b = append(b, byte(MsgStatus))
		b = binary.AppendUvarint(b, uint64(len(m.Sources)))
		for _, s := range m.Sources {
			b = appendStr(b, s.Name)
			b = appendStr(b, s.Status)
			if s.Stale {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = binary.AppendVarint(b, s.AgeMs)
			b = binary.AppendVarint(b, s.Seq)
			b = binary.AppendVarint(b, s.Lag)
		}
	default:
		return nil, fmt.Errorf("mobile: cannot encode %T", msg)
	}
	return b, nil
}

// Bye closes a session.
type Bye struct{}

func decodeMsg(p []byte) (any, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("mobile: empty message")
	}
	r := bufio.NewReader(newSliceReader(p[1:]))
	switch MsgType(p[0]) {
	case MsgHello:
		sb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		budget, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		cb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		return &Hello{Strategy: Strategy(sb), Budget: int(budget), Compress: cb == 1}, nil
	case MsgOpen:
		s, err := readStr(r)
		if err != nil {
			return nil, err
		}
		return &Open{Node: s}, nil
	case MsgQuery:
		s, err := readStr(r)
		if err != nil {
			return nil, err
		}
		return &Query{DTQL: s}, nil
	case MsgBye:
		return &Bye{}, nil
	case MsgTreeDelta:
		rb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		focus, err := binary.ReadVarint(r)
		if err != nil {
			return nil, err
		}
		nAdd, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if nAdd > maxFrame/8 {
			return nil, fmt.Errorf("mobile: add count %d too large", nAdd)
		}
		d := &TreeDelta{Reset: rb == 1, Focus: focus}
		for i := uint64(0); i < nAdd; i++ {
			wn, err := readWireNode(r)
			if err != nil {
				return nil, err
			}
			d.Add = append(d.Add, wn)
		}
		nRem, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if nRem > maxFrame/2 {
			return nil, fmt.Errorf("mobile: remove count %d too large", nRem)
		}
		for i := uint64(0); i < nRem; i++ {
			pre, err := binary.ReadVarint(r)
			if err != nil {
				return nil, err
			}
			d.Remove = append(d.Remove, pre)
		}
		return d, nil
	case MsgQueryResult:
		nCols, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if nCols > 4096 {
			return nil, fmt.Errorf("mobile: column count %d too large", nCols)
		}
		q := &QueryResult{}
		for i := uint64(0); i < nCols; i++ {
			c, err := readStr(r)
			if err != nil {
				return nil, err
			}
			q.Columns = append(q.Columns, c)
		}
		nRows, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if nRows > maxFrame/4 {
			return nil, fmt.Errorf("mobile: row count %d too large", nRows)
		}
		for i := uint64(0); i < nRows; i++ {
			row, err := store.ReadRow(r)
			if err != nil {
				return nil, err
			}
			q.Rows = append(q.Rows, row)
		}
		return q, nil
	case MsgError:
		s, err := readStr(r)
		if err != nil {
			return nil, err
		}
		return &ErrorMsg{Text: s}, nil
	case MsgRetry:
		ms, err := binary.ReadVarint(r)
		if err != nil {
			return nil, err
		}
		return &RetryMsg{AfterMS: ms}, nil
	case MsgHelloAck:
		id, err := binary.ReadVarint(r)
		if err != nil {
			return nil, err
		}
		return &HelloAck{SessionID: id}, nil
	case MsgStatusReq:
		return &StatusReq{}, nil
	case MsgStatus:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if n > 4096 {
			return nil, fmt.Errorf("mobile: source count %d too large", n)
		}
		m := &StatusMsg{}
		for i := uint64(0); i < n; i++ {
			var s SourceStatus
			if s.Name, err = readStr(r); err != nil {
				return nil, err
			}
			if s.Status, err = readStr(r); err != nil {
				return nil, err
			}
			sb, err := r.ReadByte()
			if err != nil {
				return nil, err
			}
			s.Stale = sb == 1
			if s.AgeMs, err = binary.ReadVarint(r); err != nil {
				return nil, err
			}
			if s.Seq, err = binary.ReadVarint(r); err != nil {
				return nil, err
			}
			if s.Lag, err = binary.ReadVarint(r); err != nil {
				return nil, err
			}
			m.Sources = append(m.Sources, s)
		}
		return m, nil
	}
	return nil, fmt.Errorf("mobile: unknown message type %d", p[0])
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readStr(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxFrame {
		return "", fmt.Errorf("mobile: string of %d bytes exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func appendWireNode(b []byte, n WireNode) []byte {
	b = binary.AppendVarint(b, n.Pre)
	b = appendStr(b, n.Name)
	b = binary.AppendVarint(b, n.ParentPre)
	flags := byte(0)
	if n.IsLeaf {
		flags |= 1
	}
	if n.Collapsed {
		flags |= 2
	}
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(n.LeafCount))
	b = appendF64(b, n.Length)
	b = appendF64(b, n.X)
	b = appendF64(b, n.Y)
	return b
}

func readWireNode(r *bufio.Reader) (WireNode, error) {
	var n WireNode
	var err error
	if n.Pre, err = binary.ReadVarint(r); err != nil {
		return n, err
	}
	if n.Name, err = readStr(r); err != nil {
		return n, err
	}
	if n.ParentPre, err = binary.ReadVarint(r); err != nil {
		return n, err
	}
	flags, err := r.ReadByte()
	if err != nil {
		return n, err
	}
	n.IsLeaf = flags&1 != 0
	n.Collapsed = flags&2 != 0
	lc, err := binary.ReadUvarint(r)
	if err != nil {
		return n, err
	}
	n.LeafCount = int64(lc)
	if n.Length, err = readF64(r); err != nil {
		return n, err
	}
	if n.X, err = readF64(r); err != nil {
		return n, err
	}
	if n.Y, err = readF64(r); err != nil {
		return n, err
	}
	return n, nil
}

func appendF64(b []byte, f float64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
	return append(b, tmp[:]...)
}

func readF64(r *bufio.Reader) (float64, error) {
	var tmp [8]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(tmp[:])), nil
}

// sliceReader is a minimal io.Reader over a byte slice.
type sliceReader struct{ p []byte }

func newSliceReader(p []byte) *sliceReader { return &sliceReader{p} }

func (s *sliceReader) Read(b []byte) (int, error) {
	if len(s.p) == 0 {
		return 0, io.EOF
	}
	n := copy(b, s.p)
	s.p = s.p[n:]
	return n, nil
}
