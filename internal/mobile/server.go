package mobile

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"drugtree/internal/core"
)

// Server speaks the mobile protocol over stream connections, one
// session per connection.
type Server struct {
	engine *core.Engine
	// Async controls whether prefetching runs in a goroutine after
	// each interaction (production) or synchronously (deterministic
	// experiments).
	Async bool
	// ReadTimeout bounds the wait for each client message on
	// connections that support read deadlines (net.Conn); zero waits
	// forever. A phone that goes dark mid-session then releases its
	// server goroutine instead of pinning it.
	ReadTimeout time.Duration
	// Now supplies the wall time used to arm read deadlines
	// (net.Conn deadlines are absolute wall times). Nil uses the real
	// wall clock; tests inject a scripted function.
	Now func() time.Time

	// panicHook, when set, runs before each message dispatch; tests
	// use it to drive the panic-recovery path.
	panicHook func(msg any)

	mu       sync.Mutex
	sessions int64
}

// NewServer wraps an engine.
func NewServer(e *core.Engine) *Server {
	return &Server{engine: e}
}

// Sessions returns the number of sessions served.
func (s *Server) Sessions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions
}

// Serve accepts connections until the listener closes. Sessions run
// under ctx: cancelling it aborts every in-flight query.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			_ = s.ServeConn(ctx, conn)
		}()
	}
}

// session is per-connection state.
type session struct {
	strategy Strategy
	budget   int
	compress bool
	held     map[int64]bool // node pre numbers the client holds
}

// armReadDeadline applies the server's per-message read deadline when
// the connection supports one.
func (s *Server) armReadDeadline(conn io.ReadWriter) {
	if s.ReadTimeout <= 0 {
		return
	}
	now := s.Now
	if now == nil {
		now = wallNow
	}
	if d, ok := conn.(interface{ SetReadDeadline(time.Time) error }); ok {
		_ = d.SetReadDeadline(now().Add(s.ReadTimeout))
	}
}

// statusMsg snapshots per-source freshness for the wire.
func (s *Server) statusMsg() *StatusMsg {
	out := &StatusMsg{}
	for _, h := range s.engine.SourceHealth() {
		out.Sources = append(out.Sources, SourceStatus{
			Name:   h.Source,
			Status: h.Status.String(),
			Stale:  h.Stale,
			AgeMs:  h.Age.Milliseconds(),
		})
	}
	return out
}

// ServeConn runs one session to completion. Queries execute under
// ctx, so cancelling it aborts a session mid-query. A panic anywhere
// in the session is confined to it: the client gets an ErrorMsg and
// the server keeps accepting other sessions.
func (s *Server) ServeConn(ctx context.Context, conn io.ReadWriter) (err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	s.sessions++
	s.mu.Unlock()
	defer func() {
		if rec := recover(); rec != nil {
			s.engine.Metrics.Counter("mobile.session_panics").Inc()
			_ = WriteMsg(conn, &ErrorMsg{Text: "internal server error"})
			err = fmt.Errorf("mobile: session panic: %v", rec)
		}
	}()

	r := bufio.NewReader(conn)
	// First message must be Hello.
	s.armReadDeadline(conn)
	first, _, err := ReadMsg(r)
	if err != nil {
		return fmt.Errorf("mobile: reading hello: %w", err)
	}
	hello, ok := first.(*Hello)
	if !ok {
		WriteMsg(conn, &ErrorMsg{Text: "expected HELLO"})
		return fmt.Errorf("mobile: first message was %T", first)
	}
	sess := &session{
		strategy: hello.Strategy,
		budget:   hello.Budget,
		compress: hello.Compress,
		held:     make(map[int64]bool),
	}
	if sess.budget <= 0 {
		sess.budget = 100
	}
	for {
		s.armReadDeadline(conn)
		msg, _, err := ReadMsg(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if s.panicHook != nil {
			s.panicHook(msg)
		}
		switch m := msg.(type) {
		case *Bye:
			return nil
		case *Open:
			if err := s.handleOpen(ctx, conn, sess, m); err != nil {
				return err
			}
		case *Query:
			if err := s.handleQuery(ctx, conn, sess, m); err != nil {
				return err
			}
		case *StatusReq:
			if err := s.respond(conn, sess, s.statusMsg()); err != nil {
				return err
			}
		default:
			if err := WriteMsg(conn, &ErrorMsg{Text: fmt.Sprintf("unexpected %T", msg)}); err != nil {
				return err
			}
		}
	}
}

func (s *Server) handleOpen(ctx context.Context, w io.Writer, sess *session, m *Open) error {
	id, err := s.engine.NodeByName(m.Node)
	if err != nil {
		return WriteMsg(w, &ErrorMsg{Text: err.Error()})
	}
	// Touch the cached navigation path so the semantic cache and
	// prefetcher observe the interaction exactly as the poster's
	// system would.
	if _, _, err := s.engine.OpenSubtree(ctx, m.Node); err != nil {
		return WriteMsg(w, &ErrorMsg{Text: err.Error()})
	}
	if s.Async {
		// Background prefetch outlives the interaction that triggered
		// it, so it runs under its own context, not the session's.
		//lint:ignore drugtree/ctxcheck async prefetch is one bounded pass that deliberately outlives the session context
		go s.engine.RunPrefetch(context.Background())
	} else {
		s.engine.RunPrefetch(ctx)
	}

	var delta *TreeDelta
	switch sess.strategy {
	case StrategyFull:
		nodes := FullTree(s.engine)
		delta = &TreeDelta{Reset: true, Add: nodes, Focus: int64(s.engine.Tree().Pre(id))}
		sess.held = make(map[int64]bool, len(nodes))
		for _, n := range nodes {
			sess.held[n.Pre] = true
		}
	case StrategyLOD:
		nodes := BuildViewport(s.engine, id, sess.budget)
		delta = &TreeDelta{Reset: true, Add: nodes, Focus: int64(s.engine.Tree().Pre(id))}
		sess.held = make(map[int64]bool, len(nodes))
		for _, n := range nodes {
			sess.held[n.Pre] = true
		}
	case StrategyLODDelta:
		nodes := BuildViewport(s.engine, id, sess.budget)
		add, remove := DiffViewports(sess.held, nodes)
		delta = &TreeDelta{Add: add, Remove: remove, Focus: int64(s.engine.Tree().Pre(id))}
		for _, n := range add {
			sess.held[n.Pre] = true
		}
		for _, pre := range remove {
			delete(sess.held, pre)
		}
	default:
		return WriteMsg(w, &ErrorMsg{Text: fmt.Sprintf("unknown strategy %d", sess.strategy)})
	}
	return s.respond(w, sess, delta)
}

func (s *Server) handleQuery(ctx context.Context, w io.Writer, sess *session, m *Query) error {
	res, err := s.engine.Query(ctx, m.DTQL)
	if err != nil {
		return WriteMsg(w, &ErrorMsg{Text: err.Error()})
	}
	return s.respond(w, sess, &QueryResult{Columns: res.Columns, Rows: res.Rows})
}

// respond writes a response honoring the session's compression
// negotiation.
func (s *Server) respond(w io.Writer, sess *session, msg any) error {
	if sess.compress {
		_, err := WriteMsgCompressed(w, msg)
		return err
	}
	return WriteMsg(w, msg)
}
