package mobile

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"drugtree/internal/admission"
	"drugtree/internal/core"
)

// Refusal errors returned by ServeConn when a session is turned away
// at the handshake. The client saw a RetryMsg, not a hard failure.
var (
	// ErrSessionLimit means MaxSessions concurrent sessions were
	// already active.
	ErrSessionLimit = errors.New("mobile: session limit reached")
	// ErrDraining means the server is shutting down gracefully and
	// refuses new sessions.
	ErrDraining = errors.New("mobile: server draining")
)

// defaultRetryAfter is the retry hint sent with a RetryMsg when no
// better estimate exists (session refusal, unspecified RetryAfter).
const defaultRetryAfter = 250 * time.Millisecond

// defaultDrainTimeout bounds the graceful drain Serve runs when its
// context is cancelled.
const defaultDrainTimeout = 5 * time.Second

// Server speaks the mobile protocol over stream connections, one
// session per connection.
type Server struct {
	engine *core.Engine
	// Async controls whether prefetching runs in a goroutine after
	// each interaction (production) or synchronously (deterministic
	// experiments).
	Async bool
	// ReadTimeout bounds the wait for each client message on
	// connections that support read deadlines (net.Conn); zero waits
	// forever. A phone that goes dark mid-session then releases its
	// server goroutine instead of pinning it.
	ReadTimeout time.Duration
	// Now supplies the wall time used to arm read deadlines
	// (net.Conn deadlines are absolute wall times). Nil uses the real
	// wall clock; tests inject a scripted function.
	Now func() time.Time

	// MaxSessions caps concurrent sessions; beyond it a handshake is
	// answered with a RetryMsg instead of a HelloAck. Zero means
	// unlimited.
	MaxSessions int
	// RetryAfter is the hint attached to session-refusal RetryMsgs;
	// zero uses defaultRetryAfter.
	RetryAfter time.Duration
	// Rate, when set, applies a per-session token bucket to Open and
	// Query messages; a client that exceeds it gets a RetryMsg with a
	// refill-based hint rather than an error.
	Rate *admission.RateLimiter
	// DrainTimeout bounds the graceful drain Serve performs when its
	// context is cancelled; zero uses defaultDrainTimeout.
	DrainTimeout time.Duration

	// panicHook, when set, runs before each message dispatch; tests
	// use it to drive the panic-recovery path.
	panicHook func(msg any)

	mu       sync.Mutex
	sessions int64 // total sessions accepted (historical counter)
	nextID   int64
	active   map[*connState]struct{}
	draining bool
	drained  chan struct{} // closed when draining and active empties
}

// connState tracks one live session for drain coordination.
type connState struct {
	conn   io.ReadWriter
	busy   bool // a dispatch is executing
	closed bool // the server closed this conn (drain)
}

// NewServer wraps an engine.
func NewServer(e *core.Engine) *Server {
	return &Server{engine: e}
}

// Sessions returns the number of sessions served.
func (s *Server) Sessions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions
}

// ActiveSessions returns the number of currently live sessions.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}

func (s *Server) retryHint() time.Duration {
	if s.RetryAfter > 0 {
		return s.RetryAfter
	}
	return defaultRetryAfter
}

// register admits a new session, refusing it while draining or at the
// MaxSessions cap.
func (s *Server) register(conn io.ReadWriter) (*connState, int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, 0, ErrDraining
	}
	if s.MaxSessions > 0 && len(s.active) >= s.MaxSessions {
		return nil, 0, ErrSessionLimit
	}
	s.sessions++
	s.nextID++
	cs := &connState{conn: conn}
	if s.active == nil {
		s.active = make(map[*connState]struct{})
	}
	s.active[cs] = struct{}{}
	return cs, s.nextID, nil
}

// unregister retires a session and, when it was the last one a drain
// was waiting on, releases the drain.
func (s *Server) unregister(cs *connState) {
	s.mu.Lock()
	delete(s.active, cs)
	var release chan struct{}
	if s.draining && len(s.active) == 0 && s.drained != nil {
		release = s.drained
		s.drained = nil
	}
	s.mu.Unlock()
	if release != nil {
		close(release)
	}
}

// beginDispatch marks the session busy so a concurrent Drain lets the
// in-flight interaction finish. It reports false when the server
// already closed the conn (the session should end quietly).
func (s *Server) beginDispatch(cs *connState) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cs.closed {
		return false
	}
	cs.busy = true
	return true
}

// endDispatch clears the busy flag; if a drain started meanwhile the
// conn is closed now that its response is on the wire.
func (s *Server) endDispatch(cs *connState) {
	s.mu.Lock()
	cs.busy = false
	closeNow := s.draining && !cs.closed
	if closeNow {
		cs.closed = true
	}
	s.mu.Unlock()
	if closeNow {
		if c, ok := cs.conn.(io.Closer); ok {
			_ = c.Close()
		}
	}
}

// connClosed reports whether the server closed this session's conn.
func (s *Server) connClosed(cs *connState) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return cs.closed
}

// Drain stops admitting sessions, lets in-flight interactions finish,
// and closes idle connections. It returns once every session has
// ended, or ctx's error after force-closing whatever remains when ctx
// expires first. Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	s.draining = true
	empty := len(s.active) == 0
	if !empty && s.drained == nil {
		s.drained = make(chan struct{})
	}
	done := s.drained
	var idle []io.Closer
	for cs := range s.active {
		if !cs.busy && !cs.closed {
			cs.closed = true
			if c, ok := cs.conn.(io.Closer); ok {
				idle = append(idle, c)
			}
		}
	}
	s.mu.Unlock()
	for _, c := range idle {
		_ = c.Close()
	}
	if empty {
		return nil
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		var force []io.Closer
		for cs := range s.active {
			if !cs.closed {
				cs.closed = true
				if c, ok := cs.conn.(io.Closer); ok {
					force = append(force, c)
				}
			}
		}
		s.mu.Unlock()
		for _, c := range force {
			_ = c.Close()
		}
		return ctx.Err()
	}
}

// Serve accepts connections until the listener closes or ctx is
// cancelled. Cancellation is graceful: the listener stops accepting,
// in-flight interactions finish (bounded by DrainTimeout), and only
// then do remaining sessions abort.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// Sessions run detached from ctx so cancellation drains instead of
	// aborting mid-response; cancelSessions is the post-drain hammer.
	sessCtx, cancelSessions := context.WithCancel(context.WithoutCancel(ctx))
	defer cancelSessions()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			_ = l.Close()
		case <-stop:
		}
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() == nil {
				return err
			}
			dt := s.DrainTimeout
			if dt <= 0 {
				dt = defaultDrainTimeout
			}
			dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), dt)
			defer cancel()
			if derr := s.Drain(dctx); derr != nil {
				return fmt.Errorf("mobile: drain: %w", derr)
			}
			return ctx.Err()
		}
		go func() {
			defer conn.Close()
			_ = s.ServeConn(sessCtx, conn)
		}()
	}
}

// session is per-connection state.
type session struct {
	strategy Strategy
	budget   int
	compress bool
	key      string         // per-session rate-limit bucket key
	held     map[int64]bool // node pre numbers the client holds
}

// armReadDeadline applies the server's per-message read deadline when
// the connection supports one.
func (s *Server) armReadDeadline(conn io.ReadWriter) {
	if s.ReadTimeout <= 0 {
		return
	}
	now := s.Now
	if now == nil {
		now = wallNow
	}
	if d, ok := conn.(interface{ SetReadDeadline(time.Time) error }); ok {
		_ = d.SetReadDeadline(now().Add(s.ReadTimeout))
	}
}

// statusMsg snapshots per-source freshness for the wire, plus one
// pseudo-source per shard when the engine is partitioned: a failed
// partition shows up as a stale source, so the client badges the
// affected panels instead of treating degraded results as complete.
func (s *Server) statusMsg() *StatusMsg {
	out := &StatusMsg{}
	for _, h := range s.engine.SourceHealth() {
		out.Sources = append(out.Sources, SourceStatus{
			Name:   h.Source,
			Status: h.Status.String(),
			Stale:  h.Stale,
			AgeMs:  h.Age.Milliseconds(),
		})
	}
	for _, h := range s.engine.ShardHealth() {
		status := "fresh"
		switch h.Status {
		case "degraded":
			// Some replica is down but the shard still serves complete
			// answers — degraded redundancy, not stale data.
			status = "degraded"
		case "failed":
			status = "failed"
		}
		out.Sources = append(out.Sources, SourceStatus{
			Name:   fmt.Sprintf("shard-%d", h.Shard),
			Status: status,
			Stale:  h.Status == "failed",
			Seq:    h.WALSeq,
		})
		for _, rh := range h.Replicas {
			rs := "fresh"
			if rh.Status != "ok" {
				rs = "failed"
			} else if rh.Lag > 0 {
				rs = "degraded"
			}
			out.Sources = append(out.Sources, SourceStatus{
				Name:   fmt.Sprintf("shard-%d-replica-%d", h.Shard, rh.Replica),
				Status: rs,
				Stale:  rh.Status != "ok",
				Seq:    rh.AppliedSeq,
				Lag:    rh.Lag,
			})
		}
	}
	return out
}

// ServeConn runs one session to completion. Queries execute under
// ctx, so cancelling it aborts a session mid-query. A panic anywhere
// in the session is confined to it: the client gets an ErrorMsg and
// the server keeps accepting other sessions.
//
// The handshake is read before admission so the verdict — HelloAck or
// RetryMsg — is always a reply the client is waiting for; answering
// before reading would deadlock fully-synchronous transports
// (net.Pipe) with both ends blocked writing.
func (s *Server) ServeConn(ctx context.Context, conn io.ReadWriter) (err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	defer func() {
		if rec := recover(); rec != nil {
			s.engine.Metrics.Counter("mobile.session_panics").Inc()
			_ = WriteMsg(conn, &ErrorMsg{Text: "internal server error"})
			err = fmt.Errorf("mobile: session panic: %v", rec)
		}
	}()

	r := bufio.NewReader(conn)
	// First message must be Hello.
	s.armReadDeadline(conn)
	first, _, err := ReadMsg(r)
	if err != nil {
		return fmt.Errorf("mobile: reading hello: %w", err)
	}
	hello, ok := first.(*Hello)
	if !ok {
		WriteMsg(conn, &ErrorMsg{Text: "expected HELLO"})
		return fmt.Errorf("mobile: first message was %T", first)
	}
	cs, id, err := s.register(conn)
	if err != nil {
		s.engine.Metrics.Counter("mobile.sessions_refused").Inc()
		if werr := WriteMsg(conn, &RetryMsg{AfterMS: s.retryHint().Milliseconds()}); werr != nil {
			return fmt.Errorf("mobile: refusing session: %w", werr)
		}
		return err
	}
	defer s.unregister(cs)
	if err := WriteMsg(conn, &HelloAck{SessionID: id}); err != nil {
		return fmt.Errorf("mobile: acking hello: %w", err)
	}
	sess := &session{
		strategy: hello.Strategy,
		budget:   hello.Budget,
		compress: hello.Compress,
		key:      fmt.Sprintf("session-%d", id),
		held:     make(map[int64]bool),
	}
	if sess.budget <= 0 {
		sess.budget = 100
	}
	for {
		s.armReadDeadline(conn)
		msg, _, err := ReadMsg(r)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			if s.connClosed(cs) {
				// The server closed this conn during a drain; the
				// session ended cleanly from the client's view.
				return nil
			}
			return err
		}
		if s.panicHook != nil {
			s.panicHook(msg)
		}
		if !s.beginDispatch(cs) {
			return nil
		}
		bye, err := s.dispatch(ctx, conn, cs, sess, msg)
		s.endDispatch(cs)
		if bye || err != nil {
			return err
		}
	}
}

// dispatch handles one client message; bye reports a clean session
// end.
func (s *Server) dispatch(ctx context.Context, conn io.ReadWriter, cs *connState, sess *session, msg any) (bye bool, err error) {
	switch m := msg.(type) {
	case *Bye:
		return true, nil
	case *Open:
		if !s.allowRate(conn, sess) {
			return false, nil
		}
		return false, s.handleOpen(ctx, conn, sess, m)
	case *Query:
		if !s.allowRate(conn, sess) {
			return false, nil
		}
		return false, s.handleQuery(ctx, conn, sess, m)
	case *StatusReq:
		return false, s.respond(conn, sess, s.statusMsg())
	default:
		return false, WriteMsg(conn, &ErrorMsg{Text: fmt.Sprintf("unexpected %T", msg)})
	}
}

// allowRate applies the per-session token bucket, answering a
// RetryMsg with a refill-based hint when the bucket is dry. It
// reports whether the message may proceed.
func (s *Server) allowRate(w io.Writer, sess *session) bool {
	if s.Rate == nil {
		return true
	}
	err := s.Rate.Allow(sess.key)
	if err == nil {
		return true
	}
	s.engine.Metrics.Counter("mobile.rate_limited").Inc()
	after := admission.RetryAfterHint(err, s.retryHint())
	_ = s.respond(w, sess, &RetryMsg{AfterMS: after.Milliseconds()})
	return false
}

func (s *Server) handleOpen(ctx context.Context, w io.Writer, sess *session, m *Open) error {
	id, err := s.engine.NodeByName(m.Node)
	if err != nil {
		return WriteMsg(w, &ErrorMsg{Text: err.Error()})
	}
	// Touch the cached navigation path so the semantic cache and
	// prefetcher observe the interaction exactly as the poster's
	// system would.
	if _, _, err := s.engine.OpenSubtree(ctx, m.Node); err != nil {
		return WriteMsg(w, &ErrorMsg{Text: err.Error()})
	}
	if s.Async {
		// Background prefetch outlives the interaction that triggered
		// it, so it runs under its own context, not the session's.
		//lint:ignore drugtree/ctxcheck async prefetch is one bounded pass that deliberately outlives the session context
		go s.engine.RunPrefetch(context.Background())
	} else {
		s.engine.RunPrefetch(ctx)
	}

	var delta *TreeDelta
	switch sess.strategy {
	case StrategyFull:
		nodes := FullTree(s.engine)
		delta = &TreeDelta{Reset: true, Add: nodes, Focus: int64(s.engine.Tree().Pre(id))}
		sess.held = make(map[int64]bool, len(nodes))
		for _, n := range nodes {
			sess.held[n.Pre] = true
		}
	case StrategyLOD:
		nodes := BuildViewport(s.engine, id, sess.budget)
		delta = &TreeDelta{Reset: true, Add: nodes, Focus: int64(s.engine.Tree().Pre(id))}
		sess.held = make(map[int64]bool, len(nodes))
		for _, n := range nodes {
			sess.held[n.Pre] = true
		}
	case StrategyLODDelta:
		nodes := BuildViewport(s.engine, id, sess.budget)
		add, remove := DiffViewports(sess.held, nodes)
		delta = &TreeDelta{Add: add, Remove: remove, Focus: int64(s.engine.Tree().Pre(id))}
		for _, n := range add {
			sess.held[n.Pre] = true
		}
		for _, pre := range remove {
			delete(sess.held, pre)
		}
	default:
		return WriteMsg(w, &ErrorMsg{Text: fmt.Sprintf("unknown strategy %d", sess.strategy)})
	}
	return s.respond(w, sess, delta)
}

func (s *Server) handleQuery(ctx context.Context, w io.Writer, sess *session, m *Query) error {
	res, err := s.engine.Query(ctx, m.DTQL)
	if err != nil {
		if admission.IsShed(err) {
			// The engine's limiter turned the query away: tell the
			// client when to retry rather than reporting a failure.
			s.engine.Metrics.Counter("mobile.sheds").Inc()
			after := admission.RetryAfterHint(err, s.retryHint())
			return s.respond(w, sess, &RetryMsg{AfterMS: after.Milliseconds()})
		}
		return WriteMsg(w, &ErrorMsg{Text: err.Error()})
	}
	return s.respond(w, sess, &QueryResult{Columns: res.Columns, Rows: res.Rows})
}

// respond writes a response honoring the session's compression
// negotiation.
func (s *Server) respond(w io.Writer, sess *session, msg any) error {
	if sess.compress {
		_, err := WriteMsgCompressed(w, msg)
		return err
	}
	return WriteMsg(w, msg)
}
