package mobile

import (
	"context"
	"errors"
	"testing"
	"time"

	"drugtree/internal/admission"
	"drugtree/internal/core"
	"drugtree/internal/datagen"
	"drugtree/internal/integrate"
	"drugtree/internal/netsim"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

// heldEngine builds an engine from cfg (which must set Admission with
// MaxConcurrency 1) and acquires the limiter's only slot, so every
// query sheds or queues until the returned release runs. release is
// safe to call more than once.
func heldEngine(t *testing.T, cfg core.Config) (*core.Engine, func()) {
	t.Helper()
	gen := datagen.DefaultConfig()
	gen.NumFamilies = 3
	gen.ProteinsPerFamily = 10
	gen.NumLigands = 12
	ds, err := datagen.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	bundle := source.NewBundle(ds, netsim.ProfileLAN, 5, true)
	if _, err := integrate.NewImporter(db, bundle).ImportAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	e, err := core.New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	release, err := e.Limiter().Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(release)
	return e, release
}

func TestSessionCapRefusesHandshake(t *testing.T) {
	server := NewServer(testEngine(t))
	server.MaxSessions = 1
	server.RetryAfter = 125 * time.Millisecond

	connA, doneA := serveOnce(t, server)
	a, err := Dial(connA, StrategyLOD, 50)
	if err != nil {
		t.Fatal(err)
	}

	// A second handshake must be answered with RETRY, not served.
	connB, doneB := serveOnce(t, server)
	_, err = Dial(connB, StrategyLOD, 50)
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("over-cap dial got %v, want BusyError", err)
	}
	if busy.After != 125*time.Millisecond {
		t.Fatalf("retry hint = %v, want the server's RetryAfter", busy.After)
	}
	if !IsBusy(err) {
		t.Fatal("IsBusy(refusal) = false")
	}
	if serr := waitSession(t, doneB); !errors.Is(serr, ErrSessionLimit) {
		t.Fatalf("refused session exited with %v, want ErrSessionLimit", serr)
	}
	if got := server.engine.Metrics.Counter("mobile.sessions_refused").Value(); got != 1 {
		t.Fatalf("sessions_refused = %d", got)
	}
	// Only the accepted session counts.
	if got := server.Sessions(); got != 1 {
		t.Fatalf("Sessions() = %d, want 1", got)
	}

	// Once the active session ends, capacity frees up.
	a.Close()
	connA.Close()
	waitSession(t, doneA)
	connC, doneC := serveOnce(t, server)
	c, err := Dial(connC, StrategyLOD, 50)
	if err != nil {
		t.Fatalf("dial after capacity freed: %v", err)
	}
	c.Close()
	waitSession(t, doneC)
}

func TestRateLimitedRequestGetsRetryMsg(t *testing.T) {
	vc := netsim.NewVirtualClock()
	server := NewServer(testEngine(t))
	server.Rate = admission.NewRateLimiter(admission.RateConfig{QPS: 1, Burst: 1, Clock: vc})

	conn, done := serveOnce(t, server)
	c, err := Dial(conn, StrategyLOD, 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT COUNT(*) FROM proteins"); err != nil {
		t.Fatalf("first query (burst token): %v", err)
	}
	// Bucket dry: the server answers RETRY with a refill-based hint,
	// and with no retry budget the client surfaces it as BusyError.
	_, err = c.Query("SELECT COUNT(*) FROM proteins")
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("rate-limited query got %v, want BusyError", err)
	}
	if busy.After < 900*time.Millisecond || busy.After > 1100*time.Millisecond {
		t.Fatalf("retry hint = %v, want ≈1s at 1 QPS", busy.After)
	}
	if c.Sheds != 1 {
		t.Fatalf("Sheds = %d, want 1", c.Sheds)
	}
	if got := server.engine.Metrics.Counter("mobile.rate_limited").Value(); got != 1 {
		t.Fatalf("rate_limited counter = %d", got)
	}
	c.Close()
	waitSession(t, done)
}

func TestClientBackoffRetriesShedQuery(t *testing.T) {
	// Hold the engine's only admission slot so queries shed until the
	// test releases it; the client must ride out the sheds on backoff.
	eng := core.DefaultConfig()
	eng.Admission = &admission.Config{MaxConcurrency: 1, MaxQueue: 0}
	e, release := heldEngine(t, eng)
	server := NewServer(e)
	server.RetryAfter = time.Millisecond

	conn, done := serveOnce(t, server)
	c, err := Dial(conn, StrategyLOD, 50)
	if err != nil {
		t.Fatal(err)
	}
	c.Backoff = source.RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, JitterSeed: 7}
	c.MaxRetries = 100

	got := make(chan error, 1)
	go func() {
		_, qerr := c.Query("SELECT COUNT(*) FROM proteins")
		got <- qerr
	}()
	// Let at least one shed round-trip happen, then free the slot.
	time.Sleep(20 * time.Millisecond)
	release()
	select {
	case qerr := <-got:
		if qerr != nil {
			t.Fatalf("query after backoff retries: %v", qerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query did not complete after slot release")
	}
	if c.Sheds == 0 {
		t.Fatal("client never observed a shed")
	}
	c.Close()
	waitSession(t, done)
}

func TestClientZeroRetriesSurfacesBusy(t *testing.T) {
	eng := core.DefaultConfig()
	eng.Admission = &admission.Config{MaxConcurrency: 1, MaxQueue: 0}
	e, release := heldEngine(t, eng)
	defer release()
	server := NewServer(e)

	conn, done := serveOnce(t, server)
	c, err := Dial(conn, StrategyLOD, 50)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Query("SELECT COUNT(*) FROM proteins")
	if !IsBusy(err) {
		t.Fatalf("shed query with MaxRetries=0 got %v, want BusyError", err)
	}
	c.Close()
	waitSession(t, done)
}

// TestDrainFinishesInFlightQuery proves the graceful-drain guarantee:
// a query already dispatched when Drain starts completes and its
// response reaches the client — zero dropped in-flight work — while
// new handshakes are refused.
func TestDrainFinishesInFlightQuery(t *testing.T) {
	eng := core.DefaultConfig()
	eng.Admission = &admission.Config{MaxConcurrency: 1, MaxQueue: 4}
	e, release := heldEngine(t, eng)
	server := NewServer(e)

	conn, done := serveOnce(t, server)
	c, err := Dial(conn, StrategyLOD, 50)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, qerr := c.Query("SELECT COUNT(*) FROM proteins")
		got <- qerr
	}()
	// Wait until the query is queued behind the held slot — it is then
	// in-flight from the server's perspective (dispatch begun).
	deadline := time.Now().Add(5 * time.Second)
	for e.Limiter().Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never queued")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- server.Drain(ctx)
	}()
	// Drain must not return while the dispatch is executing.
	select {
	case derr := <-drained:
		t.Fatalf("drain returned %v with a query in flight", derr)
	case <-time.After(30 * time.Millisecond):
	}
	// While draining, new handshakes are refused.
	connB, doneB := serveOnce(t, server)
	if _, err := Dial(connB, StrategyLOD, 50); !IsBusy(err) {
		t.Fatalf("dial during drain got %v, want BusyError", err)
	}
	if serr := waitSession(t, doneB); !errors.Is(serr, ErrDraining) {
		t.Fatalf("refused session exited with %v, want ErrDraining", serr)
	}

	release()
	if qerr := <-got; qerr != nil {
		t.Fatalf("in-flight query dropped by drain: %v", qerr)
	}
	select {
	case derr := <-drained:
		if derr != nil {
			t.Fatalf("drain: %v", derr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not return after last session ended")
	}
	if got := server.ActiveSessions(); got != 0 {
		t.Fatalf("ActiveSessions() after drain = %d", got)
	}
	waitSession(t, done)
	// Drain is idempotent once everything ended.
	if err := server.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func TestDrainForceClosesOnDeadline(t *testing.T) {
	server := NewServer(testEngine(t))
	conn, done := serveOnce(t, server)
	if _, err := Dial(conn, StrategyLOD, 50); err != nil {
		t.Fatal(err)
	}
	// With an already-cancelled context, drain force-closes whatever
	// remains and reports the context error (or nil if the session
	// unregistered first) — it must never hang.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := server.Drain(ctx); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("drain: %v", err)
	}
	// The server closed the conn, so the session ends cleanly.
	if serr := waitSession(t, done); serr != nil {
		t.Fatalf("session exit after forced drain: %v", serr)
	}
	if got := server.ActiveSessions(); got != 0 {
		t.Fatalf("ActiveSessions() after forced drain = %d", got)
	}
}
