package mobile

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"drugtree/internal/core"
	"drugtree/internal/netsim"
)

// serveOnce spawns one ServeConn session over a fresh in-memory pipe
// and returns the client end plus the session's exit channel. A
// cleanup closes the pipe and joins the session goroutine so no test
// exits with a server blocked in ReadMsg (the package TestMain runs
// leaktest).
func serveOnce(t *testing.T, server *Server) (net.Conn, chan error) {
	t.Helper()
	clientConn, serverConn := net.Pipe()
	done := make(chan error, 1)
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		defer serverConn.Close()
		done <- server.ServeConn(context.Background(), serverConn)
	}()
	t.Cleanup(func() {
		clientConn.Close()
		select {
		case <-exited:
		case <-time.After(5 * time.Second):
			t.Error("server session goroutine did not exit")
		}
	})
	return clientConn, done
}

// waitSession asserts a session goroutine exits within the deadline and
// returns its error.
func waitSession(t *testing.T, done chan error) error {
	t.Helper()
	select {
	case err := <-done:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("session goroutine did not exit")
		return nil
	}
}

// assertServes proves the server still answers fresh sessions — the
// invariant every fault below must preserve.
func assertServes(t *testing.T, server *Server) {
	t.Helper()
	conn, done := serveOnce(t, server)
	defer conn.Close()
	c, err := Dial(conn, StrategyLOD, 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT COUNT(*) FROM proteins"); err != nil {
		t.Fatalf("server stopped serving after a faulted session: %v", err)
	}
	c.Close()
	waitSession(t, done)
}

func TestServerPanicConfinedToSession(t *testing.T) {
	e := testEngine(t)
	server := NewServer(e)
	server.panicHook = func(msg any) {
		if _, ok := msg.(*Query); ok {
			panic("injected fault")
		}
	}
	conn, done := serveOnce(t, server)
	defer conn.Close()
	c, err := Dial(conn, StrategyLOD, 50)
	if err != nil {
		t.Fatal(err)
	}
	// The panicking dispatch must surface as an ErrorMsg, not a hung or
	// dropped connection.
	_, err = c.Query("SELECT COUNT(*) FROM proteins")
	if err == nil || !strings.Contains(err.Error(), "internal server error") {
		t.Fatalf("client saw %v, want internal server error", err)
	}
	serr := waitSession(t, done)
	if serr == nil || !strings.Contains(serr.Error(), "panic") {
		t.Fatalf("session returned %v, want panic error", serr)
	}
	if got := e.Metrics.Counter("mobile.session_panics").Value(); got != 1 {
		t.Fatalf("session_panics = %d", got)
	}
	// The blast radius ends at the session boundary.
	server.panicHook = nil
	assertServes(t, server)
}

func TestServerGarbageFirstFrame(t *testing.T) {
	e := testEngine(t)
	server := NewServer(e)
	conn, done := serveOnce(t, server)
	// A length prefix far beyond maxFrame: the server must reject it
	// without allocating or stalling.
	if _, err := conn.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}); err != nil {
		t.Fatal(err)
	}
	if serr := waitSession(t, done); serr == nil {
		t.Fatal("server accepted a garbage first frame")
	}
	conn.Close()
	assertServes(t, server)
}

func TestServerReadDeadlineReleasesStalledSession(t *testing.T) {
	e := testEngine(t)
	server := NewServer(e)
	server.ReadTimeout = 50 * time.Millisecond
	conn, done := serveOnce(t, server)
	defer conn.Close()
	// Dial sends Hello, then the phone goes dark: the deadline must
	// release the goroutine instead of pinning it forever.
	if _, err := Dial(conn, StrategyLOD, 50); err != nil {
		t.Fatal(err)
	}
	serr := waitSession(t, done)
	if !errors.Is(serr, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled session returned %v, want deadline error", serr)
	}
	assertServes(t, server)
}

func TestServerMidSessionDrop(t *testing.T) {
	e := testEngine(t)
	server := NewServer(e)
	conn, done := serveOnce(t, server)
	c, err := Dial(conn, StrategyLOD, 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT COUNT(*) FROM ligands"); err != nil {
		t.Fatal(err)
	}
	// Connection dies mid-session without a Bye.
	conn.Close()
	waitSession(t, done)
	assertServes(t, server)
}

func TestClientReconnectReplaysHello(t *testing.T) {
	e := testEngine(t)
	server := NewServer(e)
	conn, _ := serveOnce(t, server)
	c, err := Dial(conn, StrategyLOD, 50)
	if err != nil {
		t.Fatal(err)
	}
	c.Redial = func() (io.ReadWriter, error) {
		next, _ := serveOnce(t, server)
		return next, nil
	}
	c.MaxRedials = 2
	if _, err := c.Query("SELECT COUNT(*) FROM proteins"); err != nil {
		t.Fatal(err)
	}
	// Tower handoff: the transport dies under the client, which must
	// redial, replay its Hello, and retry transparently.
	conn.Close()
	res, err := c.Query("SELECT COUNT(*) FROM proteins")
	if err != nil {
		t.Fatalf("query after transport loss: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if c.Reconnects != 1 {
		t.Fatalf("reconnects = %d, want 1", c.Reconnects)
	}
	// The replayed Hello opened a second server session.
	if server.Sessions() != 2 {
		t.Fatalf("sessions = %d, want 2", server.Sessions())
	}
}

func TestClientReconnectBounded(t *testing.T) {
	e := testEngine(t)
	server := NewServer(e)
	conn, _ := serveOnce(t, server)
	c, err := Dial(conn, StrategyLOD, 50)
	if err != nil {
		t.Fatal(err)
	}
	redials := 0
	c.Redial = func() (io.ReadWriter, error) {
		redials++
		return nil, errors.New("no signal")
	}
	c.MaxRedials = 3
	conn.Close()
	if _, err := c.Query("SELECT COUNT(*) FROM proteins"); err == nil {
		t.Fatal("query succeeded with no transport")
	}
	if redials > c.MaxRedials {
		t.Fatalf("client redialled %d times, bound %d", redials, c.MaxRedials)
	}
	if c.Reconnects != 0 {
		t.Fatalf("reconnects = %d with failing redial", c.Reconnects)
	}
}

func TestClientNoRedialFailsFast(t *testing.T) {
	e := testEngine(t)
	server := NewServer(e)
	conn, _ := serveOnce(t, server)
	c, err := Dial(conn, StrategyLOD, 50)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if _, err := c.Query("SELECT COUNT(*) FROM proteins"); err == nil {
		t.Fatal("query succeeded on a dead transport without Redial")
	}
}

func TestStatusOverWire(t *testing.T) {
	// Without an attached importer the status list is empty but the
	// message round-trips; richer coverage lives in the integrate tests.
	e := testEngine(t)
	server := NewServer(e)
	conn, done := serveOnce(t, server)
	defer conn.Close()
	c, err := Dial(conn, StrategyLOD, 50)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sources) != 0 {
		t.Fatalf("engine without health fn reported %d sources", len(st.Sources))
	}
	c.Close()
	waitSession(t, done)
}

func TestShardStatusOverWire(t *testing.T) {
	// A partitioned engine surfaces one pseudo-source per shard: a
	// failed partition shows up as a stale source so the client badges
	// degraded panels instead of presenting partial results as live.
	cfg := core.DefaultConfig()
	cfg.Shards = 3
	e := testEngineCfg(t, cfg)
	server := NewServer(e)
	conn, done := serveOnce(t, server)
	defer conn.Close()
	c, err := Dial(conn, StrategyLOD, 50)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sources) != 3 {
		t.Fatalf("sharded engine reported %d sources, want 3", len(st.Sources))
	}
	for i, s := range st.Sources {
		if s.Name != fmt.Sprintf("shard-%d", i) || s.Status != "fresh" || s.Stale {
			t.Fatalf("shard source %d = %+v, want fresh shard-%d", i, s, i)
		}
	}
	e.Coordinator().FailShard(1)
	st, err = c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sources[1].Status != "failed" || !st.Sources[1].Stale {
		t.Fatalf("failed shard source = %+v, want failed+stale", st.Sources[1])
	}
	if st.Sources[0].Stale || st.Sources[2].Stale {
		t.Fatalf("healthy shards marked stale: %+v", st.Sources)
	}
	c.Close()
	waitSession(t, done)
}

func TestReplicaStatusOverWire(t *testing.T) {
	// With replication on, STATUS carries one pseudo-source per shard
	// (WAL frontier in Seq) plus one per replica (applied seq + lag), so
	// a mobile client can badge degraded redundancy — a dead follower —
	// separately from missing data.
	cfg := core.DefaultConfig()
	cfg.Shards = 3
	cfg.Replicas = 1
	cfg.ReplicaClock = netsim.NewVirtualClock()
	e := testEngineCfg(t, cfg)
	server := NewServer(e)
	conn, done := serveOnce(t, server)
	defer conn.Close()
	c, err := Dial(conn, StrategyLOD, 50)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	// 3 shard sources, each followed by its 2 replica sources.
	if len(st.Sources) != 9 {
		t.Fatalf("replicated engine reported %d sources, want 9", len(st.Sources))
	}
	byName := map[string]SourceStatus{}
	for _, s := range st.Sources {
		byName[s.Name] = s
	}
	for i := 0; i < 3; i++ {
		sh, ok := byName[fmt.Sprintf("shard-%d", i)]
		if !ok || sh.Status != "fresh" || sh.Stale || sh.Seq == 0 {
			t.Fatalf("shard-%d source = %+v, want fresh with nonzero Seq", i, sh)
		}
		for j := 0; j < 2; j++ {
			rh, ok := byName[fmt.Sprintf("shard-%d-replica-%d", i, j)]
			if !ok || rh.Status != "fresh" || rh.Stale || rh.Lag != 0 {
				t.Fatalf("shard-%d-replica-%d source = %+v, want fresh at lag 0", i, j, rh)
			}
			if rh.Seq != sh.Seq {
				t.Fatalf("shard-%d-replica-%d applied seq %d, frontier %d", i, j, rh.Seq, sh.Seq)
			}
		}
	}
	// A dead follower degrades the shard's redundancy, not its data:
	// the shard source stays un-stale while the replica source fails.
	e.Coordinator().KillReplica(1, 1)
	st, err = c.Status()
	if err != nil {
		t.Fatal(err)
	}
	byName = map[string]SourceStatus{}
	for _, s := range st.Sources {
		byName[s.Name] = s
	}
	if sh := byName["shard-1"]; sh.Status != "degraded" || sh.Stale {
		t.Fatalf("shard-1 with dead follower = %+v, want degraded and not stale", sh)
	}
	if rh := byName["shard-1-replica-1"]; rh.Status != "failed" || !rh.Stale {
		t.Fatalf("dead follower source = %+v, want failed+stale", rh)
	}
	c.Close()
	waitSession(t, done)
}
