package mobile

import (
	"bufio"
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"drugtree/internal/core"
	"drugtree/internal/datagen"
	"drugtree/internal/integrate"
	"drugtree/internal/netsim"
	"drugtree/internal/phylo"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

func testEngine(t *testing.T) *core.Engine {
	t.Helper()
	return testEngineCfg(t, core.DefaultConfig())
}

func testEngineCfg(t *testing.T, cfg core.Config) *core.Engine {
	t.Helper()
	gen := datagen.DefaultConfig()
	gen.NumFamilies = 3
	gen.ProteinsPerFamily = 10
	gen.NumLigands = 12
	ds, err := datagen.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	bundle := source.NewBundle(ds, netsim.ProfileLAN, 5, true)
	if _, err := integrate.NewImporter(db, bundle).ImportAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	e, err := core.New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestMessageRoundTrips(t *testing.T) {
	msgs := []any{
		&Hello{Strategy: StrategyLODDelta, Budget: 75},
		&Open{Node: "clade_3"},
		&Query{DTQL: "SELECT * FROM proteins"},
		&Bye{},
		&TreeDelta{
			Reset: true, Focus: 7,
			Add: []WireNode{
				{Pre: 1, Name: "a", ParentPre: 0, IsLeaf: true, LeafCount: 1, Length: 0.5, X: 1.5, Y: 2},
				{Pre: 2, Name: "clade", ParentPre: 0, Collapsed: true, LeafCount: 42, Length: 0.1, X: 0.4, Y: 9},
			},
			Remove: []int64{3, 4, 5},
		},
		&QueryResult{
			Columns: []string{"a", "b"},
			Rows: []store.Row{
				{store.IntValue(1), store.StringValue("x")},
				{store.FloatValue(2.5), store.NullValue()},
			},
		},
		&ErrorMsg{Text: "boom"},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMsg(&buf, m); err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
	}
	r := bufio.NewReader(&buf)
	for _, want := range msgs {
		got, _, err := ReadMsg(r)
		if err != nil {
			t.Fatalf("decode for %T: %v", want, err)
		}
		switch w := want.(type) {
		case *Hello:
			g := got.(*Hello)
			if g.Strategy != w.Strategy || g.Budget != w.Budget {
				t.Fatalf("hello mismatch: %+v vs %+v", g, w)
			}
		case *Open:
			if got.(*Open).Node != w.Node {
				t.Fatal("open mismatch")
			}
		case *Query:
			if got.(*Query).DTQL != w.DTQL {
				t.Fatal("query mismatch")
			}
		case *Bye:
			if _, ok := got.(*Bye); !ok {
				t.Fatal("bye mismatch")
			}
		case *TreeDelta:
			g := got.(*TreeDelta)
			if g.Reset != w.Reset || g.Focus != w.Focus || len(g.Add) != len(w.Add) || len(g.Remove) != len(w.Remove) {
				t.Fatalf("delta mismatch: %+v vs %+v", g, w)
			}
			for i := range w.Add {
				if g.Add[i] != w.Add[i] {
					t.Fatalf("delta node %d: %+v vs %+v", i, g.Add[i], w.Add[i])
				}
			}
		case *QueryResult:
			g := got.(*QueryResult)
			if len(g.Columns) != len(w.Columns) || len(g.Rows) != len(w.Rows) {
				t.Fatal("result shape mismatch")
			}
			if !store.Equal(g.Rows[0][0], w.Rows[0][0]) || g.Rows[1][1].K != store.KindNull {
				t.Fatal("result values mismatch")
			}
		case *ErrorMsg:
			if got.(*ErrorMsg).Text != w.Text {
				t.Fatal("error mismatch")
			}
		}
	}
}

func TestMsgSizeMatchesEncoding(t *testing.T) {
	m := &TreeDelta{Add: []WireNode{{Pre: 9, Name: "node"}}}
	var buf bytes.Buffer
	if err := WriteMsg(&buf, m); err != nil {
		t.Fatal(err)
	}
	sz, err := MsgSize(m)
	if err != nil {
		t.Fatal(err)
	}
	if sz != int64(buf.Len()) {
		t.Fatalf("MsgSize = %d, encoded = %d", sz, buf.Len())
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	if _, err := decodeMsg(nil); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := decodeMsg([]byte{99}); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := decodeMsg([]byte{byte(MsgOpen), 0xFF}); err == nil {
		t.Error("truncated open accepted")
	}
}

func TestBuildViewportBudget(t *testing.T) {
	e := testEngine(t)
	root := e.Tree().Root()
	for _, budget := range []int{1, 5, 10, 25, 1000} {
		nodes := BuildViewport(e, root, budget)
		if len(nodes) > budget && budget >= 1 {
			t.Fatalf("budget %d produced %d nodes", budget, len(nodes))
		}
		if len(nodes) == 0 {
			t.Fatalf("budget %d produced nothing", budget)
		}
	}
	// Unlimited budget covers the full subtree with nothing collapsed.
	all := BuildViewport(e, root, e.Tree().Len())
	if len(all) != e.Tree().Len() {
		t.Fatalf("full budget = %d nodes, want %d", len(all), e.Tree().Len())
	}
	for _, n := range all {
		if n.Collapsed {
			t.Fatalf("node %d collapsed under full budget", n.Pre)
		}
	}
}

func TestBuildViewportConnected(t *testing.T) {
	e := testEngine(t)
	root := e.Tree().Root()
	nodes := BuildViewport(e, root, 15)
	pres := map[int64]bool{}
	for _, n := range nodes {
		pres[n.Pre] = true
	}
	rootSeen := 0
	for _, n := range nodes {
		if n.ParentPre == -1 {
			rootSeen++
			continue
		}
		if !pres[n.ParentPre] {
			t.Fatalf("node %d references missing parent %d", n.Pre, n.ParentPre)
		}
	}
	if rootSeen != 1 {
		t.Fatalf("viewport has %d roots", rootSeen)
	}
}

func TestBuildViewportLeafCoverage(t *testing.T) {
	// Collapsed markers plus real leaves must account for every leaf.
	e := testEngine(t)
	root := e.Tree().Root()
	nodes := BuildViewport(e, root, 12)
	var covered int64
	for _, n := range nodes {
		if n.IsLeaf {
			covered++
		} else if n.Collapsed {
			covered += n.LeafCount
		}
	}
	if covered != int64(len(e.Tree().Leaves())) {
		t.Fatalf("covered %d leaves, tree has %d", covered, len(e.Tree().Leaves()))
	}
}

func TestBuildViewportMonotoneInBudget(t *testing.T) {
	// Property: a larger budget renders a superset of the nodes a
	// smaller budget renders (best-first expansion is deterministic).
	e := testEngine(t)
	root := e.Tree().Root()
	prev := map[int64]bool{}
	for _, budget := range []int{1, 3, 7, 15, 31, 63} {
		nodes := BuildViewport(e, root, budget)
		cur := map[int64]bool{}
		for _, n := range nodes {
			cur[n.Pre] = true
		}
		for pre := range prev {
			if !cur[pre] {
				t.Fatalf("budget %d dropped node %d present at a smaller budget", budget, pre)
			}
		}
		prev = cur
	}
}

func TestDiffViewports(t *testing.T) {
	held := map[int64]bool{1: true, 2: true, 3: true}
	next := []WireNode{{Pre: 2}, {Pre: 3}, {Pre: 4}}
	add, remove := DiffViewports(held, next)
	if len(add) != 1 || add[0].Pre != 4 {
		t.Fatalf("add = %v", add)
	}
	if len(remove) != 1 || remove[0] != 1 {
		t.Fatalf("remove = %v", remove)
	}
}

// runSession drives open interactions through an in-process
// client/server pair and returns the client.
func runSession(t *testing.T, e *core.Engine, strategy Strategy, budget int, opens []string) *Client {
	t.Helper()
	server := NewServer(e)
	clientConn, serverConn := net.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- server.ServeConn(context.Background(), serverConn)
	}()
	c, err := Dial(clientConn, strategy, budget)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range opens {
		if _, err := c.Open(node); err != nil {
			t.Fatalf("open %s: %v", node, err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	clientConn.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not finish")
	}
	return c
}

func TestSessionFullStrategy(t *testing.T) {
	e := testEngine(t)
	rootName := e.Root().Name
	c := runSession(t, e, StrategyFull, 50, []string{rootName})
	if len(c.Nodes) != e.Tree().Len() {
		t.Fatalf("client holds %d nodes, want full tree %d", len(c.Nodes), e.Tree().Len())
	}
}

func TestSessionLODStrategy(t *testing.T) {
	e := testEngine(t)
	rootName := e.Root().Name
	c := runSession(t, e, StrategyLOD, 20, []string{rootName})
	if len(c.Nodes) > 20 {
		t.Fatalf("client holds %d nodes, budget 20", len(c.Nodes))
	}
	if len(c.Nodes) == 0 {
		t.Fatal("client holds nothing")
	}
}

func TestSessionDeltaStrategySendsLess(t *testing.T) {
	e := testEngine(t)
	children, err := e.Children(e.Root().Name)
	if err != nil || len(children) < 2 {
		t.Fatalf("children: %v %v", children, err)
	}
	opens := []string{e.Root().Name, children[0].Name, children[1].Name, e.Root().Name}

	e.ResetSession()
	lod := runSession(t, e, StrategyLOD, 30, opens)
	e.ResetSession()
	delta := runSession(t, e, StrategyLODDelta, 30, opens)
	if delta.BytesDown >= lod.BytesDown {
		t.Fatalf("delta strategy moved %d bytes, plain LOD %d", delta.BytesDown, lod.BytesDown)
	}
	// Both end with the same rendered node set.
	if len(delta.Nodes) != len(lod.Nodes) {
		t.Fatalf("render models differ: %d vs %d nodes", len(delta.Nodes), len(lod.Nodes))
	}
	for pre := range lod.Nodes {
		if _, ok := delta.Nodes[pre]; !ok {
			t.Fatalf("delta model missing node %d", pre)
		}
	}
}

func TestSessionQuery(t *testing.T) {
	e := testEngine(t)
	server := NewServer(e)
	clientConn, serverConn := net.Pipe()
	go server.ServeConn(context.Background(), serverConn)
	defer clientConn.Close()
	c, err := Dial(clientConn, StrategyLOD, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("SELECT family, COUNT(*) FROM proteins GROUP BY family ORDER BY family")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("query rows = %d, want 3", len(res.Rows))
	}
	// Bad query returns a protocol error, not a dead session.
	if _, err := c.Query("SELECT nope FROM nope"); err == nil {
		t.Fatal("bad query succeeded")
	}
	// Session still alive.
	if _, err := c.Query("SELECT COUNT(*) FROM ligands"); err != nil {
		t.Fatalf("session died after error: %v", err)
	}
	c.Close()
}

func TestSessionOpenUnknownNode(t *testing.T) {
	e := testEngine(t)
	server := NewServer(e)
	clientConn, serverConn := net.Pipe()
	go server.ServeConn(context.Background(), serverConn)
	defer clientConn.Close()
	c, err := Dial(clientConn, StrategyLOD, 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("no-such-node"); err == nil {
		t.Fatal("unknown node accepted")
	}
	c.Close()
}

func TestServerRejectsMissingHello(t *testing.T) {
	e := testEngine(t)
	server := NewServer(e)
	clientConn, serverConn := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- server.ServeConn(context.Background(), serverConn) }()
	WriteMsg(clientConn, &Open{Node: "x"})
	r := bufio.NewReader(clientConn)
	msg, _, err := ReadMsg(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*ErrorMsg); !ok {
		t.Fatalf("expected error, got %T", msg)
	}
	clientConn.Close()
	if err := <-done; err == nil {
		t.Fatal("server accepted session without hello")
	}
}

func TestSessionOverShapedLink(t *testing.T) {
	// End-to-end over a lossy-ish shaped pipe: functional behaviour
	// must be identical; latency must reflect the link.
	e := testEngine(t)
	server := NewServer(e)
	link := netsim.NewLink(netsim.Profile{
		Name: "test", RTT: 20 * time.Millisecond,
		DownBps: 1 << 24, UpBps: 1 << 24,
	}, 1, false)
	clientConn, serverConn := netsim.Pipe(link)
	defer clientConn.Close()
	defer serverConn.Close()
	go server.ServeConn(context.Background(), serverConn)
	c, err := Dial(clientConn, StrategyLOD, 25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(e.Root().Name); err != nil {
		t.Fatal(err)
	}
	if len(c.Latencies) != 1 || c.Latencies[0] < 15*time.Millisecond {
		t.Fatalf("latency %v does not reflect 20ms RTT", c.Latencies)
	}
	c.Close()
}

func TestServeOverTCP(t *testing.T) {
	// The real accept loop end to end over localhost TCP.
	e := testEngine(t)
	server := NewServer(e)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go server.Serve(context.Background(), l)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c, err := Dial(conn, StrategyLOD, 30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(e.Root().Name); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("SELECT COUNT(*) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	if got := RowsAsStrings(res); len(got) != 1 || got[0] != "30" {
		t.Fatalf("query over TCP = %v", got)
	}
	if c.VisibleLeaves() == 0 {
		t.Fatal("no visible leaves after open")
	}
	c.Close()
	if server.Sessions() != 1 {
		t.Fatalf("sessions = %d", server.Sessions())
	}
}

func TestEnumStrings(t *testing.T) {
	for _, m := range []MsgType{MsgHello, MsgOpen, MsgQuery, MsgBye, MsgTreeDelta, MsgQueryResult, MsgError, MsgType(99)} {
		if m.String() == "" {
			t.Fatalf("empty string for %d", m)
		}
	}
	for _, s := range []Strategy{StrategyFull, StrategyLOD, StrategyLODDelta, Strategy(99)} {
		if s.String() == "" {
			t.Fatalf("empty string for strategy %d", s)
		}
	}
}

func TestCompressedSessionFewerBytes(t *testing.T) {
	e := testEngine(t)
	rootName := e.Root().Name

	run := func(compress bool) int64 {
		e.ResetSession()
		server := NewServer(e)
		clientConn, serverConn := net.Pipe()
		defer clientConn.Close()
		defer serverConn.Close()
		go server.ServeConn(context.Background(), serverConn)
		var c *Client
		var err error
		if compress {
			c, err = DialCompressed(clientConn, StrategyFull, 50)
		} else {
			c, err = Dial(clientConn, StrategyFull, 50)
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Open(rootName); err != nil {
			t.Fatal(err)
		}
		nodes := len(c.Nodes)
		if nodes != e.Tree().Len() {
			t.Fatalf("render model = %d nodes, want %d", nodes, e.Tree().Len())
		}
		c.Close()
		return c.BytesDown
	}
	raw := run(false)
	compressed := run(true)
	if compressed >= raw {
		t.Fatalf("compression did not shrink: %d vs %d bytes", compressed, raw)
	}
	if raw < compressed*2 {
		t.Logf("note: compression ratio only %.2fx", float64(raw)/float64(compressed))
	}
}

func TestSmallResponsesNotCompressed(t *testing.T) {
	// Payloads under the threshold ship raw even on a compressed
	// session (the flate header would inflate them).
	var buf bytes.Buffer
	n, err := WriteMsgCompressed(&buf, &ErrorMsg{Text: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := MsgSize(&ErrorMsg{Text: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if n != raw {
		t.Fatalf("tiny message resized: %d vs %d", n, raw)
	}
	msg, wire, err := ReadMsg(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if wire != n || msg.(*ErrorMsg).Text != "tiny" {
		t.Fatalf("round trip: wire=%d msg=%v", wire, msg)
	}
}

func TestCompressedFrameRoundTrip(t *testing.T) {
	// A large highly-redundant delta must compress and inflate back
	// losslessly.
	d := &TreeDelta{Reset: true}
	for i := 0; i < 500; i++ {
		d.Add = append(d.Add, WireNode{Pre: int64(i), Name: "node-name-repeats", LeafCount: 3})
	}
	var buf bytes.Buffer
	n, err := WriteMsgCompressed(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := MsgSize(d)
	if n >= raw {
		t.Fatalf("redundant payload did not compress: %d vs %d", n, raw)
	}
	msg, wire, err := ReadMsg(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if wire != n {
		t.Fatalf("wire accounting: %d vs %d", wire, n)
	}
	got := msg.(*TreeDelta)
	if len(got.Add) != 500 || got.Add[499] != d.Add[499] {
		t.Fatalf("compressed round trip corrupted: %d nodes", len(got.Add))
	}
}

func TestViewportFocusOnSubclade(t *testing.T) {
	e := testEngine(t)
	children, _ := e.Children(e.Root().Name)
	if len(children) == 0 {
		t.Skip("no children")
	}
	focus, err := e.NodeByName(children[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	nodes := BuildViewport(e, focus, 10)
	lo, hi := e.Tree().SubtreeInterval(focus)
	for _, n := range nodes {
		if n.Pre < int64(lo) || n.Pre > int64(hi) {
			t.Fatalf("viewport node %d outside focus interval [%d,%d]", n.Pre, lo, hi)
		}
	}
	_ = phylo.None
}
