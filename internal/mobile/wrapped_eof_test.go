package mobile

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"
)

// errWrapConn decorates a connection the way instrumented transports
// do: every error out of Read carries context via %w. io.EOF still
// means the peer hung up — but only errors.Is can see it through the
// wrapping.
type errWrapConn struct {
	net.Conn
}

func (c errWrapConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if err != nil {
		return n, fmt.Errorf("transport: %w", err)
	}
	return n, nil
}

// TestServeConnWrappedEOF pins the errcmp fix in the session read
// loop: a client that disconnects without a Bye produces io.EOF on the
// server's next read, and ServeConn must report that as a clean
// session end (nil) even when the transport wraps the error. Before
// the fix the identity comparison missed the wrapped EOF and the
// server surfaced a spurious session error for every hangup on a
// decorated conn.
func TestServeConnWrappedEOF(t *testing.T) {
	e := testEngine(t)
	server := NewServer(e)
	clientConn, serverConn := net.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- server.ServeConn(context.Background(), errWrapConn{serverConn})
	}()
	if _, err := Dial(clientConn, StrategyLOD, 20); err != nil {
		t.Fatal(err)
	}
	// Hang up abruptly — no Bye. The server's read loop sees EOF,
	// wrapped by the transport.
	clientConn.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("abrupt hangup over a wrapping transport: ServeConn = %v, want nil (clean end)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not finish after client hangup")
	}
}
