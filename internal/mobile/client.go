package mobile

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"drugtree/internal/netsim"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

// BusyError reports that the server turned the session or a request
// away under load. After carries the server's retry hint; callers
// that exhaust their retry budget surface it to the user as "try
// again shortly" rather than a failure.
type BusyError struct {
	After time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("mobile: server busy, retry after %v", e.After)
}

// IsBusy reports whether err is a server-busy refusal.
func IsBusy(err error) bool {
	var be *BusyError
	return errors.As(err, &be)
}

// Client is the simulated mobile client: it speaks the wire protocol
// over any stream (typically a netsim-shaped connection), maintains
// the node set a real app would render, and measures per-interaction
// latency — the physical-handset substitute for the paper's mobile
// front end.
type Client struct {
	conn io.ReadWriter
	r    *bufio.Reader

	strategy Strategy
	budget   int
	compress bool

	// Redial, when set, reopens the transport after an I/O failure:
	// the client redials, replays its Hello, and retries the request —
	// a phone walking between cell towers mid-session.
	Redial func() (io.ReadWriter, error)
	// MaxRedials bounds reconnect attempts per interaction (0 with
	// Redial set still disables reconnecting).
	MaxRedials int
	// Reconnects counts successful session re-establishments.
	Reconnects int

	// Backoff shapes the wait before retrying a request the server
	// shed (answered with a RetryMsg): the server's hint plus a
	// jittered exponential component so a fleet of shed clients
	// decorrelates. The zero value adds nothing beyond the hint.
	Backoff source.RetryPolicy
	// MaxRetries bounds shed retries per interaction; zero surfaces
	// the first RetryMsg as a BusyError immediately.
	MaxRetries int
	// Sheds counts RetryMsg responses received.
	Sheds int

	// Clock measures per-interaction latency and paces shed-retry
	// backoff. dial sets the wall clock; deterministic tests swap in a
	// netsim.VirtualClock.
	Clock netsim.Clock

	// SessionID is the server-assigned id from the HelloAck.
	SessionID int64

	rng *rand.Rand // jitter stream for Backoff

	// Nodes is the client-side render model keyed by pre number.
	Nodes map[int64]WireNode
	// Latencies records one duration per interaction.
	Latencies []time.Duration
	// BytesDown sums the encoded sizes of server responses.
	BytesDown int64
}

// Dial starts a session with the given strategy and viewport budget.
func Dial(conn io.ReadWriter, strategy Strategy, budget int) (*Client, error) {
	return dial(conn, strategy, budget, false)
}

// DialCompressed starts a session that asks the server to deflate
// large responses.
func DialCompressed(conn io.ReadWriter, strategy Strategy, budget int) (*Client, error) {
	return dial(conn, strategy, budget, true)
}

func dial(conn io.ReadWriter, strategy Strategy, budget int, compress bool) (*Client, error) {
	c := &Client{
		conn:     conn,
		r:        bufio.NewReader(conn),
		strategy: strategy,
		budget:   budget,
		compress: compress,
		Clock:    netsim.NewWallClock(),
		Nodes:    make(map[int64]WireNode),
	}
	if err := WriteMsg(conn, &Hello{Strategy: strategy, Budget: budget, Compress: compress}); err != nil {
		return nil, err
	}
	if err := c.readHelloVerdict(); err != nil {
		return nil, err
	}
	return c, nil
}

// readHelloVerdict consumes the server's handshake reply: a HelloAck
// accepts the session, a RetryMsg refuses it with a retry hint. Ack
// bytes are protocol overhead, not payload, so they are excluded from
// BytesDown.
func (c *Client) readHelloVerdict() error {
	msg, _, err := ReadMsg(c.r)
	if err != nil {
		return fmt.Errorf("mobile: reading hello ack: %w", err)
	}
	switch m := msg.(type) {
	case *HelloAck:
		c.SessionID = m.SessionID
		return nil
	case *RetryMsg:
		return &BusyError{After: time.Duration(m.AfterMS) * time.Millisecond}
	case *ErrorMsg:
		return fmt.Errorf("mobile: server error: %s", m.Text)
	}
	return fmt.Errorf("mobile: unexpected handshake reply %T", msg)
}

// exchange performs one request/response on the current transport.
func (c *Client) exchange(req any) (any, int64, error) {
	if err := WriteMsg(c.conn, req); err != nil {
		return nil, 0, err
	}
	return ReadMsg(c.r)
}

// reconnect redials and replays the session handshake.
func (c *Client) reconnect() error {
	conn, err := c.Redial()
	if err != nil {
		return fmt.Errorf("mobile: redial: %w", err)
	}
	c.conn = conn
	c.r = bufio.NewReader(conn)
	if err := WriteMsg(conn, &Hello{Strategy: c.strategy, Budget: c.budget, Compress: c.compress}); err != nil {
		return fmt.Errorf("mobile: replaying hello: %w", err)
	}
	if err := c.readHelloVerdict(); err != nil {
		return fmt.Errorf("mobile: replaying hello: %w", err)
	}
	c.Reconnects++
	return nil
}

// backoffRNG lazily builds the jitter stream for shed-retry backoff.
func (c *Client) backoffRNG() *rand.Rand {
	if c.rng == nil {
		seed := c.Backoff.JitterSeed
		if seed == 0 {
			seed = 1
		}
		c.rng = rand.New(rand.NewSource(seed))
	}
	return c.rng
}

// roundTrip sends req and reads the response, reconnecting through
// Redial (at most MaxRedials times) when the transport fails
// mid-interaction, and honoring server RetryMsg sheds by waiting out
// the hint plus jittered Backoff (at most MaxRetries times). Server
// ErrorMsg responses are application-level and never trigger a
// reconnect or retry.
func (c *Client) roundTrip(req any) (any, int64, error) {
	redials, retries := 0, 0
	for {
		msg, wire, err := c.exchange(req)
		if err != nil {
			if c.Redial == nil || redials >= c.MaxRedials {
				return nil, 0, err
			}
			redials++
			if rerr := c.reconnect(); rerr != nil && redials >= c.MaxRedials {
				return nil, 0, rerr
			}
			continue
		}
		rm, ok := msg.(*RetryMsg)
		if !ok {
			return msg, wire, nil
		}
		// The server shed this request: honor its hint, add jittered
		// backoff, and retry until the per-interaction budget runs out.
		c.Sheds++
		hint := time.Duration(rm.AfterMS) * time.Millisecond
		if retries >= c.MaxRetries {
			return nil, 0, &BusyError{After: hint}
		}
		retries++
		c.Clock.Sleep(hint + c.Backoff.Delay(retries, c.backoffRNG()))
	}
}

// Open requests a subtree and applies the server's delta to the local
// render model.
func (c *Client) Open(node string) (*TreeDelta, error) {
	start := c.Clock.Now()
	msg, wire, err := c.roundTrip(&Open{Node: node})
	if err != nil {
		return nil, err
	}
	c.Latencies = append(c.Latencies, c.Clock.Now()-start)
	switch m := msg.(type) {
	case *TreeDelta:
		c.BytesDown += wire
		c.apply(m)
		return m, nil
	case *ErrorMsg:
		return nil, fmt.Errorf("mobile: server error: %s", m.Text)
	}
	return nil, fmt.Errorf("mobile: unexpected response %T", msg)
}

// Query runs DTQL server-side and returns the result.
func (c *Client) Query(dtql string) (*QueryResult, error) {
	start := c.Clock.Now()
	msg, wire, err := c.roundTrip(&Query{DTQL: dtql})
	if err != nil {
		return nil, err
	}
	c.Latencies = append(c.Latencies, c.Clock.Now()-start)
	switch m := msg.(type) {
	case *QueryResult:
		c.BytesDown += wire
		return m, nil
	case *ErrorMsg:
		return nil, fmt.Errorf("mobile: server error: %s", m.Text)
	}
	return nil, fmt.Errorf("mobile: unexpected response %T", msg)
}

// Status asks the server for per-source freshness, so the app can
// badge panels backed by stale data.
func (c *Client) Status() (*StatusMsg, error) {
	msg, wire, err := c.roundTrip(&StatusReq{})
	if err != nil {
		return nil, err
	}
	switch m := msg.(type) {
	case *StatusMsg:
		c.BytesDown += wire
		return m, nil
	case *ErrorMsg:
		return nil, fmt.Errorf("mobile: server error: %s", m.Text)
	}
	return nil, fmt.Errorf("mobile: unexpected response %T", msg)
}

// Close ends the session.
func (c *Client) Close() error {
	return WriteMsg(c.conn, &Bye{})
}

// apply folds a delta into the render model.
func (c *Client) apply(d *TreeDelta) {
	if d.Reset {
		c.Nodes = make(map[int64]WireNode, len(d.Add))
	}
	for _, pre := range d.Remove {
		delete(c.Nodes, pre)
	}
	for _, n := range d.Add {
		c.Nodes[n.Pre] = n
	}
}

// VisibleLeaves counts rendered leaf nodes (collapsed markers count
// once).
func (c *Client) VisibleLeaves() int {
	n := 0
	for _, node := range c.Nodes {
		if node.IsLeaf || node.Collapsed {
			n++
		}
	}
	return n
}

// RowsAsStrings renders a query result's rows for assertions/demos.
func RowsAsStrings(q *QueryResult) []string {
	out := make([]string, len(q.Rows))
	for i, r := range q.Rows {
		s := ""
		for j, v := range r {
			if j > 0 {
				s += " | "
			}
			if v.K == store.KindString {
				s += v.S
			} else {
				s += v.String()
			}
		}
		out[i] = s
	}
	return out
}
