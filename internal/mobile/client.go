package mobile

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"drugtree/internal/store"
)

// Client is the simulated mobile client: it speaks the wire protocol
// over any stream (typically a netsim-shaped connection), maintains
// the node set a real app would render, and measures per-interaction
// latency — the physical-handset substitute for the paper's mobile
// front end.
type Client struct {
	conn io.ReadWriter
	r    *bufio.Reader

	strategy Strategy
	budget   int

	// Nodes is the client-side render model keyed by pre number.
	Nodes map[int64]WireNode
	// Latencies records one duration per interaction.
	Latencies []time.Duration
	// BytesDown sums the encoded sizes of server responses.
	BytesDown int64
}

// Dial starts a session with the given strategy and viewport budget.
func Dial(conn io.ReadWriter, strategy Strategy, budget int) (*Client, error) {
	return dial(conn, strategy, budget, false)
}

// DialCompressed starts a session that asks the server to deflate
// large responses.
func DialCompressed(conn io.ReadWriter, strategy Strategy, budget int) (*Client, error) {
	return dial(conn, strategy, budget, true)
}

func dial(conn io.ReadWriter, strategy Strategy, budget int, compress bool) (*Client, error) {
	c := &Client{
		conn:     conn,
		r:        bufio.NewReader(conn),
		strategy: strategy,
		budget:   budget,
		Nodes:    make(map[int64]WireNode),
	}
	if err := WriteMsg(conn, &Hello{Strategy: strategy, Budget: budget, Compress: compress}); err != nil {
		return nil, err
	}
	return c, nil
}

// Open requests a subtree and applies the server's delta to the local
// render model.
func (c *Client) Open(node string) (*TreeDelta, error) {
	start := time.Now()
	if err := WriteMsg(c.conn, &Open{Node: node}); err != nil {
		return nil, err
	}
	msg, wire, err := ReadMsg(c.r)
	if err != nil {
		return nil, err
	}
	c.Latencies = append(c.Latencies, time.Since(start))
	switch m := msg.(type) {
	case *TreeDelta:
		c.BytesDown += wire
		c.apply(m)
		return m, nil
	case *ErrorMsg:
		return nil, fmt.Errorf("mobile: server error: %s", m.Text)
	}
	return nil, fmt.Errorf("mobile: unexpected response %T", msg)
}

// Query runs DTQL server-side and returns the result.
func (c *Client) Query(dtql string) (*QueryResult, error) {
	start := time.Now()
	if err := WriteMsg(c.conn, &Query{DTQL: dtql}); err != nil {
		return nil, err
	}
	msg, wire, err := ReadMsg(c.r)
	if err != nil {
		return nil, err
	}
	c.Latencies = append(c.Latencies, time.Since(start))
	switch m := msg.(type) {
	case *QueryResult:
		c.BytesDown += wire
		return m, nil
	case *ErrorMsg:
		return nil, fmt.Errorf("mobile: server error: %s", m.Text)
	}
	return nil, fmt.Errorf("mobile: unexpected response %T", msg)
}

// Close ends the session.
func (c *Client) Close() error {
	return WriteMsg(c.conn, &Bye{})
}

// apply folds a delta into the render model.
func (c *Client) apply(d *TreeDelta) {
	if d.Reset {
		c.Nodes = make(map[int64]WireNode, len(d.Add))
	}
	for _, pre := range d.Remove {
		delete(c.Nodes, pre)
	}
	for _, n := range d.Add {
		c.Nodes[n.Pre] = n
	}
}

// VisibleLeaves counts rendered leaf nodes (collapsed markers count
// once).
func (c *Client) VisibleLeaves() int {
	n := 0
	for _, node := range c.Nodes {
		if node.IsLeaf || node.Collapsed {
			n++
		}
	}
	return n
}

// RowsAsStrings renders a query result's rows for assertions/demos.
func RowsAsStrings(q *QueryResult) []string {
	out := make([]string, len(q.Rows))
	for i, r := range q.Rows {
		s := ""
		for j, v := range r {
			if j > 0 {
				s += " | "
			}
			if v.K == store.KindString {
				s += v.S
			} else {
				s += v.String()
			}
		}
		out[i] = s
	}
	return out
}
