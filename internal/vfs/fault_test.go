package vfs

import (
	"errors"
	"io"
	"os"
	"testing"
)

// TestSyncedContentSurvivesCrash pins the content half of the crash
// model: bytes written before the last Sync survive Reboot, bytes
// after it are discarded.
func TestSyncedContentSurvivesCrash(t *testing.T) {
	f := NewFault(1)
	if err := f.MkdirAll("db", 0o755); err != nil {
		t.Fatal(err)
	}
	h, err := f.Create("db/wal")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SyncDir("db"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("-volatile")); err != nil {
		t.Fatal(err)
	}
	f.SetInjector(func(op Op) Fault { return FaultCrash })
	if _, err := h.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash injection = %v, want ErrCrashed", err)
	}
	if _, err := f.Open("db/wal"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open while crashed = %v, want ErrCrashed", err)
	}
	f.SetInjector(nil)
	f.Reboot()
	b, err := f.ReadFile("db/wal")
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "durable" {
		t.Fatalf("post-reboot content %q, want %q", b, "durable")
	}
}

// TestEntryDurabilityNeedsDirSync pins the namespace half: a created
// file whose parent directory was never fsynced vanishes at reboot,
// even though the file's own content was synced.
func TestEntryDurabilityNeedsDirSync(t *testing.T) {
	f := NewFault(1)
	if err := f.MkdirAll("db", 0o755); err != nil {
		t.Fatal(err)
	}
	h, err := f.Create("db/orphan")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("content")); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Reboot() // no SyncDir: the entry must not survive
	if _, err := f.ReadFile("db/orphan"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("un-dir-synced entry survived reboot: err=%v", err)
	}
}

// TestRenameDurability walks the full atomic-replace protocol: write
// tmp, sync it, rename over the target, sync the directory. Crashing
// before the dir sync keeps the old target; after it, the new one.
func TestRenameDurability(t *testing.T) {
	setup := func() *FaultFS {
		f := NewFault(7)
		if err := f.MkdirAll("db", 0o755); err != nil {
			t.Fatal(err)
		}
		h, _ := f.Create("db/snap")
		h.Write([]byte("v1"))
		h.Sync()
		h.Close()
		if err := f.SyncDir("db"); err != nil {
			t.Fatal(err)
		}
		h2, _ := f.Create("db/snap.tmp")
		h2.Write([]byte("v2"))
		h2.Sync()
		h2.Close()
		if err := f.Rename("db/snap.tmp", "db/snap"); err != nil {
			t.Fatal(err)
		}
		return f
	}

	f := setup() // crash before SyncDir
	f.Reboot()
	if b, _ := f.ReadFile("db/snap"); string(b) != "v1" {
		t.Fatalf("rename without dir sync survived crash: %q, want v1", b)
	}
	if _, err := f.ReadFile("db/snap.tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tmp entry survived crash without dir sync")
	}

	f = setup()
	if err := f.SyncDir("db"); err != nil {
		t.Fatal(err)
	}
	f.Reboot()
	if b, _ := f.ReadFile("db/snap"); string(b) != "v2" {
		t.Fatalf("dir-synced rename lost at crash: %q, want v2", b)
	}
	if _, err := f.ReadFile("db/snap.tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tmp survived the committed rename")
	}
}

// TestCrashPointDeterminism runs the same scripted workload twice
// with a crash at the same point and demands byte-identical surviving
// state (the property the torture harness's replayability rests on).
func TestCrashPointDeterminism(t *testing.T) {
	run := func(crashAt int) string {
		f := NewFault(42)
		f.SetInjector(func(op Op) Fault {
			if op.Kind != OpRead && op.N == crashAt {
				return FaultCrash
			}
			return FaultNone
		})
		f.MkdirAll("d", 0o755)
		h, err := f.Create("d/f")
		if err != nil {
			return "<no file>"
		}
		f.SyncDir("d")
		for i := 0; i < 4; i++ {
			if _, err := h.Write([]byte("chunk-0123456789")); err != nil {
				break
			}
			if err := h.Sync(); err != nil {
				break
			}
		}
		f.Reboot()
		b, err := f.ReadFile("d/f")
		if err != nil {
			return "<gone>"
		}
		return string(b)
	}
	for k := 1; k <= 10; k++ {
		a, b := run(k), run(k)
		if a != b {
			t.Fatalf("crash point %d not deterministic: %q vs %q", k, a, b)
		}
	}
	// And a crash one op later must never shrink the surviving state.
	if run(3) > run(4) && len(run(3)) > len(run(4)) {
		t.Fatalf("later crash lost more data than earlier crash")
	}
}

// TestSyncFailDropsDirtyData pins fsyncgate semantics: a failed fsync
// loses the unsynced delta; a retry cannot resurrect it.
func TestSyncFailDropsDirtyData(t *testing.T) {
	f := NewFault(3)
	f.MkdirAll("d", 0o755)
	h, _ := f.Create("d/f")
	f.SyncDir("d")
	h.Write([]byte("good"))
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	h.Write([]byte("-dirty"))
	fail := true
	f.SetInjector(func(op Op) Fault {
		if op.Kind == OpSync && fail {
			fail = false
			return FaultSyncFail
		}
		return FaultNone
	})
	if err := h.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("sync = %v, want ErrSyncFailed", err)
	}
	if err := h.Sync(); err != nil { // retry "succeeds"...
		t.Fatal(err)
	}
	b, _ := f.ReadFile("d/f")
	if string(b) != "good" { // ...but the dirty bytes are gone
		t.Fatalf("content after failed sync %q, want %q", b, "good")
	}
}

// TestTornAndENOSPCWrites checks partial-write persistence and error
// identity for the non-crash write faults.
func TestTornAndENOSPCWrites(t *testing.T) {
	f := NewFault(9)
	f.MkdirAll("d", 0o755)
	h, _ := f.Create("d/f")
	f.SetInjector(func(op Op) Fault {
		if op.Kind == OpWrite {
			return FaultENOSPC
		}
		return FaultNone
	})
	n, err := h.Write([]byte("0123456789"))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if n >= 10 {
		t.Fatalf("ENOSPC write persisted all %d bytes", n)
	}
	f.SetInjector(func(op Op) Fault {
		if op.Kind == OpWrite {
			return FaultTorn
		}
		return FaultNone
	})
	if _, err := h.Write([]byte("abcdef")); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("torn write err = %v, want ErrShortWrite", err)
	}
}

// TestBitFlipOnRead checks the transient read fault flips exactly the
// returned buffer, not the stored bytes.
func TestBitFlipOnRead(t *testing.T) {
	f := NewFault(5)
	f.MkdirAll("d", 0o755)
	h, _ := f.Create("d/f")
	h.Write([]byte("stable-bytes"))
	h.Close()
	f.SetInjector(func(op Op) Fault {
		if op.Kind == OpRead {
			return FaultBitFlip
		}
		return FaultNone
	})
	flipped, err := f.ReadFile("d/f")
	if err != nil {
		t.Fatal(err)
	}
	if string(flipped) == "stable-bytes" {
		t.Fatalf("bit flip did not alter the read")
	}
	f.SetInjector(nil)
	clean, _ := f.ReadFile("d/f")
	if string(clean) != "stable-bytes" {
		t.Fatalf("bit flip corrupted the stored bytes: %q", clean)
	}
}

// TestCorruptIsPersistent: Corrupt damages the durable image too, so
// a reboot does not heal it (unlike FaultBitFlip).
func TestCorruptIsPersistent(t *testing.T) {
	f := NewFault(5)
	f.MkdirAll("d", 0o755)
	h, _ := f.Create("d/f")
	h.Write([]byte("stable"))
	h.Sync()
	h.Close()
	f.SyncDir("d")
	if err := f.Corrupt("d/f", 2, 0xFF); err != nil {
		t.Fatal(err)
	}
	f.Reboot()
	b, _ := f.ReadFile("d/f")
	if string(b) == "stable" {
		t.Fatalf("corruption healed by reboot")
	}
}

// TestNoDirSyncWrapper: the reverted-dir-fsync switch drops only
// SyncDir; everything else passes through.
func TestNoDirSyncWrapper(t *testing.T) {
	inner := NewFault(1)
	f := NoDirSync(inner)
	if err := f.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	h, _ := f.Create("d/f")
	h.Write([]byte("x"))
	h.Sync()
	h.Close()
	if err := f.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	inner.Reboot()
	if _, err := f.ReadFile("d/f"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("NoDirSync let the entry become durable")
	}
}

// TestReadDirAndTmpListing covers the directory-listing path Open's
// orphaned-tmp sweep depends on.
func TestReadDirAndTmpListing(t *testing.T) {
	f := NewFault(2)
	f.MkdirAll("db/sub", 0o755)
	for _, name := range []string{"db/wal.dtl", "db/snapshot.dts.tmp", "db/sub/deep"} {
		h, err := f.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		h.Close()
	}
	ents, err := f.ReadDir("db")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	want := []string{"snapshot.dts.tmp", "sub", "wal.dtl"}
	if len(names) != len(want) {
		t.Fatalf("ReadDir = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ReadDir = %v, want %v", names, want)
		}
	}
}

// TestOSRoundTrip smoke-tests the passthrough FS (incl. SyncDir on a
// real directory) so the production seam is exercised, not just the
// fake.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys := OS()
	h, err := fsys.Create(dir + "/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir on a real directory: %v", err)
	}
	b, err := fsys.ReadFile(dir + "/f")
	if err != nil || string(b) != "x" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if err := fsys.Rename(dir+"/f", dir+"/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat(dir + "/g"); err != nil {
		t.Fatal(err)
	}
}
