package vfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Errors surfaced by injected faults. Every persistence layer treats
// them like their real counterparts: ErrNoSpace like ENOSPC,
// ErrSyncFailed like a failed fsync (after which the kernel has
// dropped the dirty pages — fsyncgate semantics), ErrCrashed like a
// power cut (every subsequent I/O fails until Reboot).
var (
	ErrCrashed    = errors.New("vfs: simulated power failure")
	ErrNoSpace    = errors.New("vfs: no space left on device (injected)")
	ErrSyncFailed = errors.New("vfs: fsync failed (injected)")
)

// OpKind classifies one FaultFS operation for the injector.
type OpKind int

const (
	// OpWrite is a file write (crash-eligible; a crash mid-write
	// persists a seeded prefix — the torn-write-at-power-cut case).
	OpWrite OpKind = iota
	// OpSync is a file fsync.
	OpSync
	// OpSyncDir is a directory fsync (entry durability barrier).
	OpSyncDir
	// OpCreate is a file creation (Create, or OpenFile with O_CREATE
	// when the file does not exist).
	OpCreate
	// OpRename is a rename.
	OpRename
	// OpRemove is a file or tree removal.
	OpRemove
	// OpTruncate is a file truncation.
	OpTruncate
	// OpRead is a read (bit-flip eligible; never a crash point, so it
	// does not advance the mutation counter).
	OpRead
)

func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpSyncDir:
		return "syncdir"
	case OpCreate:
		return "create"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpRead:
		return "read"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op identifies one fault-eligible operation. N is the 1-based index
// of the operation among mutating operations (OpRead carries the
// index of the last mutation): "crash at point k" means the injector
// returns FaultCrash when op.N == k and op.Kind != OpRead.
type Op struct {
	N    int
	Kind OpKind
	Path string
}

// Fault is the injector's verdict for one operation.
type Fault int

const (
	// FaultNone lets the operation through.
	FaultNone Fault = iota
	// FaultCrash cuts power at this operation: a write persists a
	// seeded prefix first (torn write at the crash frontier), any
	// other operation simply never happens, and every subsequent
	// operation fails with ErrCrashed until Reboot. Only what was
	// fsynced — file content via Sync, directory entries via SyncDir —
	// survives the reboot.
	FaultCrash
	// FaultENOSPC fails a write with ErrNoSpace after persisting a
	// seeded prefix (a partial write followed by disk exhaustion).
	FaultENOSPC
	// FaultTorn short-writes: a seeded prefix lands, io.ErrShortWrite
	// returns, and the filesystem stays up.
	FaultTorn
	// FaultSyncFail fails an fsync and drops the unsynced delta (the
	// kernel marked the dirty pages clean despite the error —
	// fsyncgate), so retrying the sync cannot recover the data.
	FaultSyncFail
	// FaultBitFlip flips one seeded bit in the data returned by a
	// read, modelling silent media corruption detected only by
	// checksums.
	FaultBitFlip
)

// Injector decides the fault for each operation. A nil injector means
// no faults. Injectors run under the filesystem lock: they must not
// call back into the FaultFS.
type Injector func(op Op) Fault

// inode is one file's content: data is what reads observe, synced is
// what survives a crash.
type inode struct {
	data   []byte
	synced []byte
}

// FaultFS is a deterministic in-memory filesystem with scriptable
// faults and power-cut simulation. The zero value is not usable; use
// NewFault. All methods are safe for concurrent use.
type FaultFS struct {
	mu      sync.Mutex
	rng     *rand.Rand
	inj     Injector
	muts    int
	crashed bool
	tempSeq int
	// cur is the live namespace; durable is the namespace as of each
	// directory's last successful SyncDir. Directories themselves are
	// durable on creation (a deliberate simplification: the crash
	// model never un-creates a directory, only file entries).
	cur     map[string]*inode
	durable map[string]*inode
	dirs    map[string]bool
}

// NewFault returns an empty FaultFS. The seed drives every
// random-looking choice (torn-write prefix lengths, flipped bits), so
// a (seed, injector) pair replays identically.
func NewFault(seed int64) *FaultFS {
	return &FaultFS{
		rng:     rand.New(rand.NewSource(seed)),
		cur:     make(map[string]*inode),
		durable: make(map[string]*inode),
		dirs:    map[string]bool{".": true, "/": true},
	}
}

// SetInjector installs the fault script (nil clears it).
func (f *FaultFS) SetInjector(inj Injector) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.inj = inj
}

// MutOps returns how many mutating operations have been issued — the
// number of crash points a workload exposed during a fault-free dry
// run.
func (f *FaultFS) MutOps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.muts
}

// Crashed reports whether an injected crash has cut power.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Reboot models the machine coming back after a crash: every file
// reverts to its last-synced content, every directory entry to its
// last SyncDir'd state, and I/O works again. Open handles from before
// the crash stay dead (their operations keep failing until the owner
// reopens through the namespace). Reboot is also safe to call without
// a prior crash, where it discards all unsynced state the same way.
func (f *FaultFS) Reboot() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = false
	f.cur = make(map[string]*inode, len(f.durable))
	for p, ino := range f.durable {
		ino.data = append([]byte(nil), ino.synced...)
		f.cur[p] = ino
	}
}

// Corrupt XORs mask into the byte at off of path's content, in both
// the live and the durable image — persistent media corruption, as
// opposed to the transient FaultBitFlip read fault. Used by scrub
// tests to damage a snapshot or WAL at rest.
func (f *FaultFS) Corrupt(path string, off int, mask byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	ino, ok := f.cur[filepath.Clean(path)]
	if !ok {
		return &fs.PathError{Op: "corrupt", Path: path, Err: fs.ErrNotExist}
	}
	if off < 0 || off >= len(ino.data) {
		return fmt.Errorf("vfs: corrupt offset %d outside %s (%d bytes)", off, path, len(ino.data))
	}
	ino.data[off] ^= mask
	if off < len(ino.synced) {
		ino.synced[off] ^= mask
	}
	return nil
}

// DurableLen returns the size of path's crash-surviving content and
// whether its entry itself would survive (test introspection).
func (f *FaultFS) DurableLen(path string) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ino, ok := f.durable[filepath.Clean(path)]
	if !ok {
		return 0, false
	}
	return len(ino.synced), true
}

// step consults the injector for one operation. It must be called
// with f.mu held. For mutating kinds it advances the crash-point
// counter; FaultCrash marks the filesystem crashed (the caller
// applies any partial effect first).
func (f *FaultFS) step(kind OpKind, path string) (Fault, error) {
	if f.crashed {
		return FaultNone, ErrCrashed
	}
	if kind != OpRead {
		f.muts++
	}
	if f.inj == nil {
		return FaultNone, nil
	}
	fault := f.inj(Op{N: f.muts, Kind: kind, Path: path})
	if fault == FaultCrash {
		f.crashed = true
	}
	return fault, nil
}

// tornLen picks how many of n bytes a torn write persists: 0..n-1,
// seeded.
func (f *FaultFS) tornLen(n int) int {
	if n == 0 {
		return 0
	}
	return f.rng.Intn(n)
}

func (f *FaultFS) lookup(path string) (*inode, bool) {
	ino, ok := f.cur[filepath.Clean(path)]
	return ino, ok
}

func notExist(op, path string) error {
	return &fs.PathError{Op: op, Path: path, Err: fs.ErrNotExist}
}

// --- FS interface ---

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	p := filepath.Clean(name)
	ino, exists := f.lookup(p)
	if !exists {
		if flag&os.O_CREATE == 0 {
			return nil, notExist("open", name)
		}
		fault, err := f.step(OpCreate, p)
		if err != nil {
			return nil, err
		}
		if fault == FaultCrash {
			return nil, ErrCrashed
		}
		ino = &inode{}
		f.cur[p] = ino
	} else if flag&os.O_TRUNC != 0 {
		fault, err := f.step(OpTruncate, p)
		if err != nil {
			return nil, err
		}
		if fault == FaultCrash {
			return nil, ErrCrashed
		}
		ino.data = nil
	}
	return &faultFile{fs: f, path: p, ino: ino, flag: flag}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	return f.OpenFile(name, 0, 0)
}

func (f *FaultFS) Create(name string) (File, error) {
	return f.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	ino, ok := f.lookup(name)
	if !ok {
		return nil, notExist("open", name)
	}
	out := append([]byte(nil), ino.data...)
	fault, err := f.step(OpRead, filepath.Clean(name))
	if err != nil {
		return nil, err
	}
	if fault == FaultBitFlip && len(out) > 0 {
		out[f.rng.Intn(len(out))] ^= 1 << f.rng.Intn(8)
	}
	return out, nil
}

func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := filepath.Clean(name)
	if _, ok := f.cur[p]; !ok {
		if f.crashed {
			return ErrCrashed
		}
		return notExist("remove", name)
	}
	fault, err := f.step(OpRemove, p)
	if err != nil {
		return err
	}
	if fault == FaultCrash {
		return ErrCrashed
	}
	delete(f.cur, p)
	return nil
}

func (f *FaultFS) RemoveAll(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := filepath.Clean(path)
	fault, err := f.step(OpRemove, p)
	if err != nil {
		return err
	}
	if fault == FaultCrash {
		return ErrCrashed
	}
	prefix := p + string(filepath.Separator)
	for q := range f.cur {
		if q == p || strings.HasPrefix(q, prefix) {
			delete(f.cur, q)
		}
	}
	for d := range f.dirs {
		if d == p || strings.HasPrefix(d, prefix) {
			delete(f.dirs, d)
		}
	}
	return nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	op, np := filepath.Clean(oldpath), filepath.Clean(newpath)
	fault, err := f.step(OpRename, np)
	if err != nil {
		return err
	}
	if fault == FaultCrash {
		return ErrCrashed
	}
	if ino, ok := f.cur[op]; ok { // plain file rename
		f.cur[np] = ino
		delete(f.cur, op)
		return nil
	}
	if f.dirs[op] { // directory rename: move the whole prefix
		prefix := op + string(filepath.Separator)
		moved := make(map[string]*inode)
		for q, ino := range f.cur {
			if strings.HasPrefix(q, prefix) {
				moved[np+string(filepath.Separator)+q[len(prefix):]] = ino
				delete(f.cur, q)
			}
		}
		for q, ino := range moved {
			f.cur[q] = ino
		}
		movedDirs := make([]string, 0)
		for d := range f.dirs {
			if d == op || strings.HasPrefix(d, prefix) {
				movedDirs = append(movedDirs, d)
			}
		}
		for _, d := range movedDirs {
			delete(f.dirs, d)
			if d == op {
				f.dirs[np] = true
			} else {
				f.dirs[np+string(filepath.Separator)+d[len(prefix):]] = true
			}
		}
		// Directory renames commit durably at once (the simplified
		// always-durable directory model): the durable file entries
		// under the old prefix move with it.
		movedDur := make(map[string]*inode)
		for q, ino := range f.durable {
			if strings.HasPrefix(q, prefix) {
				movedDur[np+string(filepath.Separator)+q[len(prefix):]] = ino
				delete(f.durable, q)
			}
		}
		for q, ino := range movedDur {
			f.durable[q] = ino
		}
		return nil
	}
	return notExist("rename", oldpath)
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	p := filepath.Clean(path)
	for {
		f.dirs[p] = true
		parent := filepath.Dir(p)
		if parent == p {
			break
		}
		p = parent
	}
	return nil
}

func (f *FaultFS) MkdirTemp(dir, pattern string) (string, error) {
	f.mu.Lock()
	f.tempSeq++
	name := strings.ReplaceAll(pattern, "*", fmt.Sprintf("%06d", f.tempSeq))
	if !strings.Contains(pattern, "*") {
		name = fmt.Sprintf("%s%06d", pattern, f.tempSeq)
	}
	if dir == "" {
		dir = "tmp"
	}
	f.mu.Unlock()
	p := filepath.Join(dir, name)
	if err := f.MkdirAll(p, 0o755); err != nil {
		return "", err
	}
	return p, nil
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	p := filepath.Clean(name)
	if ino, ok := f.cur[p]; ok {
		return fileInfo{name: filepath.Base(p), size: int64(len(ino.data))}, nil
	}
	if f.dirs[p] {
		return fileInfo{name: filepath.Base(p), dir: true}, nil
	}
	return nil, notExist("stat", name)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	p := filepath.Clean(name)
	if !f.dirs[p] {
		return nil, notExist("open", name)
	}
	prefix := p + string(filepath.Separator)
	seen := make(map[string]fs.DirEntry)
	for q, ino := range f.cur {
		if !strings.HasPrefix(q, prefix) {
			continue
		}
		rest := q[len(prefix):]
		if i := strings.IndexByte(rest, filepath.Separator); i >= 0 {
			continue // deeper than one level; the subdir entry covers it
		}
		seen[rest] = dirEntry{fileInfo{name: rest, size: int64(len(ino.data))}}
	}
	for d := range f.dirs {
		if !strings.HasPrefix(d, prefix) {
			continue
		}
		rest := d[len(prefix):]
		if rest == "" || strings.ContainsRune(rest, filepath.Separator) {
			continue
		}
		seen[rest] = dirEntry{fileInfo{name: rest, dir: true}}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]fs.DirEntry, len(names))
	for i, n := range names {
		out[i] = seen[n]
	}
	return out, nil
}

func (f *FaultFS) SyncDir(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := filepath.Clean(name)
	fault, err := f.step(OpSyncDir, p)
	if err != nil {
		return err
	}
	switch fault {
	case FaultCrash:
		return ErrCrashed
	case FaultSyncFail:
		return fmt.Errorf("syncdir %s: %w", name, ErrSyncFailed)
	}
	// Commit this directory's namespace: its current direct entries
	// become the durable ones, entries removed since the last sync
	// disappear from the durable view.
	prefix := p + string(filepath.Separator)
	direct := func(q string) bool {
		return strings.HasPrefix(q, prefix) && !strings.ContainsRune(q[len(prefix):], filepath.Separator)
	}
	for q := range f.durable {
		if direct(q) {
			if _, still := f.cur[q]; !still {
				delete(f.durable, q)
			}
		}
	}
	for q, ino := range f.cur {
		if direct(q) {
			f.durable[q] = ino
		}
	}
	return nil
}

// --- file handle ---

type faultFile struct {
	fs   *FaultFS
	path string
	ino  *inode
	off  int64
	flag int
}

func (h *faultFile) Name() string { return h.path }

func (h *faultFile) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if h.off >= int64(len(h.ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.ino.data[h.off:])
	fault, err := h.fs.step(OpRead, h.path)
	if err != nil {
		return 0, err
	}
	if fault == FaultBitFlip && n > 0 {
		p[h.fs.rng.Intn(n)] ^= 1 << h.fs.rng.Intn(8)
	}
	h.off += int64(n)
	return n, nil
}

func (h *faultFile) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	fault, err := h.fs.step(OpWrite, h.path)
	if err != nil {
		return 0, err
	}
	at := h.off
	if h.flag&os.O_APPEND != 0 {
		at = int64(len(h.ino.data))
	}
	put := func(b []byte) {
		end := at + int64(len(b))
		for int64(len(h.ino.data)) < end {
			h.ino.data = append(h.ino.data, 0)
		}
		copy(h.ino.data[at:end], b)
		h.off = end
	}
	switch fault {
	case FaultCrash:
		put(p[:h.fs.tornLen(len(p))])
		return 0, ErrCrashed
	case FaultENOSPC:
		n := h.fs.tornLen(len(p))
		put(p[:n])
		return n, fmt.Errorf("write %s: %w", h.path, ErrNoSpace)
	case FaultTorn:
		n := h.fs.tornLen(len(p))
		put(p[:n])
		return n, io.ErrShortWrite
	}
	put(p)
	return len(p), nil
}

func (h *faultFile) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	switch whence {
	case io.SeekStart:
		h.off = offset
	case io.SeekCurrent:
		h.off += offset
	case io.SeekEnd:
		h.off = int64(len(h.ino.data)) + offset
	}
	if h.off < 0 {
		h.off = 0
	}
	return h.off, nil
}

func (h *faultFile) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	fault, err := h.fs.step(OpTruncate, h.path)
	if err != nil {
		return err
	}
	if fault == FaultCrash {
		return ErrCrashed
	}
	if size <= int64(len(h.ino.data)) {
		h.ino.data = h.ino.data[:size]
	} else {
		for int64(len(h.ino.data)) < size {
			h.ino.data = append(h.ino.data, 0)
		}
	}
	return nil
}

func (h *faultFile) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	fault, err := h.fs.step(OpSync, h.path)
	if err != nil {
		return err
	}
	switch fault {
	case FaultCrash:
		return ErrCrashed
	case FaultSyncFail:
		// fsyncgate: the kernel reported the error once and marked the
		// dirty pages clean — the unsynced delta is gone and a retry
		// would "succeed" while the data is lost. Model that by
		// reverting to the synced image now.
		h.ino.data = append([]byte(nil), h.ino.synced...)
		return fmt.Errorf("sync %s: %w", h.path, ErrSyncFailed)
	}
	h.ino.synced = append([]byte(nil), h.ino.data...)
	return nil
}

func (h *faultFile) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return ErrCrashed
	}
	return nil
}

// --- fs.FileInfo / fs.DirEntry shims ---

type fileInfo struct {
	name string
	size int64
	dir  bool
}

func (i fileInfo) Name() string       { return i.name }
func (i fileInfo) Size() int64        { return i.size }
func (i fileInfo) Mode() fs.FileMode  { return modeOf(i.dir) }
func (i fileInfo) ModTime() time.Time { return time.Time{} }
func (i fileInfo) IsDir() bool        { return i.dir }
func (i fileInfo) Sys() interface{}   { return nil }

func modeOf(dir bool) fs.FileMode {
	if dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}

type dirEntry struct{ info fileInfo }

func (d dirEntry) Name() string               { return d.info.name }
func (d dirEntry) IsDir() bool                { return d.info.dir }
func (d dirEntry) Type() fs.FileMode          { return modeOf(d.info.dir) }
func (d dirEntry) Info() (fs.FileInfo, error) { return d.info, nil }
