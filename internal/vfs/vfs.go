// Package vfs is the filesystem seam every DrugTree persistence path
// goes through: the store's WAL and snapshots, the shard partition
// directories and MANIFEST, and the replica seed/apply paths all do
// file I/O against the FS interface instead of the os package. In
// production the seam is a zero-cost passthrough to os (OS()); under
// test it is a deterministic fault injector (FaultFS) that can tear
// writes, exhaust the disk, fail fsyncs, flip bits on read, and — the
// centerpiece — cut power at any chosen operation, discarding
// everything that was never fsynced, so a torture harness can
// enumerate every crash point in a workload and prove the recovery
// invariants at each one (see internal/torture and experiment T13).
//
// The crash model is strict POSIX: a write is durable only after a
// successful Sync of the file, and a namespace operation (create,
// rename, remove) is durable only after a successful SyncDir of the
// parent directory. File-content fsync does NOT persist the file's
// directory entry — code that creates or renames a file and needs it
// to survive a crash must sync the directory, which is exactly the
// discipline the fscheck-gated packages follow.
package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is one open file handle behind the seam. It is the subset of
// *os.File the persistence layers use.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	// Sync flushes the file's content to durable storage. It does not
	// make the file's directory entry durable — see FS.SyncDir.
	Sync() error
	// Truncate changes the file's size. Like writes, the truncation is
	// durable only after Sync.
	Truncate(size int64) error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem seam. Paths follow os semantics (cleaned
// internally); FileMode values are advisory under FaultFS.
type FS interface {
	// OpenFile is the general open (os.OpenFile semantics for the
	// O_RDONLY/O_WRONLY/O_RDWR/O_CREATE/O_APPEND/O_TRUNC flags the
	// store uses).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Open opens for reading (os.Open).
	Open(name string) (File, error)
	// Create truncate-creates for writing (os.Create).
	Create(name string) (File, error)
	// ReadFile reads a whole file (os.ReadFile).
	ReadFile(name string) ([]byte, error)
	// Remove deletes one file (os.Remove).
	Remove(name string) error
	// RemoveAll deletes a tree (os.RemoveAll).
	RemoveAll(path string) error
	// Rename atomically replaces newpath with oldpath (os.Rename).
	// Durability of the new entry requires SyncDir on the parent.
	Rename(oldpath, newpath string) error
	// MkdirAll creates a directory chain (os.MkdirAll).
	MkdirAll(path string, perm fs.FileMode) error
	// MkdirTemp creates a unique directory (os.MkdirTemp).
	MkdirTemp(dir, pattern string) (string, error)
	// Stat describes a file (os.Stat).
	Stat(name string) (fs.FileInfo, error)
	// ReadDir lists a directory (os.ReadDir).
	ReadDir(name string) ([]fs.DirEntry, error)
	// SyncDir fsyncs the directory itself, making the entries it
	// holds (creations, renames, removals) durable. Rename-based
	// atomic replacement is complete only after this returns nil.
	SyncDir(name string) error
}

// OS returns the passthrough FS over the real filesystem.
func OS() FS { return osFS{} }

// osFS forwards every call to the os package. SyncDir opens the
// directory and fsyncs the handle, which is how rename durability is
// obtained on POSIX systems.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error)             { return os.Open(name) }
func (osFS) Create(name string) (File, error)           { return os.Create(name) }
func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                { return os.RemoveAll(path) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) MkdirTemp(dir, pattern string) (string, error) {
	return os.MkdirTemp(dir, pattern)
}
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	// Some filesystems refuse fsync on directories; a refusal means
	// the platform offers no stronger guarantee, not that the caller
	// did anything wrong, so only real failures propagate.
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (errors.Is(err, errors.ErrUnsupported) || errors.Is(err, os.ErrInvalid)) {
		return nil
	}
	return err
}

// parentDir returns the cleaned parent directory of path.
func parentDir(path string) string { return filepath.Dir(filepath.Clean(path)) }

// NoDirSync wraps fsys so SyncDir is a silent no-op — the "reverted
// dir-fsync bug" switch. The torture harness's meta-test runs its
// workloads over this wrapper to prove the harness catches the
// rename-durability bugs the real code fixed: with directory syncs
// dropped, a crash after an atomic rename (or after the WAL file's
// creation) loses the entry and the invariant checker must report it.
func NoDirSync(fsys FS) FS { return noDirSyncFS{fsys} }

type noDirSyncFS struct{ FS }

func (noDirSyncFS) SyncDir(string) error { return nil }
