package seq

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseFASTA reads protein records from FASTA text. The defline format
// is ">ID Name..."; an optional " family=F" token in the description is
// captured into Family (written by WriteFASTA and the data generator).
func ParseFASTA(r io.Reader) ([]*Protein, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []*Protein
	var cur *Protein
	var body strings.Builder
	flush := func() error {
		if cur == nil {
			return nil
		}
		cur.Residues = body.String()
		body.Reset()
		if err := cur.Normalize(); err != nil {
			return err
		}
		out = append(out, cur)
		cur = nil
		return nil
	}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if text[0] == '>' {
			if err := flush(); err != nil {
				return nil, err
			}
			cur = parseDefline(text[1:])
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("seq: line %d: sequence data before first defline", line)
		}
		body.WriteString(text)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seq: reading FASTA: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseDefline(s string) *Protein {
	p := &Protein{}
	fields := strings.Fields(s)
	if len(fields) > 0 {
		p.ID = fields[0]
	}
	var nameParts []string
	for _, f := range fields[1:] {
		if fam, ok := strings.CutPrefix(f, "family="); ok {
			p.Family = fam
			continue
		}
		nameParts = append(nameParts, f)
	}
	p.Name = strings.Join(nameParts, " ")
	return p
}

// WriteFASTA writes records in FASTA format with 60-column sequence
// wrapping. Family, when set, is encoded as a "family=F" defline token
// so ParseFASTA round-trips it.
func WriteFASTA(w io.Writer, proteins []*Protein) error {
	bw := bufio.NewWriter(w)
	for _, p := range proteins {
		if _, err := fmt.Fprintf(bw, ">%s", p.ID); err != nil {
			return err
		}
		if p.Name != "" {
			if _, err := fmt.Fprintf(bw, " %s", p.Name); err != nil {
				return err
			}
		}
		if p.Family != "" {
			if _, err := fmt.Fprintf(bw, " family=%s", p.Family); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		for i := 0; i < len(p.Residues); i += 60 {
			end := i + 60
			if end > len(p.Residues) {
				end = len(p.Residues)
			}
			if _, err := bw.WriteString(p.Residues[i:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
