// Package seq provides protein sequence types, validation, and k-mer
// profiles used by the alignment and phylogenetics layers.
package seq

import (
	"fmt"
	"math"
	"strings"
)

// AminoAcids is the canonical ordering of the 20 standard amino acid
// one-letter codes. Index positions in this string are used as compact
// residue codes throughout the bio packages.
const AminoAcids = "ARNDCQEGHILKMFPSTWYV"

// residueIndex maps an amino-acid letter to its position in
// AminoAcids, or -1 for anything else.
var residueIndex [256]int8

func init() {
	for i := range residueIndex {
		residueIndex[i] = -1
	}
	for i := 0; i < len(AminoAcids); i++ {
		c := AminoAcids[i]
		residueIndex[c] = int8(i)
		residueIndex[c+'a'-'A'] = int8(i)
	}
}

// ResidueIndex returns the compact code (0..19) of an amino-acid
// letter, or -1 if the byte is not a standard residue.
func ResidueIndex(c byte) int { return int(residueIndex[c]) }

// IsResidue reports whether c is one of the 20 standard amino-acid
// letters (either case).
func IsResidue(c byte) bool { return residueIndex[c] >= 0 }

// Protein is a named protein sequence with optional metadata carried
// from its source record.
type Protein struct {
	// ID is the accession (unique within a dataset).
	ID string
	// Name is a human-readable description.
	Name string
	// Family is the (possibly unknown) family label; synthetic data
	// sets the true generating family here so experiments can score
	// clustering quality.
	Family string
	// Residues is the validated upper-case sequence.
	Residues string
}

// Len returns the number of residues.
func (p *Protein) Len() int { return len(p.Residues) }

// Validate checks that the sequence is non-empty and contains only
// standard residues. 'X' (unknown) is rejected: callers should clean
// sequences before building trees from them.
func (p *Protein) Validate() error {
	if p.ID == "" {
		return fmt.Errorf("seq: protein has empty ID")
	}
	if len(p.Residues) == 0 {
		return fmt.Errorf("seq: protein %q has empty sequence", p.ID)
	}
	for i := 0; i < len(p.Residues); i++ {
		if !IsResidue(p.Residues[i]) {
			return fmt.Errorf("seq: protein %q has invalid residue %q at position %d",
				p.ID, p.Residues[i], i)
		}
	}
	return nil
}

// Normalize upper-cases the sequence in place and returns an error if
// any residue is invalid afterwards.
func (p *Protein) Normalize() error {
	p.Residues = strings.ToUpper(p.Residues)
	return p.Validate()
}

// KmerProfile is a sparse count vector of k-mers, keyed by the packed
// base-20 encoding of the k residues. It supports the alignment-free
// distance used for large trees.
type KmerProfile struct {
	K      int
	Counts map[uint64]uint32
	Total  int
}

// NewKmerProfile computes the k-mer profile of a sequence. k must be
// in [1, 12] so that the packed code fits in a uint64 (20^12 < 2^63).
func NewKmerProfile(residues string, k int) (*KmerProfile, error) {
	if k < 1 || k > 12 {
		return nil, fmt.Errorf("seq: k=%d out of range [1,12]", k)
	}
	p := &KmerProfile{K: k, Counts: make(map[uint64]uint32)}
	if len(residues) < k {
		return p, nil
	}
	// Rolling base-20 encoding.
	var code uint64
	var pow uint64 = 1
	for i := 1; i < k; i++ {
		pow *= 20
	}
	valid := 0 // length of current run of valid residues
	for i := 0; i < len(residues); i++ {
		r := ResidueIndex(residues[i])
		if r < 0 {
			valid = 0
			code = 0
			continue
		}
		if valid < k {
			code = code*20 + uint64(r)
			valid++
		} else {
			code = (code%(pow))*20 + uint64(r)
		}
		if valid >= k {
			p.Counts[code]++
			p.Total++
		}
	}
	return p, nil
}

// Cosine returns 1 - cosine-similarity between two profiles, a
// distance in [0,1]. Profiles with different K are maximally distant.
func (p *KmerProfile) Cosine(q *KmerProfile) float64 {
	if p.K != q.K || p.Total == 0 || q.Total == 0 {
		return 1
	}
	small, large := p, q
	if len(small.Counts) > len(large.Counts) {
		small, large = large, small
	}
	var dot, np, nq float64
	for code, c := range small.Counts {
		if d, ok := large.Counts[code]; ok {
			dot += float64(c) * float64(d)
		}
	}
	for _, c := range p.Counts {
		np += float64(c) * float64(c)
	}
	for _, c := range q.Counts {
		nq += float64(c) * float64(c)
	}
	if np == 0 || nq == 0 {
		return 1
	}
	sim := dot / (math.Sqrt(np) * math.Sqrt(nq))
	if sim > 1 {
		sim = 1
	}
	return 1 - sim
}
