package seq

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestResidueIndexRoundTrip(t *testing.T) {
	for i := 0; i < len(AminoAcids); i++ {
		c := AminoAcids[i]
		if got := ResidueIndex(c); got != i {
			t.Errorf("ResidueIndex(%q) = %d, want %d", c, got, i)
		}
		lower := c + 'a' - 'A'
		if got := ResidueIndex(lower); got != i {
			t.Errorf("ResidueIndex(%q) = %d, want %d", lower, got, i)
		}
	}
	for _, c := range []byte{'B', 'J', 'O', 'U', 'X', 'Z', '*', '-', ' ', '1'} {
		if IsResidue(c) {
			t.Errorf("IsResidue(%q) = true, want false", c)
		}
	}
}

func TestProteinValidate(t *testing.T) {
	cases := []struct {
		name    string
		p       Protein
		wantErr bool
	}{
		{"valid", Protein{ID: "P1", Residues: "ACDEFGHIKLMNPQRSTVWY"}, false},
		{"empty id", Protein{Residues: "ACD"}, true},
		{"empty seq", Protein{ID: "P1"}, true},
		{"bad residue", Protein{ID: "P1", Residues: "ACDX"}, true},
		{"gap char", Protein{ID: "P1", Residues: "AC-D"}, true},
	}
	for _, tc := range cases {
		err := tc.p.Validate()
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: Validate() err = %v, wantErr = %v", tc.name, err, tc.wantErr)
		}
	}
}

func TestProteinNormalize(t *testing.T) {
	p := Protein{ID: "P1", Residues: "acdef"}
	if err := p.Normalize(); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if p.Residues != "ACDEF" {
		t.Fatalf("Residues = %q, want ACDEF", p.Residues)
	}
}

func TestKmerProfileBasic(t *testing.T) {
	p, err := NewKmerProfile("AAAA", 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Total != 3 {
		t.Fatalf("Total = %d, want 3", p.Total)
	}
	if len(p.Counts) != 1 {
		t.Fatalf("distinct kmers = %d, want 1", len(p.Counts))
	}
	for _, c := range p.Counts {
		if c != 3 {
			t.Fatalf("count = %d, want 3", c)
		}
	}
}

func TestKmerProfileKBounds(t *testing.T) {
	if _, err := NewKmerProfile("ACD", 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewKmerProfile("ACD", 13); err == nil {
		t.Error("k=13 accepted")
	}
	p, err := NewKmerProfile("AC", 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Total != 0 {
		t.Fatalf("short sequence Total = %d, want 0", p.Total)
	}
}

func TestKmerProfileInvalidResiduesBreakRuns(t *testing.T) {
	// 'X' is not a residue; kmers may not span it.
	p, err := NewKmerProfile("ACXDE", 2)
	if err != nil {
		t.Fatal(err)
	}
	// Valid 2-mers: AC, DE.
	if p.Total != 2 {
		t.Fatalf("Total = %d, want 2", p.Total)
	}
}

func TestKmerCosineIdentity(t *testing.T) {
	s := "MKVLAARHGMKVLAARHG"
	p, _ := NewKmerProfile(s, 3)
	if d := p.Cosine(p); d > 1e-9 {
		t.Fatalf("self distance = %g, want 0", d)
	}
}

func TestKmerCosineDisjoint(t *testing.T) {
	a, _ := NewKmerProfile("AAAAAA", 3)
	b, _ := NewKmerProfile("WWWWWW", 3)
	if d := a.Cosine(b); d != 1 {
		t.Fatalf("disjoint distance = %g, want 1", d)
	}
}

func TestKmerCosineMismatchedK(t *testing.T) {
	a, _ := NewKmerProfile("AAAAAA", 2)
	b, _ := NewKmerProfile("AAAAAA", 3)
	if d := a.Cosine(b); d != 1 {
		t.Fatalf("mismatched-K distance = %g, want 1", d)
	}
}

func TestKmerCosineSymmetric(t *testing.T) {
	a, _ := NewKmerProfile("MKVLAARHGCDEFGHIKL", 3)
	b, _ := NewKmerProfile("MKVLAARHGAAAA", 3)
	if d1, d2 := a.Cosine(b), b.Cosine(a); d1 != d2 {
		t.Fatalf("asymmetric: %g vs %g", d1, d2)
	}
}

func TestKmerCosineRange(t *testing.T) {
	// Property: distance always in [0,1] for random residue strings.
	f := func(xs, ys []uint8) bool {
		mk := func(bs []uint8) string {
			var sb strings.Builder
			for _, b := range bs {
				sb.WriteByte(AminoAcids[int(b)%len(AminoAcids)])
			}
			return sb.String()
		}
		a, err := NewKmerProfile(mk(xs), 2)
		if err != nil {
			return false
		}
		b, err := NewKmerProfile(mk(ys), 2)
		if err != nil {
			return false
		}
		d := a.Cosine(b)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFASTARoundTrip(t *testing.T) {
	in := []*Protein{
		{ID: "P001", Name: "kinase alpha", Family: "FAM1", Residues: strings.Repeat("ACDEFGHIKLMNPQRSTVWY", 7)},
		{ID: "P002", Name: "", Family: "", Residues: "MKVLA"},
		{ID: "P003", Name: "two words here", Family: "FAM2", Residues: "WWWWW"},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("parsed %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID || out[i].Name != in[i].Name ||
			out[i].Family != in[i].Family || out[i].Residues != in[i].Residues {
			t.Errorf("record %d mismatch:\n got %+v\nwant %+v", i, out[i], in[i])
		}
	}
}

func TestFASTAWrapsLongLines(t *testing.T) {
	long := strings.Repeat("A", 150)
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, []*Protein{{ID: "P", Residues: long}}); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if len(line) > 60 && line[0] != '>' {
			t.Fatalf("sequence line longer than 60 cols: %d", len(line))
		}
	}
	out, err := ParseFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Residues != long {
		t.Fatalf("wrapped sequence did not round-trip")
	}
}

func TestFASTAErrors(t *testing.T) {
	if _, err := ParseFASTA(strings.NewReader("ACDEF\n")); err == nil {
		t.Error("sequence before defline accepted")
	}
	if _, err := ParseFASTA(strings.NewReader(">P1 ok\nAC1DEF\n")); err == nil {
		t.Error("invalid residue accepted")
	}
}

func TestFASTALowercaseNormalized(t *testing.T) {
	out, err := ParseFASTA(strings.NewReader(">P1\nacdef\n"))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Residues != "ACDEF" {
		t.Fatalf("Residues = %q, want ACDEF", out[0].Residues)
	}
}

func TestFASTAEmptyInput(t *testing.T) {
	out, err := ParseFASTA(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("parsed %d records from empty input", len(out))
	}
}
