package align

import "drugtree/internal/bio/seq"

// Scoring defines substitution scores and affine-ish gap penalties
// (linear gaps: each gap position costs GapPenalty).
type Scoring struct {
	// Name identifies the matrix in EXPLAIN-style output.
	Name string
	// Sub returns the substitution score for two compact residue
	// codes (see seq.ResidueIndex).
	Sub [20][20]int
	// GapPenalty is the (positive) cost charged per gap position.
	GapPenalty int
}

// Score returns the substitution score for residue bytes a and b.
// Non-standard residues score as the worst value in the matrix.
func (s *Scoring) Score(a, b byte) int {
	i, j := seq.ResidueIndex(a), seq.ResidueIndex(b)
	if i < 0 || j < 0 {
		return -s.GapPenalty
	}
	return s.Sub[i][j]
}

// blosum62rows is the standard BLOSUM62 matrix in seq.AminoAcids order
// (ARNDCQEGHILKMFPSTWYV). Source: NCBI BLOSUM62, reordered.
var blosum62rows = [20][20]int{
	// A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
	{4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0},      // A
	{-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3},      // R
	{-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3},          // N
	{-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3},     // D
	{0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1},  // C
	{-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2},         // Q
	{-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2},        // E
	{0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3},    // G
	{-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3},      // H
	{-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3},     // I
	{-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1},     // L
	{-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2},      // K
	{-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1},      // M
	{-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1},      // F
	{-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2}, // P
	{1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2},         // S
	{0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0},     // T
	{-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3},  // W
	{-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1},    // Y
	{0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4},      // V
}

// BLOSUM62 returns the standard BLOSUM62 scoring with the given gap
// penalty (a typical choice is 8 for linear gaps).
func BLOSUM62(gapPenalty int) *Scoring {
	return &Scoring{Name: "BLOSUM62", Sub: blosum62rows, GapPenalty: gapPenalty}
}

// Identity returns a match/mismatch scoring: +match for equal residues
// and -mismatch otherwise. Useful in tests where BLOSUM structure
// would obscure expected values.
func Identity(match, mismatch, gapPenalty int) *Scoring {
	s := &Scoring{Name: "identity", GapPenalty: gapPenalty}
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if i == j {
				s.Sub[i][j] = match
			} else {
				s.Sub[i][j] = -mismatch
			}
		}
	}
	return s
}
