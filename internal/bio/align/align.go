// Package align implements pairwise protein sequence alignment
// (Needleman–Wunsch global and Smith–Waterman local, plus a banded
// global variant) and the evolutionary distances the phylogenetics
// layer consumes.
package align

import (
	"fmt"
	"math"
)

// Result describes a pairwise alignment.
type Result struct {
	// Score is the optimal alignment score under the scoring used.
	Score int
	// A and B are the aligned sequences with '-' gap characters; both
	// have equal length. For local alignment they cover only the
	// optimal local region.
	A, B string
	// StartA/StartB are the 0-based offsets of the aligned region in
	// the original sequences (always 0 for global alignment).
	StartA, StartB int
	// Identity is the fraction of aligned columns (gaps included in
	// the denominator) where the residues match exactly.
	Identity float64
}

func (r *Result) computeIdentity() {
	if len(r.A) == 0 {
		r.Identity = 0
		return
	}
	match := 0
	for i := 0; i < len(r.A); i++ {
		if r.A[i] == r.B[i] && r.A[i] != '-' {
			match++
		}
	}
	r.Identity = float64(match) / float64(len(r.A))
}

// move encodes a traceback direction.
type move uint8

const (
	moveNone move = iota
	moveDiag      // consume one residue from both
	moveUp        // gap in B (consume from A)
	moveLeft      // gap in A (consume from B)
)

// Global computes the optimal Needleman–Wunsch global alignment of a
// and b under s with linear gap penalties.
func Global(a, b string, s *Scoring) *Result {
	n, m := len(a), len(b)
	gap := s.GapPenalty

	// Score and traceback matrices, row-major (n+1)×(m+1).
	w := m + 1
	score := make([]int, (n+1)*w)
	trace := make([]move, (n+1)*w)
	for j := 1; j <= m; j++ {
		score[j] = -j * gap
		trace[j] = moveLeft
	}
	for i := 1; i <= n; i++ {
		score[i*w] = -i * gap
		trace[i*w] = moveUp
	}
	for i := 1; i <= n; i++ {
		rowPrev := (i - 1) * w
		row := i * w
		ca := a[i-1]
		for j := 1; j <= m; j++ {
			diag := score[rowPrev+j-1] + s.Score(ca, b[j-1])
			up := score[rowPrev+j] - gap
			left := score[row+j-1] - gap
			best, mv := diag, moveDiag
			if up > best {
				best, mv = up, moveUp
			}
			if left > best {
				best, mv = left, moveLeft
			}
			score[row+j] = best
			trace[row+j] = mv
		}
	}
	res := traceback(a, b, trace, w, n, m, func(i, j int) bool { return i == 0 && j == 0 })
	res.Score = score[n*w+m]
	res.computeIdentity()
	return res
}

// Local computes the optimal Smith–Waterman local alignment of a and b
// under s with linear gap penalties.
func Local(a, b string, s *Scoring) *Result {
	n, m := len(a), len(b)
	gap := s.GapPenalty
	w := m + 1
	score := make([]int, (n+1)*w)
	trace := make([]move, (n+1)*w)
	bestScore, bi, bj := 0, 0, 0
	for i := 1; i <= n; i++ {
		rowPrev := (i - 1) * w
		row := i * w
		ca := a[i-1]
		for j := 1; j <= m; j++ {
			diag := score[rowPrev+j-1] + s.Score(ca, b[j-1])
			up := score[rowPrev+j] - gap
			left := score[row+j-1] - gap
			best, mv := 0, moveNone
			if diag > best {
				best, mv = diag, moveDiag
			}
			if up > best {
				best, mv = up, moveUp
			}
			if left > best {
				best, mv = left, moveLeft
			}
			score[row+j] = best
			trace[row+j] = mv
			if best > bestScore {
				bestScore, bi, bj = best, i, j
			}
		}
	}
	res := traceback(a, b, trace, w, bi, bj, func(i, j int) bool { return trace[i*w+j] == moveNone })
	res.Score = bestScore
	res.computeIdentity()
	return res
}

// GlobalBanded computes a global alignment restricted to a diagonal
// band of half-width k. It returns an error when the band cannot cover
// the length difference of the inputs. For sequences of similar length
// and divergence it matches Global at a fraction of the cost.
func GlobalBanded(a, b string, s *Scoring, k int) (*Result, error) {
	n, m := len(a), len(b)
	diff := n - m
	if diff < 0 {
		diff = -diff
	}
	if k < diff {
		return nil, fmt.Errorf("align: band %d narrower than length difference %d", k, diff)
	}
	gap := s.GapPenalty
	const minScore = -1 << 30
	w := m + 1
	// Full-size matrices but only band cells computed; memory is the
	// same as Global, time is O(n·k). (A compressed-band layout would
	// save memory but is not needed at our sequence lengths.)
	score := make([]int, (n+1)*w)
	trace := make([]move, (n+1)*w)
	for i := range score {
		score[i] = minScore
	}
	score[0] = 0
	for j := 1; j <= m && j <= k; j++ {
		score[j] = -j * gap
		trace[j] = moveLeft
	}
	for i := 1; i <= n && i <= k; i++ {
		score[i*w] = -i * gap
		trace[i*w] = moveUp
	}
	for i := 1; i <= n; i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > m {
			hi = m
		}
		rowPrev := (i - 1) * w
		row := i * w
		ca := a[i-1]
		for j := lo; j <= hi; j++ {
			best, mv := minScore, moveNone
			if d := score[rowPrev+j-1]; d > minScore {
				if v := d + s.Score(ca, b[j-1]); v > best {
					best, mv = v, moveDiag
				}
			}
			if u := score[rowPrev+j]; u > minScore {
				if v := u - gap; v > best {
					best, mv = v, moveUp
				}
			}
			if l := score[row+j-1]; l > minScore {
				if v := l - gap; v > best {
					best, mv = v, moveLeft
				}
			}
			score[row+j] = best
			trace[row+j] = mv
		}
	}
	if score[n*w+m] == minScore {
		return nil, fmt.Errorf("align: band %d too narrow to reach the end", k)
	}
	res := traceback(a, b, trace, w, n, m, func(i, j int) bool { return i == 0 && j == 0 })
	res.Score = score[n*w+m]
	res.computeIdentity()
	return res, nil
}

// traceback reconstructs the alignment from the trace matrix starting
// at (i, j) and stopping when stop reports true.
func traceback(a, b string, trace []move, w, i, j int, stop func(i, j int) bool) *Result {
	var ra, rb []byte
	for !stop(i, j) {
		switch trace[i*w+j] {
		case moveDiag:
			ra = append(ra, a[i-1])
			rb = append(rb, b[j-1])
			i--
			j--
		case moveUp:
			ra = append(ra, a[i-1])
			rb = append(rb, '-')
			i--
		case moveLeft:
			ra = append(ra, '-')
			rb = append(rb, b[j-1])
			j--
		default:
			// Defensive: a malformed trace would loop forever.
			panic("align: traceback hit moveNone before stop condition")
		}
	}
	reverse(ra)
	reverse(rb)
	return &Result{A: string(ra), B: string(rb), StartA: i, StartB: j}
}

func reverse(b []byte) {
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
}

// Distance converts a global alignment into an evolutionary distance
// estimate in [0, ~3]: the Jukes–Cantor-style corrected p-distance
// d = -ln(1 - p·19/20)·(19/20) computed over aligned non-gap columns.
// Identical sequences give 0; p ≥ 0.95 saturates to the cap.
func Distance(a, b string, s *Scoring) float64 {
	res := Global(a, b, s)
	return resultDistance(res)
}

// DistanceBanded is Distance over a banded alignment, falling back to
// the exact algorithm if the band fails.
func DistanceBanded(a, b string, s *Scoring, k int) float64 {
	res, err := GlobalBanded(a, b, s, k)
	if err != nil {
		res = Global(a, b, s)
	}
	return resultDistance(res)
}

const maxDistance = 3.0

func resultDistance(res *Result) float64 {
	cols, diff := 0, 0
	for i := 0; i < len(res.A); i++ {
		if res.A[i] == '-' || res.B[i] == '-' {
			continue
		}
		cols++
		if res.A[i] != res.B[i] {
			diff++
		}
	}
	if cols == 0 {
		return maxDistance
	}
	p := float64(diff) / float64(cols)
	const f = 19.0 / 20.0
	if p >= 0.95 {
		return maxDistance
	}
	d := -f * math.Log(1-p/f)
	if d > maxDistance {
		return maxDistance
	}
	if d < 0 {
		return 0
	}
	return d
}
