package align

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"drugtree/internal/bio/seq"
)

func TestBLOSUM62Symmetric(t *testing.T) {
	s := BLOSUM62(8)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if s.Sub[i][j] != s.Sub[j][i] {
				t.Fatalf("BLOSUM62 asymmetric at (%d,%d): %d vs %d",
					i, j, s.Sub[i][j], s.Sub[j][i])
			}
		}
	}
}

func TestBLOSUM62SpotValues(t *testing.T) {
	s := BLOSUM62(8)
	// Well-known entries: W/W=11, C/C=9, A/A=4, W/G=-2, D/E=2.
	cases := []struct {
		a, b byte
		want int
	}{
		{'W', 'W', 11}, {'C', 'C', 9}, {'A', 'A', 4},
		{'W', 'G', -2}, {'D', 'E', 2}, {'I', 'V', 3}, {'P', 'P', 7},
	}
	for _, c := range cases {
		if got := s.Score(c.a, c.b); got != c.want {
			t.Errorf("Score(%c,%c) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGlobalIdenticalSequences(t *testing.T) {
	s := Identity(2, 1, 2)
	r := Global("ACDEF", "ACDEF", s)
	if r.Score != 10 {
		t.Fatalf("score = %d, want 10", r.Score)
	}
	if r.A != "ACDEF" || r.B != "ACDEF" {
		t.Fatalf("alignment = %q/%q", r.A, r.B)
	}
	if r.Identity != 1 {
		t.Fatalf("identity = %g, want 1", r.Identity)
	}
}

func TestGlobalKnownAlignment(t *testing.T) {
	// Classic example: GATTACA-like in protein letters.
	// a=GCATGC, b=GATTACA is DNA; use protein letters instead.
	s := Identity(1, 1, 1)
	r := Global("GAT", "GCAT", s)
	// Optimal: G-AT / GCAT, score 3*1 - 1 = 2.
	if r.Score != 2 {
		t.Fatalf("score = %d, want 2", r.Score)
	}
	if len(r.A) != len(r.B) {
		t.Fatalf("aligned lengths differ: %q vs %q", r.A, r.B)
	}
}

func TestGlobalEmptySequences(t *testing.T) {
	s := Identity(1, 1, 2)
	r := Global("", "ACD", s)
	if r.Score != -6 {
		t.Fatalf("score = %d, want -6", r.Score)
	}
	if r.A != "---" || r.B != "ACD" {
		t.Fatalf("alignment = %q/%q", r.A, r.B)
	}
	r = Global("", "", s)
	if r.Score != 0 || r.A != "" {
		t.Fatalf("empty-vs-empty: score=%d A=%q", r.Score, r.A)
	}
}

func TestGlobalGapPlacement(t *testing.T) {
	s := Identity(2, 2, 1)
	r := Global("ACDEF", "ACF", s)
	// Expect ACDEF / AC--F: 3 matches (6) - 2 gaps (2) = 4.
	if r.Score != 4 {
		t.Fatalf("score = %d, want 4", r.Score)
	}
	if strings.Replace(r.B, "-", "", -1) != "ACF" {
		t.Fatalf("B residues corrupted: %q", r.B)
	}
}

func TestAlignmentPreservesResidues(t *testing.T) {
	// Property: removing gaps from the aligned strings recovers the
	// original sequences (global alignment).
	rng := rand.New(rand.NewSource(7))
	randSeq := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(seq.AminoAcids[rng.Intn(20)])
		}
		return b.String()
	}
	s := BLOSUM62(8)
	for trial := 0; trial < 50; trial++ {
		a := randSeq(rng.Intn(40))
		b := randSeq(rng.Intn(40))
		r := Global(a, b, s)
		if got := strings.Replace(r.A, "-", "", -1); got != a {
			t.Fatalf("A corrupted: %q -> %q", a, got)
		}
		if got := strings.Replace(r.B, "-", "", -1); got != b {
			t.Fatalf("B corrupted: %q -> %q", b, got)
		}
		if len(r.A) != len(r.B) {
			t.Fatalf("aligned lengths differ")
		}
	}
}

func TestGlobalScoreSymmetric(t *testing.T) {
	s := BLOSUM62(8)
	f := func(xs, ys []uint8) bool {
		mk := func(bs []uint8) string {
			var sb strings.Builder
			for i, b := range bs {
				if i >= 30 {
					break
				}
				sb.WriteByte(seq.AminoAcids[int(b)%20])
			}
			return sb.String()
		}
		a, b := mk(xs), mk(ys)
		return Global(a, b, s).Score == Global(b, a, s).Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLocalFindsEmbeddedMotif(t *testing.T) {
	s := Identity(3, 3, 4)
	a := "WWWWWACDEFGHWWWWW"
	b := "YYACDEFGHYY"
	r := Local(a, b, s)
	if r.A != "ACDEFGH" || r.B != "ACDEFGH" {
		t.Fatalf("local alignment = %q/%q, want ACDEFGH motif", r.A, r.B)
	}
	if r.Score != 21 {
		t.Fatalf("score = %d, want 21", r.Score)
	}
	if r.StartA != 5 || r.StartB != 2 {
		t.Fatalf("starts = %d/%d, want 5/2", r.StartA, r.StartB)
	}
}

func TestLocalNoPositiveScore(t *testing.T) {
	s := Identity(1, 5, 5)
	r := Local("AAAA", "WWWW", s)
	if r.Score != 0 || r.A != "" {
		t.Fatalf("expected empty local alignment, got score=%d %q", r.Score, r.A)
	}
}

func TestLocalScoreAtLeastGlobal(t *testing.T) {
	// Property: the optimal local score is ≥ max(0, global score).
	s := BLOSUM62(8)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		var a, b strings.Builder
		for i := 0; i < 10+rng.Intn(30); i++ {
			a.WriteByte(seq.AminoAcids[rng.Intn(20)])
		}
		for i := 0; i < 10+rng.Intn(30); i++ {
			b.WriteByte(seq.AminoAcids[rng.Intn(20)])
		}
		g := Global(a.String(), b.String(), s).Score
		l := Local(a.String(), b.String(), s).Score
		if l < g || l < 0 {
			t.Fatalf("local %d < global %d (or negative)", l, g)
		}
	}
}

func TestGlobalBandedMatchesExactForWideBand(t *testing.T) {
	s := BLOSUM62(8)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		var a, b strings.Builder
		n := 20 + rng.Intn(30)
		for i := 0; i < n; i++ {
			c := seq.AminoAcids[rng.Intn(20)]
			a.WriteByte(c)
			if rng.Float64() < 0.85 {
				b.WriteByte(c)
			} else {
				b.WriteByte(seq.AminoAcids[rng.Intn(20)])
			}
		}
		exact := Global(a.String(), b.String(), s)
		banded, err := GlobalBanded(a.String(), b.String(), s, n)
		if err != nil {
			t.Fatal(err)
		}
		if banded.Score != exact.Score {
			t.Fatalf("banded(k=n) score %d != exact %d", banded.Score, exact.Score)
		}
	}
}

func TestGlobalBandedNarrowBandRejected(t *testing.T) {
	s := Identity(1, 1, 1)
	if _, err := GlobalBanded("AAAAAAAAAA", "AA", s, 3); err == nil {
		t.Fatal("band narrower than length difference accepted")
	}
}

func TestGlobalBandedIdentical(t *testing.T) {
	s := Identity(2, 1, 2)
	r, err := GlobalBanded("ACDEFGHIKL", "ACDEFGHIKL", s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Score != 20 || r.Identity != 1 {
		t.Fatalf("score=%d identity=%g", r.Score, r.Identity)
	}
}

func TestDistanceProperties(t *testing.T) {
	s := BLOSUM62(8)
	a := "MKVLAARHGCDEFGHIKLMNPQRST"
	if d := Distance(a, a, s); d != 0 {
		t.Fatalf("self distance = %g, want 0", d)
	}
	b := "MKVLAARHGCDEFGHIKLMNPQRSV" // one substitution
	d1 := Distance(a, b, s)
	if d1 <= 0 || d1 > 0.2 {
		t.Fatalf("one-substitution distance = %g, want small positive", d1)
	}
	c := "WWWWWWWWWWWWWWWWWWWWWWWWW"
	d2 := Distance(a, c, s)
	if d2 <= d1 {
		t.Fatalf("unrelated distance %g not greater than near distance %g", d2, d1)
	}
	if d2 > maxDistance {
		t.Fatalf("distance exceeds cap: %g", d2)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	s := BLOSUM62(8)
	a := "MKVLAARHGCDEF"
	b := "MKVLWWRHGCD"
	if d1, d2 := Distance(a, b, s), Distance(b, a, s); d1 != d2 {
		t.Fatalf("asymmetric distance: %g vs %g", d1, d2)
	}
}

func TestDistanceBandedFallsBack(t *testing.T) {
	s := BLOSUM62(8)
	// Band of 1 cannot cover a length difference of 5 → falls back.
	d := DistanceBanded("ACDEFGHIKL", "ACDEF", s, 1)
	want := Distance("ACDEFGHIKL", "ACDEF", s)
	if d != want {
		t.Fatalf("fallback distance %g != exact %g", d, want)
	}
}

func TestIdentityScoring(t *testing.T) {
	s := Identity(5, 4, 3)
	if s.Score('A', 'A') != 5 {
		t.Errorf("match score = %d, want 5", s.Score('A', 'A'))
	}
	if s.Score('A', 'W') != -4 {
		t.Errorf("mismatch score = %d, want -4", s.Score('A', 'W'))
	}
	if s.Score('A', 'X') != -3 {
		t.Errorf("invalid residue score = %d, want -gap", s.Score('A', 'X'))
	}
}
