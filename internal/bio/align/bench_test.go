package align

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"drugtree/internal/bio/seq"
)

func benchSeqs(n, length int, divergence float64) []string {
	rng := rand.New(rand.NewSource(1))
	base := make([]byte, length)
	for i := range base {
		base[i] = seq.AminoAcids[rng.Intn(20)]
	}
	out := make([]string, n)
	for i := range out {
		b := append([]byte(nil), base...)
		for j := range b {
			if rng.Float64() < divergence {
				b[j] = seq.AminoAcids[rng.Intn(20)]
			}
		}
		out[i] = string(b)
	}
	return out
}

// BenchmarkAlignment is the banded-vs-exact ablation: for related
// sequences the band loses no accuracy (see tests) at a fraction of
// the cost.
func BenchmarkAlignment(b *testing.B) {
	seqs := benchSeqs(2, 300, 0.15)
	s := BLOSUM62(8)
	b.Run("GlobalExact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Global(seqs[0], seqs[1], s)
		}
	})
	b.Run("GlobalBanded32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := GlobalBanded(seqs[0], seqs[1], s, 32); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Local(seqs[0], seqs[1], s)
		}
	})
}

// BenchmarkDistance compares alignment-based and alignment-free
// distances — the construction-time trade-off core.TreeMethod exposes.
func BenchmarkDistance(b *testing.B) {
	seqs := benchSeqs(2, 300, 0.15)
	s := BLOSUM62(8)
	b.Run("AlignBanded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			DistanceBanded(seqs[0], seqs[1], s, 32)
		}
	})
	b.Run("Kmer4Cosine", func(b *testing.B) {
		p1, _ := seq.NewKmerProfile(seqs[0], 4)
		p2, _ := seq.NewKmerProfile(seqs[1], 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p1.Cosine(p2)
		}
	})
}

func BenchmarkKmerProfile(b *testing.B) {
	s := strings.Repeat("MKVLAARHGCDEFGHIKLWQ", 15) // 300 residues
	for _, k := range []int{3, 4, 6} {
		b.Run(fmt.Sprintf("k-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := seq.NewKmerProfile(s, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
