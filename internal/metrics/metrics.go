// Package metrics provides lightweight counters and latency histograms
// used by the DrugTree engine and the experiment harness.
//
// The histogram is a fixed-boundary log-scaled design (HDR-style): it
// never allocates on the record path, is safe for concurrent use, and
// supports percentile extraction with bounded relative error, which is
// all the benchmark harness needs.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing concurrent counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// histBuckets is the number of log-scaled buckets. Bucket i covers
// durations in [lowerBound(i), lowerBound(i+1)). With 8 sub-buckets per
// power of two starting at 1µs the histogram spans 1µs..~35s with
// ≤ 12.5% relative error, plenty for interaction latencies.
const (
	histSubBits = 3 // 2^3 = 8 sub-buckets per octave
	histOctaves = 25
	histBuckets = histOctaves << histSubBits
)

// Histogram records durations into fixed log-scaled buckets.
// The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	min    atomic.Int64
	max    atomic.Int64
	once   sync.Once
}

func (h *Histogram) init() {
	h.min.Store(math.MaxInt64)
}

// bucketFor maps a duration in nanoseconds to a bucket index.
func bucketFor(ns int64) int {
	us := ns / 1000 // work in microseconds
	if us < 1 {
		return 0
	}
	// Position of the highest set bit gives the octave.
	octave := bits.Len64(uint64(us)) - 1
	if octave >= histOctaves {
		return histBuckets - 1
	}
	var sub int64
	if octave >= histSubBits {
		sub = (us >> (uint(octave) - histSubBits)) & ((1 << histSubBits) - 1)
	} else {
		sub = (us << (histSubBits - uint(octave))) & ((1 << histSubBits) - 1)
	}
	idx := octave<<histSubBits + int(sub)
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketLower returns the lower bound (µs) of bucket i, used when
// reporting percentiles.
func bucketLower(i int) int64 {
	octave := i >> histSubBits
	sub := int64(i & ((1 << histSubBits) - 1))
	base := int64(1) << uint(octave)
	if octave >= histSubBits {
		return base + sub<<(uint(octave)-histSubBits)
	}
	return base + sub>>(histSubBits-uint(octave))
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.once.Do(h.init)
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketFor(ns)].Add(1)
	h.total.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Mean returns the mean of recorded durations, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Min returns the smallest recorded duration, or 0 when empty.
func (h *Histogram) Min() time.Duration {
	if h.total.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Max returns the largest recorded duration, or 0 when empty.
func (h *Histogram) Max() time.Duration {
	if h.total.Load() == 0 {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Percentile returns the value at quantile q in [0,1]. The result is
// the lower bound of the bucket containing the q-th observation, so it
// underestimates by at most one bucket width (≤ 12.5%).
func (h *Histogram) Percentile(q float64) time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= target {
			return time.Duration(bucketLower(i)) * time.Microsecond
		}
	}
	return h.Max()
}

// Reset clears all recorded observations.
func (h *Histogram) Reset() {
	h.once.Do(h.init)
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
}

// Summary returns a one-line human-readable digest.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(0.50), h.Percentile(0.95),
		h.Percentile(0.99), h.Max())
}

// Registry is a named collection of counters and histograms, used so
// the server and harness can dump everything at once.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  make(map[string]*Counter),
		hists: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Histogram returns the histogram with the given name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Reset clears every metric in the registry.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.ctrs {
		c.Reset()
	}
	for _, h := range r.hists {
		h.Reset()
	}
}

// Dump renders all metrics sorted by name, one per line.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for n := range r.ctrs {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "counter %-40s %d\n", n, r.ctrs[n].Value())
	}
	names = names[:0]
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "hist    %-40s %s\n", n, r.hists[n].Summary())
	}
	return b.String()
}
