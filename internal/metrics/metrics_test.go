package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("counter after reset = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram should report zeros: %s", h.Summary())
	}
	if h.Percentile(0.5) != 0 {
		t.Fatalf("empty p50 = %v, want 0", h.Percentile(0.5))
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Record(10 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 10*time.Millisecond {
		t.Fatalf("min/max = %v/%v, want 10ms", h.Min(), h.Max())
	}
	p := h.Percentile(0.5)
	if p > 10*time.Millisecond || p < 8*time.Millisecond {
		t.Fatalf("p50 = %v, want within 12.5%% below 10ms", p)
	}
}

func TestHistogramPercentileOrdering(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	p50 := h.Percentile(0.50)
	p95 := h.Percentile(0.95)
	p99 := h.Percentile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("percentiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	// p50 of 1..1000ms should be near 500ms within bucket error.
	if p50 < 400*time.Millisecond || p50 > 520*time.Millisecond {
		t.Fatalf("p50 = %v, want ≈500ms", p50)
	}
	if p99 < 800*time.Millisecond {
		t.Fatalf("p99 = %v, want ≥800ms", p99)
	}
}

func TestHistogramMeanAndReset(t *testing.T) {
	var h Histogram
	h.Record(2 * time.Millisecond)
	h.Record(4 * time.Millisecond)
	if got := h.Mean(); got != 3*time.Millisecond {
		t.Fatalf("mean = %v, want 3ms", got)
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatalf("reset did not clear: %s", h.Summary())
	}
	h.Record(time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("record after reset failed")
	}
}

func TestHistogramNegativeDurationClamped(t *testing.T) {
	var h Histogram
	h.Record(-5 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("negative duration not recorded")
	}
	if h.Max() != 0 {
		t.Fatalf("negative duration should clamp to 0, max = %v", h.Max())
	}
}

func TestBucketMonotone(t *testing.T) {
	prev := -1
	for us := int64(1); us < int64(30)*1e6; us = us*3/2 + 1 {
		b := bucketFor(us * 1000)
		if b < prev {
			t.Fatalf("bucketFor not monotone at %dµs: %d < %d", us, b, prev)
		}
		prev = b
	}
}

func TestBucketLowerWithinBucket(t *testing.T) {
	// For a spread of durations, the reported bucket lower bound must
	// not exceed the recorded value and must be within 12.5% + 1µs.
	for _, us := range []int64{1, 7, 8, 9, 100, 999, 1000, 5000, 123456, 9999999} {
		b := bucketFor(us * 1000)
		lo := bucketLower(b)
		if lo > us {
			t.Errorf("bucketLower(%d)=%dµs exceeds value %dµs", b, lo, us)
		}
		if float64(us-lo) > float64(us)*0.125+1 {
			t.Errorf("value %dµs reported as %dµs: error too large", us, lo)
		}
	}
}

func TestHistogramPercentileBoundsClamped(t *testing.T) {
	var h Histogram
	h.Record(5 * time.Millisecond)
	if h.Percentile(-1) == 0 && h.Count() == 1 {
		// q<0 clamps to 0 which still selects the first observation.
		if h.Percentile(-1) != h.Percentile(0) {
			t.Fatalf("q=-1 and q=0 differ")
		}
	}
	if h.Percentile(2) != h.Percentile(1) {
		t.Fatalf("q=2 and q=1 differ")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a.requests")
	c2 := r.Counter("a.requests")
	if c1 != c2 {
		t.Fatalf("same name returned different counters")
	}
	c1.Add(3)
	h := r.Histogram("a.latency")
	h.Record(time.Millisecond)
	dump := r.Dump()
	if !strings.Contains(dump, "a.requests") || !strings.Contains(dump, "a.latency") {
		t.Fatalf("dump missing metrics:\n%s", dump)
	}
	r.Reset()
	if c1.Value() != 0 || h.Count() != 0 {
		t.Fatalf("registry reset incomplete")
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 500; i++ {
				h.Record(time.Duration(i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
	if h.Min() > time.Microsecond || h.Max() < 400*time.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramLargeDuration(t *testing.T) {
	var h Histogram
	h.Record(time.Duration(math.MaxInt64 / 2))
	if h.Count() != 1 {
		t.Fatalf("huge duration not recorded")
	}
	// Should land in the last bucket, not panic or overflow.
	if h.Percentile(1) <= 0 {
		t.Fatalf("p100 of huge duration = %v", h.Percentile(1))
	}
}
