package source

import (
	"drugtree/internal/datagen"
	"drugtree/internal/netsim"
	"drugtree/internal/store"
)

// Schemas of the four simulated services. Exported so the integration
// layer and tests can reference column positions by name.
var (
	ProteinSchema = store.MustSchema(
		store.Column{Name: "accession", Kind: store.KindString},
		store.Column{Name: "name", Kind: store.KindString},
		store.Column{Name: "family", Kind: store.KindString},
		store.Column{Name: "sequence", Kind: store.KindString},
		store.Column{Name: "length", Kind: store.KindInt},
	)
	LigandSchema = store.MustSchema(
		store.Column{Name: "ligand_id", Kind: store.KindString},
		store.Column{Name: "name", Kind: store.KindString},
		store.Column{Name: "smiles", Kind: store.KindString},
		store.Column{Name: "weight", Kind: store.KindFloat},
		store.Column{Name: "formula", Kind: store.KindString},
	)
	ActivitySchema = store.MustSchema(
		store.Column{Name: "protein_id", Kind: store.KindString},
		store.Column{Name: "ligand_id", Kind: store.KindString},
		store.Column{Name: "affinity", Kind: store.KindFloat},
		store.Column{Name: "assay", Kind: store.KindString},
	)
	AnnotationSchema = store.MustSchema(
		store.Column{Name: "protein_id", Kind: store.KindString},
		store.Column{Name: "organism", Kind: store.KindString},
		store.Column{Name: "ec", Kind: store.KindString},
		store.Column{Name: "keywords", Kind: store.KindString},
	)
)

// defaultPageSize matches typical REST service paging.
const defaultPageSize = 100

// NewProteinBank serves the dataset's proteins. Server-side filtering:
// accession=, family=, length ranges.
func NewProteinBank(ds *datagen.Dataset, link *netsim.Link) Source {
	b := newBank("ProteinBank", ProteinSchema, link, defaultPageSize)
	b.allow("accession", OpEQ)
	b.allow("family", OpEQ)
	b.allow("length", OpEQ, OpLT, OpLE, OpGT, OpGE)
	for _, p := range ds.Proteins {
		b.rows = append(b.rows, store.Row{
			store.StringValue(p.ID),
			store.StringValue(p.Name),
			store.StringValue(p.Family),
			store.StringValue(p.Residues),
			store.IntValue(int64(len(p.Residues))),
		})
	}
	return b
}

// NewLigandBank serves the dataset's ligands. Server-side filtering:
// ligand_id=, weight ranges.
func NewLigandBank(ds *datagen.Dataset, link *netsim.Link) Source {
	b := newBank("LigandBank", LigandSchema, link, defaultPageSize)
	b.allow("ligand_id", OpEQ)
	b.allow("weight", OpLT, OpLE, OpGT, OpGE)
	for _, l := range ds.Ligands {
		b.rows = append(b.rows, store.Row{
			store.StringValue(l.ID),
			store.StringValue(l.Name),
			store.StringValue(l.SMILES),
			store.FloatValue(l.Weight),
			store.StringValue(l.Formula),
		})
	}
	return b
}

// NewActivityBank serves binding activities. Server-side filtering:
// protein_id=, ligand_id=, affinity ranges.
func NewActivityBank(ds *datagen.Dataset, link *netsim.Link) Source {
	b := newBank("ActivityBank", ActivitySchema, link, defaultPageSize)
	b.allow("protein_id", OpEQ)
	b.allow("ligand_id", OpEQ)
	b.allow("affinity", OpLT, OpLE, OpGT, OpGE)
	for _, a := range ds.Activities {
		b.rows = append(b.rows, store.Row{
			store.StringValue(a.ProteinID),
			store.StringValue(a.LigandID),
			store.FloatValue(a.Affinity),
			store.StringValue(a.Assay),
		})
	}
	return b
}

// NewAnnotationBank serves protein annotations. Server-side filtering:
// protein_id=, organism=. Note: no keyword filtering — queries on
// keywords must fetch-and-filter, exercising the "cannot push" path.
func NewAnnotationBank(ds *datagen.Dataset, link *netsim.Link) Source {
	b := newBank("AnnotationBank", AnnotationSchema, link, defaultPageSize)
	b.allow("protein_id", OpEQ)
	b.allow("organism", OpEQ)
	for _, a := range ds.Annotations {
		b.rows = append(b.rows, store.Row{
			store.StringValue(a.ProteinID),
			store.StringValue(a.Organism),
			store.StringValue(a.EC),
			store.StringValue(a.Keywords),
		})
	}
	return b
}

// Bundle groups the four sources over one dataset, each on its own
// link (mirroring four independent services).
type Bundle struct {
	Proteins    Source
	Ligands     Source
	Activities  Source
	Annotations Source
}

// NewBundle creates all four sources over the dataset. Each source
// gets an independent link with the given profile; seeds are derived
// so runs are reproducible. simulated selects virtual-clock links.
func NewBundle(ds *datagen.Dataset, profile netsim.Profile, seed int64, simulated bool) *Bundle {
	return &Bundle{
		Proteins:    NewProteinBank(ds, netsim.NewLink(profile, seed+1, simulated)),
		Ligands:     NewLigandBank(ds, netsim.NewLink(profile, seed+2, simulated)),
		Activities:  NewActivityBank(ds, netsim.NewLink(profile, seed+3, simulated)),
		Annotations: NewAnnotationBank(ds, netsim.NewLink(profile, seed+4, simulated)),
	}
}

// All returns the sources in a fixed order.
func (b *Bundle) All() []Source {
	return []Source{b.Proteins, b.Ligands, b.Activities, b.Annotations}
}

// TotalStats sums traffic over all sources in the bundle.
func (b *Bundle) TotalStats() Stats {
	var t Stats
	for _, s := range b.All() {
		st := s.Stats()
		t.Requests += st.Requests
		t.RowsMoved += st.RowsMoved
		t.BytesUp += st.BytesUp
		t.BytesDown += st.BytesDown
		t.Failures += st.Failures
		t.Elapsed += st.Elapsed
	}
	return t
}

// ResetStats zeroes every source's counters.
func (b *Bundle) ResetStats() {
	for _, s := range b.All() {
		s.ResetStats()
	}
}
