package source

import (
	"context"
	"testing"

	"drugtree/internal/datagen"
	"drugtree/internal/netsim"
	"drugtree/internal/store"
)

func testDataset(t *testing.T) *datagen.Dataset {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.NumFamilies = 3
	cfg.ProteinsPerFamily = 10
	cfg.NumLigands = 20
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testBundle(t *testing.T) *Bundle {
	t.Helper()
	return NewBundle(testDataset(t), netsim.ProfileLAN, 7, true)
}

func TestFilterOpEval(t *testing.T) {
	five, seven := store.IntValue(5), store.IntValue(7)
	cases := []struct {
		op   FilterOp
		a, b store.Value
		want bool
	}{
		{OpEQ, five, five, true},
		{OpEQ, five, seven, false},
		{OpLT, five, seven, true},
		{OpLE, five, five, true},
		{OpGT, seven, five, true},
		{OpGE, five, seven, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v.Eval(%v,%v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
	// NULL never matches.
	if OpEQ.Eval(store.NullValue(), five) || OpLT.Eval(five, store.NullValue()) {
		t.Error("NULL matched a filter")
	}
}

func TestFetchAllRows(t *testing.T) {
	b := testBundle(t)
	rows, err := FetchAll(context.Background(), b.Proteins, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 {
		t.Fatalf("fetched %d proteins, want 30", len(rows))
	}
}

func TestFetchServerSideFilter(t *testing.T) {
	b := testBundle(t)
	rows, err := FetchAll(context.Background(), b.Proteins, []Filter{
		{Column: "family", Op: OpEQ, Value: store.StringValue("FAM01")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("FAM01 fetch = %d rows, want 10", len(rows))
	}
	famIdx := ProteinSchema.ColumnIndex("family")
	for _, r := range rows {
		if r[famIdx].S != "FAM01" {
			t.Fatalf("filter leak: got family %q", r[famIdx].S)
		}
	}
}

func TestFetchRejectsUnsupportedFilter(t *testing.T) {
	b := testBundle(t)
	// AnnotationBank cannot filter keywords server-side.
	_, err := b.Annotations.Fetch(context.Background(), Request{Filters: []Filter{
		{Column: "keywords", Op: OpEQ, Value: store.StringValue("kinase")},
	}})
	if err == nil {
		t.Fatal("unsupported filter accepted")
	}
	// Unknown column.
	_, err = b.Proteins.Fetch(context.Background(), Request{Filters: []Filter{
		{Column: "nope", Op: OpEQ, Value: store.IntValue(0)},
	}})
	if err == nil {
		t.Fatal("unknown column accepted")
	}
	// Negative offset.
	if _, err := b.Proteins.Fetch(context.Background(), Request{Offset: -1}); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestFetchPagination(t *testing.T) {
	b := testBundle(t)
	res, err := b.Proteins.Fetch(context.Background(), Request{Limit: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 || res.Total != 30 {
		t.Fatalf("page = %d rows, total = %d", len(res.Rows), res.Total)
	}
	res2, err := b.Proteins.Fetch(context.Background(), Request{Offset: 28, Limit: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 2 {
		t.Fatalf("last page = %d rows, want 2", len(res2.Rows))
	}
	// Offset beyond total yields an empty page.
	res3, err := b.Proteins.Fetch(context.Background(), Request{Offset: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Rows) != 0 {
		t.Fatalf("overflow page = %d rows", len(res3.Rows))
	}
}

func TestRangeFilterOnAffinity(t *testing.T) {
	b := testBundle(t)
	rows, err := FetchAll(context.Background(), b.Activities, []Filter{
		{Column: "affinity", Op: OpGE, Value: store.FloatValue(8)},
	})
	if err != nil {
		t.Fatal(err)
	}
	affIdx := ActivitySchema.ColumnIndex("affinity")
	for _, r := range rows {
		if r[affIdx].F < 8 {
			t.Fatalf("range filter leak: affinity %g", r[affIdx].F)
		}
	}
	all, _ := FetchAll(context.Background(), b.Activities, nil)
	if len(rows) >= len(all) {
		t.Fatalf("filter did not reduce: %d vs %d", len(rows), len(all))
	}
}

func TestStatsAccumulateAndReset(t *testing.T) {
	b := testBundle(t)
	FetchAll(context.Background(), b.Proteins, nil)
	st := b.Proteins.Stats()
	if st.Requests == 0 || st.BytesDown == 0 || st.RowsMoved != 30 {
		t.Fatalf("stats not accumulated: %+v", st)
	}
	total := b.TotalStats()
	if total.Requests != st.Requests {
		t.Fatalf("bundle total mismatch: %+v vs %+v", total, st)
	}
	b.ResetStats()
	if st := b.Proteins.Stats(); st.Requests != 0 {
		t.Fatalf("reset incomplete: %+v", st)
	}
}

func TestPushdownMovesFewerBytes(t *testing.T) {
	// The core T2 property: filtering server-side moves ~selectivity
	// × bytes of fetch-all.
	ds := testDataset(t)
	b1 := NewBundle(ds, netsim.ProfileLAN, 7, true)
	b2 := NewBundle(ds, netsim.ProfileLAN, 7, true)

	// Pushdown: only FAM01 rows move.
	FetchAll(context.Background(), b1.Proteins, []Filter{{Column: "family", Op: OpEQ, Value: store.StringValue("FAM01")}})
	pushBytes := b1.Proteins.Stats().BytesDown

	// No pushdown: everything moves.
	FetchAll(context.Background(), b2.Proteins, nil)
	allBytes := b2.Proteins.Stats().BytesDown

	if pushBytes*2 >= allBytes {
		t.Fatalf("pushdown moved %d bytes vs %d without: expected ≥2x reduction", pushBytes, allBytes)
	}
}

func TestSlowLinkChargesMoreTime(t *testing.T) {
	ds := testDataset(t)
	fast := NewBundle(ds, netsim.ProfileLAN, 7, true)
	slow := NewBundle(ds, netsim.Profile3G, 7, true)
	FetchAll(context.Background(), fast.Proteins, nil)
	FetchAll(context.Background(), slow.Proteins, nil)
	if slow.Proteins.Stats().Elapsed <= fast.Proteins.Stats().Elapsed {
		t.Fatalf("3G (%v) not slower than LAN (%v)",
			slow.Proteins.Stats().Elapsed, fast.Proteins.Stats().Elapsed)
	}
}

func TestFetchReturnsClones(t *testing.T) {
	b := testBundle(t)
	res, err := b.Ligands.Fetch(context.Background(), Request{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	res.Rows[0][0] = store.StringValue("MUTATED")
	res2, _ := b.Ligands.Fetch(context.Background(), Request{Limit: 1})
	if res2.Rows[0][0].S == "MUTATED" {
		t.Fatal("Fetch leaked internal rows")
	}
}

func TestTransientFailureInjection(t *testing.T) {
	ds := testDataset(t)
	b := NewProteinBank(ds, netsim.NewLink(netsim.ProfileLAN, 1, true))
	b.SetFailureRate(1.0)
	if _, err := b.Fetch(context.Background(), Request{}); err == nil {
		t.Fatal("100% failure rate served a page")
	}
	st := b.Stats()
	if st.Failures != 1 || st.Requests != 1 {
		t.Fatalf("failure accounting: %+v", st)
	}
	if st.Elapsed <= 0 {
		t.Fatal("failed request charged no network time")
	}
}

func TestFetchAllRetriesTransientFailures(t *testing.T) {
	ds := testDataset(t)
	b := NewProteinBank(ds, netsim.NewLink(netsim.ProfileLAN, 1, true))
	b.SetFailureRate(0.3)
	// A single FetchAll is one page here; drive enough rounds that
	// failures certainly occur and every round still succeeds.
	for round := 0; round < 20; round++ {
		rows, err := FetchAll(context.Background(), b, nil)
		if err != nil {
			t.Fatalf("FetchAll round %d under 30%% failures: %v", round, err)
		}
		if len(rows) != 30 {
			t.Fatalf("round %d rows = %d, want 30", round, len(rows))
		}
	}
	if b.Stats().Failures == 0 {
		t.Fatal("no failures injected across 20 rounds at 30%")
	}
}

func TestFetchAllGivesUpOnPersistentFailure(t *testing.T) {
	ds := testDataset(t)
	b := NewProteinBank(ds, netsim.NewLink(netsim.ProfileLAN, 1, true))
	b.SetFailureRate(1.0)
	if _, err := FetchAll(context.Background(), b, nil); err == nil {
		t.Fatal("persistent failure did not surface")
	}
}

func TestImportSurvivesFlakySources(t *testing.T) {
	// The integration path end-to-end under 20% transient failures.
	ds := testDataset(t)
	bundle := NewBundle(ds, netsim.ProfileLAN, 9, true)
	for _, s := range bundle.All() {
		s.SetFailureRate(0.2)
	}
	rows, err := FetchAll(context.Background(), bundle.Activities, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no activities fetched")
	}
}

func TestCapabilitiesListing(t *testing.T) {
	ds := testDataset(t)
	b := NewProteinBank(ds, netsim.NewLink(netsim.ProfileLAN, 1, true)).(*bank)
	caps := b.Capabilities()
	if len(caps) == 0 {
		t.Fatal("no capabilities listed")
	}
}
