package source

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"drugtree/internal/netsim"
	"drugtree/internal/store"
)

// deepWrapSource fails its first failN fetches with ErrTransient
// buried under two layers of %w — the shape a real mediation stack
// produces when each hop annotates the error on the way up. Only
// errors.Is-based classification survives that; the raw identity
// comparison the seed used (err == ErrTransient) classifies every
// wrapped failure as permanent.
type deepWrapSource struct {
	clock netsim.Clock
	calls int
	failN int
	rows  []store.Row
}

func (s *deepWrapSource) Name() string                    { return "deepwrap" }
func (s *deepWrapSource) Schema() *store.Schema           { return nil }
func (s *deepWrapSource) CanFilter(string, FilterOp) bool { return false }
func (s *deepWrapSource) Stats() Stats                    { return Stats{Requests: int64(s.calls)} }
func (s *deepWrapSource) ResetStats()                     {}
func (s *deepWrapSource) SetFailureRate(float64)          {}
func (s *deepWrapSource) SetFaultPlan(*FaultPlan)         {}
func (s *deepWrapSource) SetClock(c netsim.Clock)         { s.clock = c }
func (s *deepWrapSource) Clock() netsim.Clock             { return s.clock }

func (s *deepWrapSource) Fetch(ctx context.Context, req Request) (*Result, error) {
	s.calls++
	if s.calls <= s.failN {
		return nil, fmt.Errorf("gateway: %w",
			fmt.Errorf("deepwrap http 503: %w", ErrTransient))
	}
	return &Result{Rows: s.rows, Total: len(s.rows)}, nil
}

// TestRetryClassifiesWrappedTransient proves the retry loop sees a
// doubly wrapped ErrTransient as retryable: two failures burn two
// attempts, the third succeeds, and the caller gets rows with no
// error.
func TestRetryClassifiesWrappedTransient(t *testing.T) {
	src := &deepWrapSource{
		clock: netsim.NewVirtualClock(),
		failN: 2,
		rows:  []store.Row{{store.IntValue(1)}},
	}
	rows, err := FetchAllWith(context.Background(), src, nil, &FetchOptions{
		Retry: RetryPolicy{MaxAttempts: 5},
	})
	if err != nil {
		t.Fatalf("wrapped transient failures exhausted the retry loop: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	if src.calls != 3 {
		t.Fatalf("source saw %d calls, want 3 (two retries then success)", src.calls)
	}
}

// TestBreakerCountsWrappedFailures proves the breaker's outcome
// accounting also rides errors.Is: each wrapped transient failure is
// Recorded, so threshold-many of them trip the circuit and the
// remaining attempts are rejected locally with ErrCircuitOpen.
func TestBreakerCountsWrappedFailures(t *testing.T) {
	clock := netsim.NewVirtualClock()
	src := &deepWrapSource{clock: clock, failN: 100}
	br := NewBreaker(src.Name(), 3, 10*time.Second, clock, nil)
	_, err := FetchAllWith(context.Background(), src, nil, &FetchOptions{
		Retry:   RetryPolicy{MaxAttempts: 10},
		Breaker: br,
		Clock:   clock,
	})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("fetch over tripped breaker returned %v, want ErrCircuitOpen", err)
	}
	if src.calls != 3 {
		t.Fatalf("source saw %d calls, want 3 (breaker threshold) — wrapped failures must Record", src.calls)
	}
	if br.State() != BreakerOpen {
		t.Fatalf("breaker state %v, want open", br.State())
	}
}
