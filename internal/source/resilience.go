// Resilience layer for the source mediation path: capped exponential
// backoff with deterministic jitter, per-request modelled timeouts,
// and a per-source circuit breaker (closed / open / half-open). At
// production scale partial failure is the steady state, so the
// mediator must stop hammering dark sources (wasted requests, hot
// loops) and fail fast while they recover — the breaker trips after a
// run of failures, rejects without touching the network during a
// cooldown, then probes with a single half-open request.
package source

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"drugtree/internal/metrics"
	"drugtree/internal/netsim"
	"drugtree/internal/store"
)

// ErrTimeout is returned when a request's modelled duration exceeds
// the per-request timeout. It is retryable, like ErrTransient.
var ErrTimeout = errors.New("source: request exceeded timeout")

// ErrCircuitOpen is returned without touching the network when the
// source's breaker is open. Callers treat it as "source unavailable,
// serve degraded" — retrying is pointless until the cooldown elapses.
var ErrCircuitOpen = errors.New("source: circuit open")

// retryable reports whether err is worth another attempt.
func retryable(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrTimeout)
}

// RetryPolicy caps attempts and shapes the backoff between them.
type RetryPolicy struct {
	// MaxAttempts bounds tries per page (≥ 1; 0 means 1).
	MaxAttempts int
	// BaseDelay is the first backoff; each retry doubles it up to
	// MaxDelay. Zero disables sleeping (the seed repo's hot loop).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// JitterSeed drives the deterministic jitter stream (up to +50%
	// per delay) so concurrent retriers decorrelate reproducibly.
	JitterSeed int64
}

// DefaultRetry is FetchAll's built-in policy: 5 attempts, 50ms base
// doubling to a 2s cap.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 5, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, JitterSeed: 1}
}

// Delay returns the backoff before attempt n (n ≥ 1 is the first
// retry), with deterministic jitter from rng.
func (p RetryPolicy) Delay(n int, rng *rand.Rand) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay
	for i := 1; i < n; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if rng != nil && d > 0 {
		d += time.Duration(rng.Int63n(int64(d)/2 + 1))
	}
	return d
}

// BreakerState is the circuit breaker's condition.
type BreakerState uint8

const (
	// BreakerClosed passes requests through (healthy).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects requests without touching the network.
	BreakerOpen
	// BreakerHalfOpen lets a single probe through after the cooldown.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", uint8(s))
}

// Breaker is a per-source circuit breaker. Timing (the cooldown) runs
// on an injectable clock so simulated experiments trip and recover on
// a virtual timeline. Transitions and rejections are exported through
// an optional metrics registry under source.<name>.breaker.*.
type Breaker struct {
	name     string
	clock    netsim.Clock
	reg      *metrics.Registry
	cooldown time.Duration
	thresh   int

	mu       sync.Mutex
	state    BreakerState
	failures int // consecutive, while closed
	openedAt time.Duration
	probing  bool
	trips    int64
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures and probes again after cooldown. A nil clock uses the wall
// clock; a nil registry disables metrics.
func NewBreaker(name string, threshold int, cooldown time.Duration, clock netsim.Clock, reg *metrics.Registry) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	if clock == nil {
		clock = netsim.NewWallClock()
	}
	return &Breaker{name: name, thresh: threshold, cooldown: cooldown, clock: clock, reg: reg}
}

func (b *Breaker) count(event string) {
	if b.reg != nil {
		b.reg.Counter("source." + b.name + ".breaker." + event).Inc()
	}
}

// Allow reports whether a request may proceed. In the open state it
// returns ErrCircuitOpen until the cooldown elapses, then admits a
// single half-open probe (concurrent callers keep being rejected
// until that probe's Record lands).
func (b *Breaker) Allow() error {
	now := b.clock.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if now-b.openedAt < b.cooldown {
			b.mu.Unlock()
			b.count("rejected")
			b.mu.Lock()
			return fmt.Errorf("source %s: %w", b.name, ErrCircuitOpen)
		}
		b.state = BreakerHalfOpen
		b.probing = true
		b.mu.Unlock()
		b.count("probes")
		b.mu.Lock()
		return nil
	default: // half-open
		if b.probing {
			b.mu.Unlock()
			b.count("rejected")
			b.mu.Lock()
			return fmt.Errorf("source %s: %w", b.name, ErrCircuitOpen)
		}
		b.probing = true
		b.mu.Unlock()
		b.count("probes")
		b.mu.Lock()
		return nil
	}
}

// Record reports the outcome of an admitted request. Successes close
// the circuit; failures trip it (from closed, after the threshold) or
// re-open it (from half-open, immediately).
func (b *Breaker) Record(err error) {
	now := b.clock.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		if b.state != BreakerClosed {
			b.state = BreakerClosed
			b.mu.Unlock()
			b.count("closed")
			b.mu.Lock()
		}
		b.failures = 0
		b.probing = false
		return
	}
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.thresh {
			b.state = BreakerOpen
			b.openedAt = now
			b.failures = 0
			b.trips++
			b.mu.Unlock()
			b.count("trips")
			b.mu.Lock()
		}
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = now
		b.probing = false
		b.trips++
		b.mu.Unlock()
		b.count("trips")
		b.mu.Lock()
	}
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// FetchOptions configures the resilient fetch path.
type FetchOptions struct {
	Retry RetryPolicy
	// Timeout bounds one request's modelled duration; a response
	// slower than this counts as a (retryable) failure even though
	// its cost was paid. Zero disables.
	Timeout time.Duration
	// Breaker, when set, gates every request and observes every
	// outcome.
	Breaker *Breaker
	// Clock times the backoff sleeps; nil uses the source's clock.
	Clock netsim.Clock
	// Metrics, when set, receives source.<name>.fetch.retries and
	// .fetch.wasted counters.
	Metrics *metrics.Registry
}

// FetchAllWith drains every page matching the filters through the
// resilience stack: per-request timeout, capped exponential backoff
// with deterministic jitter between attempts, and the circuit breaker
// in front of every request. The error is ErrCircuitOpen when the
// breaker rejected, or the last request error when retries exhausted.
func FetchAllWith(ctx context.Context, s Source, filters []Filter, opts *FetchOptions) ([]store.Row, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts == nil {
		opts = &FetchOptions{Retry: DefaultRetry()}
	}
	attempts := opts.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	clock := opts.Clock
	if clock == nil {
		clock = s.Clock()
	}
	var rng *rand.Rand
	if opts.Retry.BaseDelay > 0 {
		rng = rand.New(rand.NewSource(opts.Retry.JitterSeed ^ int64(len(s.Name()))))
	}
	count := func(event string, n int64) {
		if opts.Metrics != nil {
			opts.Metrics.Counter("source." + s.Name() + ".fetch." + event).Add(n)
		}
	}

	var rows []store.Row
	offset := 0
	for {
		var res *Result
		var err error
		for attempt := 0; attempt < attempts; attempt++ {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			if attempt > 0 {
				count("retries", 1)
				clock.Sleep(opts.Retry.Delay(attempt, rng))
			}
			if opts.Breaker != nil {
				if berr := opts.Breaker.Allow(); berr != nil {
					return nil, fmt.Errorf("source: fetching offset %d: %w", offset, berr)
				}
			}
			res, err = s.Fetch(ctx, Request{Filters: filters, Offset: offset})
			if err == nil && opts.Timeout > 0 && res.Elapsed > opts.Timeout {
				err = fmt.Errorf("source %s: %v response with %v budget: %w",
					s.Name(), res.Elapsed, opts.Timeout, ErrTimeout)
			}
			if retryable(err) || err == nil {
				if opts.Breaker != nil {
					opts.Breaker.Record(err)
				}
			}
			if err == nil {
				break
			}
			count("wasted", 1)
			if !retryable(err) {
				break
			}
		}
		if err != nil {
			return nil, fmt.Errorf("source: fetching offset %d: %w", offset, err)
		}
		rows = append(rows, res.Rows...)
		offset += len(res.Rows)
		if offset >= res.Total || len(res.Rows) == 0 {
			return rows, nil
		}
	}
}
