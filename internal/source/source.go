// Package source simulates the remote heterogeneous data services the
// original DrugTree system integrated (UniProt/ChEMBL/BindingDB-style
// web services). Each source serves one dataset slice behind a
// netsim.Link so every fetch pays realistic request latency and
// bandwidth-proportional transfer cost, and each source advertises
// which predicates it can evaluate server-side — the capability matrix
// the optimizer's pushdown rule consults.
package source

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"drugtree/internal/netsim"
	"drugtree/internal/store"
)

// FilterOp enumerates predicate operators a source may support.
type FilterOp uint8

const (
	OpEQ FilterOp = iota
	OpLT
	OpLE
	OpGT
	OpGE
)

func (op FilterOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	}
	return "?"
}

// Eval applies the operator to a row value and a constant.
func (op FilterOp) Eval(v, c store.Value) bool {
	if v.IsNull() || c.IsNull() {
		return false
	}
	cmp := store.Compare(v, c)
	switch op {
	case OpEQ:
		return cmp == 0
	case OpLT:
		return cmp < 0
	case OpLE:
		return cmp <= 0
	case OpGT:
		return cmp > 0
	case OpGE:
		return cmp >= 0
	}
	return false
}

// Filter is one pushable predicate: column op value.
type Filter struct {
	Column string
	Op     FilterOp
	Value  store.Value
}

func (f Filter) String() string {
	return fmt.Sprintf("%s %v %v", f.Column, f.Op, f.Value)
}

// Request describes one page fetch.
type Request struct {
	// Filters are predicates the caller wants evaluated server-side.
	// Every filter must be supported (see Source.CanFilter); an
	// unsupported filter is an error, forcing callers to make
	// pushdown decisions explicitly.
	Filters []Filter
	// Offset/Limit page through the (filtered) result. Limit 0 means
	// the source's default page size.
	Offset int
	Limit  int
}

// Result is one fetched page.
type Result struct {
	Rows []store.Row
	// Total is the total number of matching rows (so callers can plan
	// pagination).
	Total int
	// BytesOnWire is the modelled response size.
	BytesOnWire int64
	// Elapsed is the modelled network time charged for this fetch.
	Elapsed time.Duration
}

// ErrTransient is the (wrapped) error simulated sources return for
// injected transient failures — the 5xx/timeout class a real web
// service produces. Callers retry on it; see FetchAll.
var ErrTransient = errors.New("source: transient failure (simulated)")

// Source is a simulated remote data service.
type Source interface {
	// Name identifies the source in plans and metrics.
	Name() string
	// Schema describes the rows the source returns.
	Schema() *store.Schema
	// CanFilter reports whether the source evaluates column/op
	// predicates server-side.
	CanFilter(column string, op FilterOp) bool
	// Fetch returns one page of rows matching the request filters.
	// The context is checked before the request is charged; a
	// cancelled context fails without touching the link.
	Fetch(ctx context.Context, req Request) (*Result, error)
	// Stats reports cumulative traffic.
	Stats() Stats
	// ResetStats zeroes the traffic counters.
	ResetStats()
	// SetFailureRate injects transient failures: each Fetch fails
	// with probability pct (deterministic under the source's seed).
	SetFailureRate(pct float64)
	// SetFaultPlan installs a scripted fault schedule (outages,
	// brownouts, error bursts) evaluated against Clock; nil clears it.
	SetFaultPlan(p *FaultPlan)
	// SetClock overrides the timeline the fault plan and retry
	// backoff read; nil restores the link-backed default.
	SetClock(c netsim.Clock)
	// Clock returns the source's timeline.
	Clock() netsim.Clock
}

// Stats is cumulative per-source traffic accounting.
type Stats struct {
	Requests  int64
	RowsMoved int64
	BytesUp   int64
	BytesDown int64
	// Failures counts injected transient failures served.
	Failures int64
	Elapsed  time.Duration
}

// capability keys the support matrix.
type capability struct {
	column string
	op     FilterOp
}

// bank is the shared implementation of all simulated sources: a
// static row set, a link, a capability matrix and a page size.
// Mutable state (stats, failure knobs, random streams) is guarded by
// mu so one bank can serve concurrent fetchers race-free.
type bank struct {
	name     string
	schema   *store.Schema
	rows     []store.Row
	link     *netsim.Link
	caps     map[capability]bool
	pageSize int

	mu      sync.Mutex
	failPct float64
	failRng *rand.Rand
	plan    *FaultPlan
	planRng *rand.Rand
	clock   netsim.Clock
	stats   Stats
}

// requestOverheadBytes approximates the HTTP/query envelope of one
// request; responseOverheadBytes the response framing.
const (
	requestOverheadBytes  = 220
	responseOverheadBytes = 160
)

func newBank(name string, schema *store.Schema, link *netsim.Link, pageSize int) *bank {
	return &bank{
		name:     name,
		schema:   schema,
		link:     link,
		caps:     make(map[capability]bool),
		pageSize: pageSize,
		failRng:  rand.New(rand.NewSource(int64(len(name)) * 7919)),
	}
}

// SetFailureRate implements Source.
func (b *bank) SetFailureRate(pct float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failPct = pct
}

// SetFaultPlan implements Source. The plan's burst coin flips are
// reseeded so installing the same plan replays the same faults.
func (b *bank) SetFaultPlan(p *FaultPlan) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.plan = p
	if p != nil {
		b.planRng = rand.New(rand.NewSource(p.Seed ^ int64(len(b.name))))
	} else {
		b.planRng = nil
	}
}

// SetClock implements Source.
func (b *bank) SetClock(c netsim.Clock) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.clock = c
}

// Clock implements Source: the override if set, else the link-backed
// timeline.
func (b *bank) Clock() netsim.Clock {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.clock != nil {
		return b.clock
	}
	return netsim.LinkClock(b.link)
}

func (b *bank) allow(column string, ops ...FilterOp) {
	for _, op := range ops {
		b.caps[capability{column, op}] = true
	}
}

func (b *bank) Name() string          { return b.name }
func (b *bank) Schema() *store.Schema { return b.schema }

func (b *bank) CanFilter(column string, op FilterOp) bool {
	return b.caps[capability{column, op}]
}

// Capabilities lists the supported (column, op) pairs, sorted, for
// EXPLAIN output.
func (b *bank) Capabilities() []string {
	var out []string
	for c := range b.caps {
		out = append(out, fmt.Sprintf("%s%v", c.column, c.op))
	}
	sort.Strings(out)
	return out
}

func (b *bank) Fetch(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Validate filters against schema and capabilities.
	for _, f := range req.Filters {
		ci := b.schema.ColumnIndex(f.Column)
		if ci < 0 {
			return nil, fmt.Errorf("source %s: no column %q", b.name, f.Column)
		}
		if !b.CanFilter(f.Column, f.Op) {
			return nil, fmt.Errorf("source %s: cannot evaluate %v server-side", b.name, f)
		}
	}
	if req.Offset < 0 {
		return nil, fmt.Errorf("source %s: negative offset", b.name)
	}
	// Consult the fault schedule and failure knob. The decision is
	// made under the lock; the link charge happens outside it.
	now := b.Clock().Now()
	b.mu.Lock()
	fail := false
	slow := 1.0
	if w := b.plan.active(now); w != nil {
		switch w.Mode {
		case FaultOutage:
			fail = true
		case FaultErrorBurst:
			fail = b.planRng.Float64() < w.ErrorPct
		case FaultBrownout:
			if w.SlowFactor > 1 {
				slow = w.SlowFactor
			}
		}
	}
	if !fail && b.failPct > 0 && b.failRng.Float64() < b.failPct {
		fail = true
	}
	b.mu.Unlock()
	// Injected failure: the request still costs a round trip (with a
	// small error body) before the caller can retry.
	if fail {
		elapsed := b.link.RequestCost(requestOverheadBytes, responseOverheadBytes)
		b.mu.Lock()
		b.stats.Requests++
		b.stats.Failures++
		b.stats.BytesUp += requestOverheadBytes
		b.stats.BytesDown += responseOverheadBytes
		b.stats.Elapsed += elapsed
		b.mu.Unlock()
		return nil, fmt.Errorf("source %s: %w", b.name, ErrTransient)
	}
	limit := req.Limit
	if limit <= 0 {
		limit = b.pageSize
	}

	// Server-side evaluation.
	var matched []store.Row
	for _, r := range b.rows {
		ok := true
		for _, f := range req.Filters {
			ci := b.schema.ColumnIndex(f.Column)
			if !f.Op.Eval(r[ci], f.Value) {
				ok = false
				break
			}
		}
		if ok {
			matched = append(matched, r)
		}
	}
	total := len(matched)
	start := req.Offset
	if start > total {
		start = total
	}
	end := start + limit
	if end > total {
		end = total
	}
	page := matched[start:end]

	// Charge the link.
	respBytes := int64(responseOverheadBytes)
	for _, r := range page {
		respBytes += int64(store.EncodedRowSize(r))
	}
	reqBytes := int64(requestOverheadBytes + 24*len(req.Filters))
	elapsed := b.link.RequestCost(reqBytes, respBytes)
	if slow > 1 {
		// Brownout: the response crawls in. The penalty is charged to
		// the link timeline so simulated clocks advance consistently.
		penalty := time.Duration(float64(elapsed) * (slow - 1))
		b.link.Advance(penalty)
		elapsed += penalty
	}

	b.mu.Lock()
	b.stats.Requests++
	b.stats.RowsMoved += int64(len(page))
	b.stats.BytesUp += reqBytes
	b.stats.BytesDown += respBytes
	b.stats.Elapsed += elapsed
	b.mu.Unlock()

	out := make([]store.Row, len(page))
	for i, r := range page {
		out[i] = r.Clone()
	}
	return &Result{Rows: out, Total: total, BytesOnWire: respBytes, Elapsed: elapsed}, nil
}

func (b *bank) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

func (b *bank) ResetStats() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats = Stats{}
}

// FetchAll drains every page matching the filters, retrying each page
// on transient failures with the default backoff policy (sleeping on
// the source's clock between attempts, so simulated timelines advance
// instantly). It is the helper wrappers use when the plan pulls a
// whole (filtered) relation; FetchAllWith adds timeouts and a circuit
// breaker on top.
func FetchAll(ctx context.Context, s Source, filters []Filter) ([]store.Row, error) {
	return FetchAllWith(ctx, s, filters, &FetchOptions{Retry: DefaultRetry()})
}
