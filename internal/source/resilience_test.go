package source

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"drugtree/internal/metrics"
	"drugtree/internal/netsim"
)

func TestRetryDelayCappedAndDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, JitterSeed: 42}
	rng1 := rand.New(rand.NewSource(p.JitterSeed))
	rng2 := rand.New(rand.NewSource(p.JitterSeed))
	for n := 1; n <= 7; n++ {
		d1 := p.Delay(n, rng1)
		d2 := p.Delay(n, rng2)
		if d1 != d2 {
			t.Fatalf("attempt %d: jitter not deterministic (%v vs %v)", n, d1, d2)
		}
		// Capped: base × 2^(n-1) plus ≤50% jitter, never above 1.5×cap.
		if d1 > p.MaxDelay+p.MaxDelay/2 {
			t.Fatalf("attempt %d: delay %v exceeds cap %v + jitter", n, d1, p.MaxDelay)
		}
		if d1 <= 0 {
			t.Fatalf("attempt %d: non-positive delay", n)
		}
	}
	if d := (RetryPolicy{}).Delay(3, nil); d != 0 {
		t.Fatalf("zero policy slept %v", d)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	clock := netsim.NewVirtualClock()
	reg := metrics.NewRegistry()
	b := NewBreaker("X", 3, 10*time.Second, clock, reg)

	fail := errors.New("boom")
	if b.State() != BreakerClosed {
		t.Fatal("not closed initially")
	}
	// Two failures: still closed.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(fail)
	}
	if b.State() != BreakerClosed {
		t.Fatal("opened before threshold")
	}
	// Third consecutive failure trips it.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(fail)
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state=%v trips=%d after threshold", b.State(), b.Trips())
	}
	// Open: rejected without touching the network.
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker allowed: %v", err)
	}
	// Cooldown elapses: one probe admitted, concurrent calls rejected.
	clock.Sleep(11 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected after cooldown: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state=%v, want half-open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe fails: reopen.
	b.Record(fail)
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("state=%v trips=%d after failed probe", b.State(), b.Trips())
	}
	// Next probe succeeds: closed again.
	clock.Sleep(11 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(nil)
	if b.State() != BreakerClosed {
		t.Fatalf("state=%v after successful probe", b.State())
	}
	// A success resets the consecutive-failure count.
	b.Record(fail)
	b.Record(nil)
	b.Record(fail)
	b.Record(fail)
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
	if reg.Counter("source.X.breaker.trips").Value() != 2 {
		t.Fatalf("trip counter = %d", reg.Counter("source.X.breaker.trips").Value())
	}
	if reg.Counter("source.X.breaker.rejected").Value() == 0 {
		t.Fatal("no rejections counted")
	}
}

func TestFaultPlanOutageWindowDeterministic(t *testing.T) {
	ds := testDataset(t)
	run := func() (failures, requests int64) {
		b := NewProteinBank(ds, netsim.NewLink(netsim.ProfileLAN, 1, true))
		clock := netsim.NewVirtualClock()
		b.SetClock(clock)
		b.SetFaultPlan(&FaultPlan{Seed: 7, Windows: []FaultWindow{
			{Mode: FaultOutage, Start: 10 * time.Second, End: 20 * time.Second},
		}})
		for i := 0; i < 30; i++ {
			clock.AdvanceTo(time.Duration(i) * time.Second)
			b.Fetch(context.Background(), Request{Limit: 1})
		}
		st := b.Stats()
		return st.Failures, st.Requests
	}
	f1, r1 := run()
	f2, r2 := run()
	if f1 != f2 || r1 != r2 {
		t.Fatalf("fault schedule not deterministic: %d/%d vs %d/%d", f1, r1, f2, r2)
	}
	// Requests inside [10s,20s) fail; that is exactly 10 of the 30.
	if f1 != 10 {
		t.Fatalf("outage failed %d requests, want 10", f1)
	}
}

func TestFaultPlanErrorBurstDeterministic(t *testing.T) {
	ds := testDataset(t)
	run := func() int64 {
		b := NewProteinBank(ds, netsim.NewLink(netsim.ProfileLAN, 1, true))
		clock := netsim.NewVirtualClock()
		b.SetClock(clock)
		b.SetFaultPlan(&FaultPlan{Seed: 11, Windows: []FaultWindow{
			{Mode: FaultErrorBurst, Start: 0, End: time.Hour, ErrorPct: 0.5},
		}})
		for i := 0; i < 100; i++ {
			b.Fetch(context.Background(), Request{Limit: 1})
		}
		return b.Stats().Failures
	}
	f1, f2 := run(), run()
	if f1 != f2 {
		t.Fatalf("error burst not deterministic under seed: %d vs %d", f1, f2)
	}
	if f1 < 25 || f1 > 75 {
		t.Fatalf("50%% burst failed %d of 100", f1)
	}
}

func TestFaultPlanBrownoutSlowsResponses(t *testing.T) {
	ds := testDataset(t)
	mk := func(plan *FaultPlan) time.Duration {
		b := NewProteinBank(ds, netsim.NewLink(netsim.ProfileLAN, 1, true))
		b.SetClock(netsim.NewVirtualClock())
		b.SetFaultPlan(plan)
		res, err := b.Fetch(context.Background(), Request{Limit: 10})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	normal := mk(nil)
	slow := mk(&FaultPlan{Windows: []FaultWindow{
		{Mode: FaultBrownout, Start: 0, End: time.Hour, SlowFactor: 20},
	}})
	if slow < 10*normal {
		t.Fatalf("brownout response %v not ≫ normal %v", slow, normal)
	}
}

func TestFetchAllWithTimeoutClassifiesSlowResponses(t *testing.T) {
	ds := testDataset(t)
	b := NewProteinBank(ds, netsim.NewLink(netsim.Profile3G, 1, true))
	b.SetClock(netsim.NewVirtualClock())
	b.SetFaultPlan(&FaultPlan{Windows: []FaultWindow{
		{Mode: FaultBrownout, Start: 0, End: time.Hour, SlowFactor: 1000},
	}})
	_, err := FetchAllWith(context.Background(), b, nil, &FetchOptions{
		Retry:   RetryPolicy{MaxAttempts: 2},
		Timeout: 500 * time.Millisecond,
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("browned-out fetch returned %v, want ErrTimeout", err)
	}
	// The timed-out requests were still charged to the source.
	if b.Stats().Requests != 2 {
		t.Fatalf("requests = %d, want 2 (both attempts charged)", b.Stats().Requests)
	}
}

func TestFetchAllWithBreakerStopsHammering(t *testing.T) {
	ds := testDataset(t)
	b := NewProteinBank(ds, netsim.NewLink(netsim.ProfileLAN, 1, true))
	clock := netsim.NewVirtualClock()
	b.SetClock(clock)
	b.SetFaultPlan(&FaultPlan{Windows: []FaultWindow{
		{Mode: FaultOutage, Start: 0, End: time.Hour},
	}})
	br := NewBreaker(b.Name(), 3, 10*time.Second, clock, nil)
	opts := &FetchOptions{
		Retry:   RetryPolicy{MaxAttempts: 10},
		Breaker: br,
		Clock:   clock,
	}
	_, err := FetchAllWith(context.Background(), b, nil, opts)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("fetch under outage returned %v, want ErrCircuitOpen", err)
	}
	// Only threshold-many requests hit the wire; the rest were
	// rejected locally.
	if got := b.Stats().Requests; got != 3 {
		t.Fatalf("outage charged %d requests, want 3 (breaker threshold)", got)
	}
	// Subsequent fetches are rejected without any network traffic.
	if _, err := FetchAllWith(context.Background(), b, nil, opts); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second fetch: %v", err)
	}
	if got := b.Stats().Requests; got != 3 {
		t.Fatalf("open breaker still charged requests: %d", got)
	}
}

func TestFetchAllContextCancelled(t *testing.T) {
	ds := testDataset(t)
	b := NewProteinBank(ds, netsim.NewLink(netsim.ProfileLAN, 1, true))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FetchAll(ctx, b, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fetch returned %v", err)
	}
	if b.Stats().Requests != 0 {
		t.Fatal("cancelled context still charged the link")
	}
}

func TestBackoffSleepsOnClock(t *testing.T) {
	ds := testDataset(t)
	b := NewProteinBank(ds, netsim.NewLink(netsim.ProfileLAN, 1, true))
	clock := netsim.NewVirtualClock()
	b.SetClock(clock)
	b.SetFailureRate(1.0)
	start := clock.Now()
	_, err := FetchAllWith(context.Background(), b, nil, &FetchOptions{
		Retry: RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, JitterSeed: 1},
		Clock: clock,
	})
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v", err)
	}
	// Three retries back off ≥ 100+200+400ms on the virtual clock.
	if waited := clock.Now() - start; waited < 700*time.Millisecond {
		t.Fatalf("backoff advanced clock by only %v", waited)
	}
}

// TestBankStatsConcurrentFetch drives one bank from many goroutines;
// `go test -race` fails this if stats or fault state are unguarded.
func TestBankStatsConcurrentFetch(t *testing.T) {
	ds := testDataset(t)
	b := NewProteinBank(ds, netsim.NewLink(netsim.ProfileLAN, 1, true))
	b.SetFailureRate(0.2)
	b.SetFaultPlan(&FaultPlan{Seed: 3, Windows: []FaultWindow{
		{Mode: FaultErrorBurst, Start: 0, End: time.Hour, ErrorPct: 0.1},
	}})
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				b.Fetch(context.Background(), Request{Limit: 5})
				b.Stats()
			}
		}()
	}
	wg.Wait()
	st := b.Stats()
	if st.Requests != workers*perWorker {
		t.Fatalf("requests = %d, want %d", st.Requests, workers*perWorker)
	}
	if st.Failures == 0 {
		t.Fatal("no failures under 20%+10% injection")
	}
}
