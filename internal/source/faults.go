package source

import (
	"fmt"
	"time"
)

// FaultMode classifies one scripted fault interval.
type FaultMode uint8

const (
	// FaultOutage fails every request in the window (the source is
	// dark: connection refused / hard 5xx).
	FaultOutage FaultMode = iota
	// FaultBrownout serves requests but multiplies response time by
	// SlowFactor (an overloaded or throttled service).
	FaultBrownout
	// FaultErrorBurst fails each request with probability ErrorPct
	// (a flapping dependency), deterministic under the plan seed.
	FaultErrorBurst
)

func (m FaultMode) String() string {
	switch m {
	case FaultOutage:
		return "outage"
	case FaultBrownout:
		return "brownout"
	case FaultErrorBurst:
		return "error-burst"
	}
	return fmt.Sprintf("FaultMode(%d)", uint8(m))
}

// FaultWindow scripts one fault interval on a source's timeline
// (measured by the source's Clock). Start is inclusive, End exclusive.
type FaultWindow struct {
	Mode  FaultMode
	Start time.Duration
	End   time.Duration
	// SlowFactor multiplies response time during a brownout (values
	// ≤ 1 mean no slowdown).
	SlowFactor float64
	// ErrorPct is the per-request failure probability during an
	// error burst (an outage behaves like ErrorPct = 1).
	ErrorPct float64
}

func (w FaultWindow) contains(t time.Duration) bool {
	return t >= w.Start && t < w.End
}

// FaultPlan is a deterministic schedule of fault windows. Unlike the
// uniform SetFailureRate knob, a plan shapes failures in time, which
// is what circuit breakers and backoff react to. The zero plan (or a
// nil plan) injects nothing.
type FaultPlan struct {
	// Seed drives the error-burst coin flips so a schedule replays
	// identically across runs.
	Seed int64
	// Windows are evaluated in order; the first window containing the
	// current time wins.
	Windows []FaultWindow
}

// active returns the window covering t, or nil.
func (p *FaultPlan) active(t time.Duration) *FaultWindow {
	if p == nil {
		return nil
	}
	for i := range p.Windows {
		if p.Windows[i].contains(t) {
			return &p.Windows[i]
		}
	}
	return nil
}
