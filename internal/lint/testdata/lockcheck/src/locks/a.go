// Fixture: mutex discipline — blocking under a held lock, leaked
// locks on return paths, and the legal shapes lockcheck must accept.
package locks

import (
	"sync"
	"time"
)

type client struct{}

func (c *client) Fetch() error { return nil }

type store struct {
	mu   sync.Mutex
	data map[string]int
}

func (s *store) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep call while s\.mu is held`
	s.mu.Unlock()
}

func (s *store) fetchUnderLock(c *client) {
	s.mu.Lock()
	_ = c.Fetch() // want `c\.Fetch call while s\.mu is held`
	s.mu.Unlock()
}

func (s *store) sendUnderLock(ch chan int) {
	s.mu.Lock()
	ch <- 1 // want `channel send while s\.mu is held`
	s.mu.Unlock()
}

func (s *store) recvUnderLock(ch chan int) {
	s.mu.Lock()
	v := <-ch // want `channel receive while s\.mu is held`
	_ = v
	s.mu.Unlock()
}

// A multi-return function that locks manually leaks the lock on the
// early return.
func (s *store) leak(cond bool) int {
	s.mu.Lock()
	if cond {
		return 0 // want `return leaves s\.mu locked`
	}
	s.mu.Unlock()
	return 1
}

// defer covers every return path.
func (s *store) deferred(cond bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cond {
		return 0
	}
	return 1
}

// The registered defer also covers a re-acquisition after a
// mid-function unlock/relock dance (the source.Breaker shape).
func (s *store) relock(c *client) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Unlock()
	_ = c.Fetch()
	s.mu.Lock()
	return len(s.data)
}

// Unlocking on the early-return branch is legal without defer.
func (s *store) fastPath(cond bool) int {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return 0
	}
	s.mu.Unlock()
	return 1
}

// A goroutine does not inherit the spawner's locks.
func (s *store) spawn(done chan struct{}) {
	s.mu.Lock()
	go func() {
		<-done
	}()
	s.mu.Unlock()
}

// RWMutex read locks are held to the same rules.
type rw struct {
	mu sync.RWMutex
}

func (r *rw) readLeak(cond bool) int {
	r.mu.RLock()
	if cond {
		return 0 // want `return leaves r\.mu locked`
	}
	r.mu.RUnlock()
	return 1
}
