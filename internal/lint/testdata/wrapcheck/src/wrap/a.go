// Fixture: error wrapping at package boundaries — fmt.Errorf must
// carry the cause through %w, not flatten it through %v/%s.
package wrap

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

func flatten(err error) error {
	return fmt.Errorf("query failed: %v", err) // want `flattens err without %w`
}

func flattenField(e struct{ lastErr error }) error {
	return fmt.Errorf("sync failed: %v", e.lastErr) // want `flattens e\.lastErr without %w`
}

func flattenString(err error) error {
	return fmt.Errorf("fetch failed: %s", err.Error()) // want `flattens err\.Error\(\.\.\.\) without %w`
}

func wrapped(err error) error {
	return fmt.Errorf("query failed: %w", err)
}

func wrappedWithDetail(err error, n int) error {
	return fmt.Errorf("page %d: %w", n, err)
}

// Non-error operands are free to flatten.
func formatted(n int, s string) error {
	return fmt.Errorf("bad row %d: %v", n, s)
}

// Sentinel construction takes no operand at all.
func sentinel() error {
	return errBase
}
