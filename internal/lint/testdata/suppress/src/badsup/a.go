// Fixture: malformed suppression directives — each of these is a
// budget/suppression error, never a silent no-op.
package badsup

func a() int {
	//lint:ignore drugtree/clockcheck
	x := 1
	//lint:ignore drugtree/nosuchanalyzer because reasons
	x++
	//lint:ignore not-even-close
	return x
}
