// Fixture: suppression mechanics in a deterministic package (path
// segment "query", so clockcheck fires on both Sleep calls below
// unless suppressed).
package query

import "time"

func paced() {
	// The standalone form covers the next line.
	//lint:ignore drugtree/clockcheck scripted pacing is wall-clock by design (reviewed)
	time.Sleep(time.Millisecond)
	time.Sleep(time.Millisecond) //lint:ignore drugtree/clockcheck second reviewed exception, trailing form
}
