// Package errw wraps errors with %w, so raw sentinel identity and
// type assertions are latent bugs everywhere in the fixture tree.
package errw

import (
	"errors"
	"fmt"
	"io"
)

var ErrTooStale = errors.New("errw: too stale")

// Wrap is the %w evidence: once this exists, sentinels can arrive
// wrapped anywhere.
func Wrap(err error) error {
	return fmt.Errorf("fetch: %w", err)
}

func Check(err error) bool {
	if err == ErrTooStale { // want `use errors\.Is\(err, ErrTooStale\)`
		return true
	}
	if err != io.EOF { // want `use errors\.Is\(err, io\.EOF\)`
		return false
	}
	return errors.Is(err, ErrTooStale) // compliant
}

type ParseError struct{ Line int }

func (e *ParseError) Error() string { return "errw: parse" }

func Classify(err error) int {
	if pe, ok := err.(*ParseError); ok { // want `use errors\.As`
		return pe.Line
	}
	switch err.(type) {
	case *ParseError: // want `use errors\.As`
		return 1
	}
	var pe *ParseError
	if errors.As(err, &pe) { // compliant
		return pe.Line
	}
	return 0
}

type UnavailableError struct{ Cause error }

func (e *UnavailableError) Error() string { return "errw: unavailable" }

// Is implements the errors.Is protocol — the one place raw identity
// is the point, so nothing here is flagged.
func (e *UnavailableError) Is(err error) bool {
	return err == ErrTooStale
}
