// Package nowrap never wraps with %w, and it is analyzed alone (its
// fact table carries no wraps: marker), so raw sentinel identity
// still works and nothing is flagged. The same comparisons inside the
// errw fixture are violations — the difference is the fact, not the
// syntax.
package nowrap

import "errors"

var ErrClosed = errors.New("nowrap: closed")

func Closed(err error) bool {
	return err == ErrClosed
}
