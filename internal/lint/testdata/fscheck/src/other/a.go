// Fixture: a package outside the persistence set (no store/shard/
// replica path segment) may use raw os file I/O freely — command
// mains, examples, and the lint tree itself are not fault-injected.
package other

import "os"

func fine(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(dir + "/report.txt")
	if err != nil {
		return err
	}
	return f.Close()
}
