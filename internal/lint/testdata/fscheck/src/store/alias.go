// Fixture: import aliasing must not hide a raw os call, and a local
// identifier named os must not be mistaken for the package.
package store

import stdos "os"

func aliased(dir string) error {
	return stdos.Remove(dir) // want `os\.Remove bypasses the vfs seam`
}

type fakeOS struct{}

func (fakeOS) Remove(string) error { return nil }

func shadowed(dir string) error {
	var os fakeOS
	return os.Remove(dir) // a method on a local value, not the os package
}
