// Fixture: the compliant shape — the same persistence operations
// routed through an injected filesystem seam go unflagged.
package store

type seamFile interface {
	Write([]byte) (int, error)
	Sync() error
	Close() error
}

type seamFS interface {
	Create(string) (seamFile, error)
	Rename(string, string) error
	Remove(string) error
	SyncDir(string) error
}

func persistSeam(fsys seamFS, dir string) error {
	f, err := fsys.Create(dir + "/snapshot.tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("rows")); err != nil {
		f.Close()
		fsys.Remove(dir + "/snapshot.tmp")
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(dir+"/snapshot.tmp", dir+"/snapshot"); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}
