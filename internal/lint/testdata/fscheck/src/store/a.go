// Fixture: a persistence-path package (path segment "store") doing
// raw os file I/O every way fscheck forbids, plus the os vocabulary
// it must leave alone.
package store

import (
	"os"
)

func persist(dir string) error {
	f, err := os.Create(dir + "/snapshot.tmp") // want `os\.Create bypasses the vfs seam`
	if err != nil {
		return err
	}
	f.Close()
	if _, err := os.Open(dir + "/wal.dtl"); err != nil { // want `os\.Open bypasses the vfs seam`
		return err
	}
	if _, err := os.OpenFile(dir+"/wal.dtl", os.O_CREATE|os.O_APPEND, 0o644); err != nil { // want `os\.OpenFile bypasses the vfs seam`
		return err
	}
	if _, err := os.ReadFile(dir + "/MANIFEST"); err != nil { // want `os\.ReadFile bypasses the vfs seam`
		return err
	}
	if err := os.WriteFile(dir+"/MANIFEST", nil, 0o644); err != nil { // want `os\.WriteFile bypasses the vfs seam`
		return err
	}
	if err := os.Rename(dir+"/snapshot.tmp", dir+"/snapshot"); err != nil { // want `os\.Rename bypasses the vfs seam`
		return err
	}
	os.Remove(dir + "/snapshot.tmp")    // want `os\.Remove bypasses the vfs seam`
	os.RemoveAll(dir)                   // want `os\.RemoveAll bypasses the vfs seam`
	os.MkdirAll(dir, 0o755)             // want `os\.MkdirAll bypasses the vfs seam`
	if _, err := os.MkdirTemp("", "shards-"); err != nil { // want `os\.MkdirTemp bypasses the vfs seam`
		return err
	}
	if _, err := os.ReadDir(dir); err != nil { // want `os\.ReadDir bypasses the vfs seam`
		return err
	}
	if _, err := os.Stat(dir); err != nil { // want `os\.Stat bypasses the vfs seam`
		return err
	}
	return os.Truncate(dir+"/wal.dtl", 0) // want `os\.Truncate bypasses the vfs seam`
}

// The allowed vocabulary: error predicates and flag constants are not
// file I/O.
func classify(err error) (bool, int) {
	return os.IsNotExist(err), os.O_CREATE | os.O_WRONLY
}
