// Package sends exercises the goroutine channel-op contract: every
// send or receive inside a spawned body must be select-guarded,
// provably buffered, or released by a visible close.
package sends

import "context"

func process(ctx context.Context, w int) int { return w }

func use(int) {}

// Leaky sends on an unbuffered channel with no guard: when the
// consumer stops draining, every worker wedges.
func Leaky(ctx context.Context, work []int) <-chan int {
	out := make(chan int)
	for _, w := range work {
		w := w
		go func() {
			out <- process(ctx, w) // want `unguarded send to out`
		}()
	}
	return out
}

// Guarded races the send against cancellation: compliant.
func Guarded(ctx context.Context, work []int) <-chan int {
	out := make(chan int)
	for _, w := range work {
		w := w
		go func() {
			select {
			case out <- process(ctx, w):
			case <-ctx.Done():
			}
		}()
	}
	return out
}

// Buffered sizes the channel for one result per worker, so no send
// can block: compliant.
func Buffered(ctx context.Context, work []int) <-chan int {
	results := make(chan int, len(work))
	for _, w := range work {
		w := w
		go func() {
			results <- process(ctx, w)
		}()
	}
	return results
}

// Collect blocks a goroutine on a receive nothing guards: if the
// producer exits first, the goroutine leaks.
func Collect(resultc chan int) {
	go func() {
		v := <-resultc // want `unguarded receive from resultc`
		use(v)
	}()
}

// Fan ranges over a channel this file visibly closes: the range ends
// when the producer closes, so the consumer goroutine is compliant.
func Fan(work []int) {
	itemch := make(chan int)
	go func() {
		for v := range itemch {
			use(v)
		}
	}()
	for _, w := range work {
		itemch <- w
	}
	close(itemch)
}

// Loop ranges over a channel nothing ever closes: the goroutine can
// never end.
func Loop(tickch chan int) {
	go func() {
		for v := range tickch { // want `no visible close\(tickch\)`
			use(v)
		}
	}()
}
