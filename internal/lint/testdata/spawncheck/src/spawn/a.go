// Fixture: goroutine shutdown paths — every `go` statement needs a
// threaded ctx, a channel operation, or a WaitGroup registration.
package spawn

import (
	"context"
	"sync"
)

func work() {}

func run() error { return nil }

func runCtx(ctx context.Context) { <-ctx.Done() }

func pump(ch chan int) {
	for range ch {
	}
}

func spawnBad() {
	go func() { // want `no shutdown path`
		work()
	}()
	go work() // want `receives no context or signalling argument`
}

func spawnGood(ctx context.Context, done chan struct{}) {
	// Waiting on a channel is a shutdown path.
	go func() {
		<-done
	}()
	// The errc <- f() completion idiom: the spawner joins on the send.
	errc := make(chan error, 1)
	go func() { errc <- run() }()
	// Using the threaded ctx in the body.
	go func() {
		<-ctx.Done()
	}()
	// go f(args) form: a context argument carries the cancellation.
	go runCtx(ctx)
	// ... and so does a channel-ish argument.
	ch := make(chan int)
	go pump(ch)
	close(ch)
	<-errc
}

func spawnWG(wg *sync.WaitGroup) {
	wg.Add(1)
	// Registering with a WaitGroup is a join path.
	go func() {
		defer wg.Done()
		work()
	}()
}

func spawnClose(ch chan int) {
	go func() {
		defer close(ch)
		work()
	}()
}
