// Fixture: context threading in a library package (not under cmd/,
// so ctxcheck applies fully).
package source

import (
	"context"
)

// Exported blocking-verb functions without a ctx parameter.
func FetchAll(n int) error { return nil } // want `exported FetchAll .* takes no context\.Context`

func SyncNow() {} // want `exported SyncNow .* takes no context\.Context`

func ServeForever(addr string) error { return nil } // want `exported ServeForever .* takes no context\.Context`

// Verb-boundary cases: the verb must be a whole word prefix.
func Runtime() {}

func Importance() int { return 0 }

// Threading ctx satisfies the check.
func FetchRows(ctx context.Context) error { return nil }

// Unexported functions are the caller's business.
func fetchAll() {}

// Methods are held to the same rule.
type Mediator struct{}

func (m *Mediator) SyncAll() error { return nil } // want `exported SyncAll .* takes no context\.Context`

func (m *Mediator) RunLoop(ctx context.Context) {}

// Minting a root context in library code hides the call tree from
// shutdown.
func mint() context.Context {
	return context.Background() // want `context\.Background\(\) below cmd/`
}

func todo() context.Context {
	return context.TODO() // want `context\.TODO\(\) below cmd/`
}

// The sanctioned defaulting guard is exempt.
func defaulted(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}
