// Fixture: an aliased context import still counts as a ctx parameter.
package source

import c "context"

func ServeConn(ctx c.Context) error { return nil }

func RunBatch() {} // want `exported RunBatch .* takes no context\.Context`
