// Fixture: inside internal/admission the verb set widens — limiter
// entrypoints (Acquire/Begin/Drain) block or carry deadlines, so they
// must thread context.Context like the global Fetch/Sync/... verbs.
package admission

import (
	"context"
)

type Limiter struct{}

func (l *Limiter) Acquire(weight int) error { return nil } // want `exported Acquire .* takes no context\.Context`

func (l *Limiter) Begin(weight int) error { return nil } // want `exported Begin .* takes no context\.Context`

func (l *Limiter) Drain() error { return nil } // want `exported Drain .* takes no context\.Context`

// Threading ctx satisfies the check.
func (l *Limiter) AcquireSlot(ctx context.Context) error { return nil }

// The global verbs still apply here too.
func RunSweep() {} // want `exported RunSweep .* takes no context\.Context`

// Verb-boundary cases: "Beginner" must not match "Begin".
func Beginner() {}

func Drainage() int { return 0 }

// Unexported names stay exempt.
func acquire() {}
