// Fixture: inside internal/shard the verb set widens — Scatter* fans
// goroutines out over the shard engines and Gather* blocks joining
// them or copying whole tables, so both must thread context.Context
// for mid-flight cancellation.
package shard

import (
	"context"
)

type Coordinator struct{}

func (c *Coordinator) ScatterAll() error { return nil } // want `exported ScatterAll .* takes no context\.Context`

func (c *Coordinator) GatherTables(names []string) error { return nil } // want `exported GatherTables .* takes no context\.Context`

// Threading ctx satisfies the check.
func (c *Coordinator) GatherRows(ctx context.Context) error { return nil }

func Scatter(ctx context.Context, n int) error { return nil }

// The global verbs still apply here too.
func RunQuery() {} // want `exported RunQuery .* takes no context\.Context`

// Verb-boundary cases: "Gathering" must not match "Gather".
func Gathering() {}

func Scattershot() int { return 0 }

// Unexported names stay exempt.
func gather() {}
