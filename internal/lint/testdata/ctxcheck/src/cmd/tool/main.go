// Fixture: packages under cmd/ are context roots by definition —
// ctxcheck skips them entirely.
package main

import "context"

func main() {
	_ = context.Background()
	RunAll()
}

func RunAll() {}
