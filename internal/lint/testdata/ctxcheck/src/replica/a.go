// Fixture: inside internal/replica the verb set widens — Ship*
// streams WAL tails to followers, Apply* replays records into a
// follower store, and Promote* replays a dead leader's tail before
// taking over, so all three must thread context.Context for
// mid-flight cancellation.
package replica

import (
	"context"
)

type Set struct{}

func (s *Set) ShipAll() error { return nil } // want `exported ShipAll .* takes no context\.Context`

func (s *Set) ApplyTail(records [][]byte) error { return nil } // want `exported ApplyTail .* takes no context\.Context`

func Promote(n int) error { return nil } // want `exported Promote .* takes no context\.Context`

// Threading ctx satisfies the check.
func (s *Set) Ship(ctx context.Context) error { return nil }

func ApplySnapshot(ctx context.Context, b []byte) error { return nil }

// The global verbs still apply here too.
func SyncFollowers() {} // want `exported SyncFollowers .* takes no context\.Context`

// Verb-boundary cases: "Shipment" must not match "Ship".
func Shipment() {}

func Applied() int { return 0 }

// Unexported names stay exempt.
func apply() {}
