// Fixture: the vectorized executor's batch-granularity cancellation
// contract (ctxcheck's "batchpoll" rule). A nextBatch method must
// poll cancellation once per batch, directly or by delegation.
package batch

type batch struct{}

type canceller struct{}

func (c *canceller) now() error   { return nil }
func (c *canceller) check() error { return nil }

// Polling directly via now() satisfies the rule.
type scanner struct{ cancel canceller }

func (s *scanner) nextBatch() (*batch, error) {
	if err := s.cancel.now(); err != nil {
		return nil, err
	}
	return nil, nil
}

// Amortized polling via check() is also sanctioned.
type checker struct{ cancel canceller }

func (c *checker) nextBatch() (*batch, error) {
	if err := c.cancel.check(); err != nil {
		return nil, err
	}
	return nil, nil
}

// Delegating to another batch iterator inherits its polling.
type wrapper struct{ in *scanner }

func (w *wrapper) nextBatch() (*batch, error) { return w.in.nextBatch() }

// A nextBatch that neither polls nor delegates pins the query.
type rogue struct{ batches []*batch }

func (r *rogue) nextBatch() (*batch, error) { // want `nextBatch does not poll cancellation`
	if len(r.batches) == 0 {
		return nil, nil
	}
	b := r.batches[0]
	r.batches = r.batches[1:]
	return b, nil
}

// Other methods on batch operators are out of scope.
func (r *rogue) reset() {}
