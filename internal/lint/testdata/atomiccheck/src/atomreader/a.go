// Package atomreader reads another package's counter. The atomic
// facts travel with the type: Evictions is atomic in package atomics,
// so a plain read here is flagged — the cross-package half of the
// contract.
package atomreader

import "atomics"

func Evictions(c *atomics.Cache) int64 {
	return c.Evictions // want `plain access to atomics\.Cache\.Evictions`
}
