// Package atomics exercises the all-or-nothing atomicity contract:
// Stats fields and the Evictions counter are touched via sync/atomic,
// so every other access must be atomic too — or provably private.
package atomics

import "sync/atomic"

type Stats struct {
	Hits   int64
	Misses int64
}

type Cache struct {
	stats     *Stats
	Evictions int64
}

func (c *Cache) Record(hit bool) {
	if hit {
		atomic.AddInt64(&c.stats.Hits, 1)
	} else {
		atomic.AddInt64(&c.stats.Misses, 1)
	}
}

func (c *Cache) Evict() {
	atomic.AddInt64(&c.Evictions, 1)
}

func (c *Cache) Hits() int64 {
	return c.stats.Hits // want `plain access to atomics\.Stats\.Hits`
}

func (c *Cache) Copy() Stats {
	return *c.stats // want `dereference copies atomics\.Stats`
}

// Snapshot is the compliant read: field-by-field atomic loads.
func (c *Cache) Snapshot() Stats {
	return Stats{
		Hits:   atomic.LoadInt64(&c.stats.Hits),
		Misses: atomic.LoadInt64(&c.stats.Misses),
	}
}

// New writes plain fields on a cache no other goroutine can see yet:
// a locally constructed pointer is private until published.
func New() *Cache {
	c := &Cache{stats: &Stats{}}
	c.Evictions = 0
	return c
}

// tally receives a value copy: its fields are private memory, and
// plain reads are fine.
func tally(s Stats) int64 {
	return s.Hits + s.Misses
}
