// Package locka holds the two lock classes of the golden cycle. The
// cycle's A.mu → C.mu edge exists only by following the call into
// package lockb and back through its Filler callback — neither
// function of this package acquires both locks directly — which is
// exactly the cross-package propagation lockorder exists to catch.
package locka

import (
	"sync"

	"lockb"
)

type A struct {
	mu    sync.Mutex
	items []int
}

type C struct {
	mu   sync.Mutex
	data []int
}

// One processes under A.mu; lockb.Process calls back into C.Fill,
// which takes C.mu — the hidden A.mu → C.mu edge.
func (a *A) One(c *C) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockb.Process(c) // want `acquires locka\.C\.mu while locka\.A\.mu is held, creating a lock-order cycle`
}

// Fill implements lockb.Filler.
func (c *C) Fill() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data = append(c.data, 1)
}

// Drain takes the locks in the opposite order: C.mu, then A.mu via
// LockedOp — the back edge that closes the cycle.
func (c *C) Drain(a *A) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a.LockedOp() // want `acquires locka\.A\.mu while locka\.C\.mu is held, creating a lock-order cycle`
}

func (a *A) LockedOp() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.items = a.items[:0]
}
