// Package lockb is the middle hop of the golden cross-package cycle:
// Process holds no lock itself, but its Filler callback dispatches to
// an implementation in a package that imports this one, and whatever
// that implementation acquires becomes part of Process's closure.
package lockb

import "sync"

// Filler is implemented by callers.
type Filler interface {
	Fill()
}

// Process runs the callback; its lock closure is the callback's.
func Process(f Filler) {
	f.Fill()
}

// B demonstrates blocking-under-lock: Pump calls send while holding
// B.mu, and send's body does a channel send.
type B struct {
	mu sync.Mutex
	ch chan int
}

func (b *B) Pump() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.send() // want `blocks \(channel op or Wait in its call chain\) while lockb\.B\.mu is held`
}

func (b *B) send() {
	b.ch <- 1
}

// Compliant: D → E is taken in the same order everywhere, so the
// graph stays acyclic and nothing below is flagged.
type D struct {
	mu sync.Mutex
	n  int
}

type E struct {
	mu sync.Mutex
	n  int
}

func (d *D) Bump(e *E) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e.Inc()
}

func (e *E) Inc() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.n++
}
