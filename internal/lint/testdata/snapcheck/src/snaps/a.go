// Fixture: snapshot-handle lifecycle — every PinSnapshot() needs a
// release path (defer, unconditional release, or ownership transfer)
// before any early return.
package snaps

type handle struct{}

func (handle) Release()     {}
func (handle) View() handle { return handle{} }
func (handle) Version() int { return 0 }

type db struct{}

func (db) PinSnapshot() handle { return handle{} }

func consume(h handle) {}

func wrap(h handle) handle { return h }

func deferred(d db) {
	snap := d.PinSnapshot()
	defer snap.Release()
	_ = snap.Version()
}

func deferredClosure(d db) {
	snap := d.PinSnapshot()
	defer func() {
		snap.Release()
	}()
	_ = snap.Version()
}

func pinReadRelease(d db) int {
	snap := d.PinSnapshot()
	v := snap.Version()
	snap.Release()
	return v
}

func errorPathReleases(d db, fail bool) error {
	snap := d.PinSnapshot()
	if fail {
		// The branch that returns also releases: not a leak.
		snap.Release()
		return nil
	}
	snap.Release()
	return nil
}

func transferToCaller(d db) handle {
	snap := d.PinSnapshot()
	return snap
}

func transferToCallee(d db) {
	snap := d.PinSnapshot()
	consume(snap)
}

func transferToClosure(d db) func() {
	snap := d.PinSnapshot()
	return func() { snap.Release() }
}

func transferWrapped(d db) handle {
	snap := d.PinSnapshot()
	return wrap(snap)
}

func reassigned(d db) handle {
	var snap handle
	snap = d.PinSnapshot()
	defer snap.Release()
	return snap.View()
}

func neverReleased(d db) {
	snap := d.PinSnapshot() // want `snapshot snap is never released`
	_ = snap.Version()
}

func discarded(d db) {
	d.PinSnapshot() // want `snapshot pinned and discarded`
}

func discardedBlank(d db) {
	_ = d.PinSnapshot() // want `snapshot pinned and discarded`
}

func leakOnEarlyReturn(d db, fail bool) error {
	snap := d.PinSnapshot() // want `snapshot snap may leak on an early return`
	if fail {
		return nil
	}
	snap.Release()
	return nil
}

func leakOnTopLevelReturn(d db) int {
	snap := d.PinSnapshot() // want `snapshot snap may leak: return before snap.Release`
	v := snap.Version()
	return v
}

func returnsDerivedValue(d db) int {
	// Returning a value derived from the handle is not a transfer:
	// the caller gets an int, nobody holds the pin.
	snap := d.PinSnapshot() // want `snapshot snap may leak: return before snap.Release`
	return snap.Version()
}

func logsDerivedValue(d db) {
	snap := d.PinSnapshot() // want `snapshot snap is never released`
	consumeInt(snap.Version())
}

func consumeInt(int) {}

func conditionalReleaseOnly(d db, ok bool) {
	snap := d.PinSnapshot() // want `snapshot snap is never released`
	if ok {
		snap.Release()
	}
}
