// Fixture: a package outside the deterministic set may use the wall
// clock freely.
package other

import "time"

func fine() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
