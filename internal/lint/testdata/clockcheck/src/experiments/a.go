// Fixture: a deterministic package (path segment "experiments")
// touching the wall clock every way clockcheck forbids, plus the
// shapes it must leave alone.
package experiments

import (
	"time"
)

func measure() time.Duration {
	start := time.Now()               // want `time\.Now in deterministic package`
	time.Sleep(time.Millisecond)      // want `time\.Sleep in deterministic package`
	<-time.After(time.Millisecond)    // want `time\.After in deterministic package`
	_ = time.NewTimer(time.Second)    // want `time\.NewTimer in deterministic package`
	_ = time.NewTicker(time.Second)   // want `time\.NewTicker in deterministic package`
	time.AfterFunc(tick, func() {})   // want `time\.AfterFunc in deterministic package`
	return time.Since(start)          // want `time\.Since in deterministic package`
}

// Duration arithmetic and constants stay free.
const tick = 50 * time.Millisecond

var budget = 3 * tick

func round(d time.Duration) time.Duration { return d.Round(time.Millisecond) }

// A local declaration shadowing the package name is not the wall
// clock.
func shadowed() int {
	time := fakeClock{}
	return time.Now()
}

type fakeClock struct{}

func (fakeClock) Now() int { return 0 }
