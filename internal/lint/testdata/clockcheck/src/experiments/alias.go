// Fixture: import aliasing must not hide a wall-clock call.
package experiments

import t "time"

func aliased() {
	t.Sleep(t.Millisecond) // want `time\.Sleep in deterministic package`
}
