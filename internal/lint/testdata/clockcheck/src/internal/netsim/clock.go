// Fixture: this filename suffix (internal/netsim/clock.go) is on the
// wall-clock shim allowlist, so real clock reads here are legal even
// though the package is deterministic.
package netsim

import "time"

func wallNow() time.Time { return time.Now() }

func wallSleep(d time.Duration) { time.Sleep(d) }
