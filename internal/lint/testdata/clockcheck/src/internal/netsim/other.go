// Fixture: the allowlist is per-file, not per-package — a sibling
// file in the same deterministic package is still checked.
package netsim

import "time"

func drift() {
	time.Sleep(time.Millisecond) // want `time\.Sleep in deterministic package`
}
