// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against `// want` comments, mirroring the
// golden-test contract of golang.org/x/tools/go/analysis/analysistest:
// a line that should be flagged carries a trailing comment
//
//	time.Sleep(time.Second) // want `time\.Sleep`
//
// where the backquoted (or double-quoted) argument is a regular
// expression that must match the diagnostic message reported on that
// line. A line may carry several expectations; every diagnostic must
// match exactly one pending expectation and every expectation must be
// consumed, otherwise the test fails with a per-line explanation.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"drugtree/internal/lint/analysis"
	"drugtree/internal/lint/loader"
)

// expectation is one `// want` regexp awaiting a diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run applies a to each fixture package under testdata/src/<pkg> and
// verifies the diagnostics against the // want comments. It returns
// the raw diagnostics for callers that make further assertions.
//
// Mirroring the production driver, Run is two-phase: the analyzer's
// Collect hook (when present) first runs over every listed package
// and the merged fact table feeds every analysis pass — so a fixture
// can pin a lock-order cycle that only exists via a cross-package
// call, provided both packages are listed in one Run.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) []analysis.Diagnostic {
	t.Helper()
	type loaded struct {
		fset *token.FileSet
		pkg  *loader.Package
	}
	var parsed []loaded
	for _, pkgPath := range pkgs {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgPath))
		fset := token.NewFileSet()
		pkg, err := loader.LoadDir(fset, dir, pkgPath)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		parsed = append(parsed, loaded{fset, pkg})
	}
	facts := make(analysis.FactSet)
	if a.Collect != nil {
		for _, l := range parsed {
			kv, err := a.Collect(&analysis.Pass{
				Analyzer:  a,
				Fset:      l.fset,
				Files:     l.pkg.Files,
				Filenames: l.pkg.Filenames,
				PkgPath:   l.pkg.Path,
			})
			if err != nil {
				t.Fatalf("%s: Collect(%s): %v", a.Name, l.pkg.Path, err)
			}
			facts.Merge(analysis.FactSet{a.Name: kv})
		}
	}
	var all []analysis.Diagnostic
	for _, l := range parsed {
		fset, pkg := l.fset, l.pkg
		want, err := expectations(fset, pkg)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		var got []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Filenames: pkg.Filenames,
			PkgPath:   pkg.Path,
			Facts:     facts[a.Name],
			Report:    func(d analysis.Diagnostic) { got = append(got, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s: Run: %v", a.Name, err)
		}
		all = append(all, got...)

		for _, d := range got {
			pos := fset.Position(d.Pos)
			if !claim(want, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, pos.Filename, pos.Line, d.Message)
			}
		}
		for _, w := range want {
			if !w.met {
				t.Errorf("%s: no diagnostic at %s:%d matching %q", a.Name, w.file, w.line, w.re)
			}
		}
	}
	return all
}

// claim marks the first unmet expectation on (file, line) whose
// regexp matches msg.
func claim(want []*expectation, file string, line int, msg string) bool {
	for _, w := range want {
		if !w.met && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.met = true
			return true
		}
	}
	return false
}

// wantRE pulls the arguments out of a `// want` comment: backquoted
// or double-quoted strings.
var wantRE = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

// expectations parses the // want comments of every file in pkg.
func expectations(fset *token.FileSet, pkg *loader.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") && text != "want" {
					continue
				}
				pos := fset.Position(c.Pos())
				args := wantRE.FindAllString(strings.TrimPrefix(text, "want"), -1)
				if len(args) == 0 {
					return nil, fmt.Errorf("%s:%d: // want comment with no pattern", pos.Filename, pos.Line)
				}
				for _, arg := range args {
					re, err := regexp.Compile(arg[1 : len(arg)-1])
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %w", pos.Filename, pos.Line, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}
