package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"drugtree/internal/lint/analysis"
)

// AtomicCheck enforces all-or-nothing atomicity: a struct field
// touched through sync/atomic anywhere in the tree must be accessed
// atomically everywhere. A single plain load racing an atomic store
// is still a data race — the atomic call on one side buys nothing —
// and it is exactly the mistake that survives until a -race run on
// the right interleaving.
//
// The collection phase exports two fact families per package:
//
//	link:<pkg>.<T>.<field>   = "ptr <class>" | "val <class>"
//	atomic:<pkg>.<T>.<field> = "rw"
//
// link facts describe struct shape (which fields are pointer links,
// which are embedded values), so a textual access chain like
// ec.stats.RowsScanned can be resolved to its owning type
// (query.ExecStats.RowsScanned) in any package. atomic facts mark the
// fields appearing as &chain arguments of sync/atomic calls.
//
// The analysis phase flags a plain read or write of an atomic-marked
// field when the access chain provably reaches shared memory: the
// root is a pointer receiver/parameter, or some link in the chain is
// a pointer field. Chains rooted at value copies or at locally
// constructed, not-yet-published objects (x := T{}, x := &T{} in the
// same function) are exempt — a private copy cannot race. It also
// flags `*p` dereference-copies of any struct type carrying atomic
// fields: the copy tears, and its plain fields launder the atomic
// discipline away (the snapshot must be taken field-by-field with
// atomic loads).
var AtomicCheck = &analysis.Analyzer{
	Name: "atomiccheck",
	Doc: "a field accessed via sync/atomic anywhere must be accessed atomically everywhere, " +
		"and structs with atomic fields must not be copied by dereference",
	Collect: collectAtomic,
	Run:     runAtomic,
}

const (
	linkFactPrefix   = "link:"
	atomicFactPrefix = "atomic:"
)

// atomicBuiltins are type names that terminate link chains.
var atomicBuiltins = map[string]bool{
	"bool": true, "byte": true, "rune": true, "string": true, "error": true, "any": true,
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true, "uintptr": true,
	"float32": true, "float64": true, "complex64": true, "complex128": true,
}

// fieldLink classifies a struct field type as a chain link: a named
// struct-ish type, reached by value or by pointer.
func fieldLink(base string, t ast.Expr) (class string, ptr bool) {
	switch t := t.(type) {
	case *ast.StarExpr:
		cls, _ := fieldLink(base, t.X)
		return cls, true
	case *ast.Ident:
		if atomicBuiltins[t.Name] {
			return "", false
		}
		return base + "." + t.Name, false
	case *ast.SelectorExpr:
		if x, ok := t.X.(*ast.Ident); ok {
			return x.Name + "." + t.Sel.Name, false
		}
	}
	return "", false
}

// structLinks builds the link facts for every struct declared in the
// pass's files.
func structLinks(pass *analysis.Pass) map[string]string {
	base := pkgBase(pass.PkgPath)
	links := make(map[string]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			owner := base + "." + ts.Name.Name
			for _, field := range st.Fields.List {
				cls, ptr := fieldLink(base, field.Type)
				if cls == "" {
					continue
				}
				kind := "val "
				if ptr {
					kind = "ptr "
				}
				for _, name := range field.Names {
					links[linkFactPrefix+owner+"."+name.Name] = kind + cls
				}
			}
			return true
		})
	}
	return links
}

// atomVar is one resolvable chain root in a function scope.
type atomVar struct {
	class string
	ptr   bool
	// fresh marks a pointer constructed in this function (&T{...}):
	// private until published, so plain initialization is fine.
	fresh bool
}

// atomScope maps identifiers to their classes for one function.
type atomScope map[string]atomVar

func (s atomScope) clone() atomScope {
	c := make(atomScope, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// bindParams adds receiver/parameter classes to the scope.
func bindParams(base string, s atomScope, recv *ast.FieldList, ftype *ast.FuncType) {
	bind := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, p := range fl.List {
			t := p.Type
			ptr := false
			if st, ok := t.(*ast.StarExpr); ok {
				t = st.X
				ptr = true
			}
			cls := typeClass(base, t)
			if cls == "" {
				continue
			}
			for _, id := range p.Names {
				s[id.Name] = atomVar{class: cls, ptr: ptr}
			}
		}
	}
	bind(recv)
	if ftype != nil {
		bind(ftype.Params)
	}
}

// bindLocals adds `x := T{}` / `x := &T{}` / `var x T` declarations.
func bindLocals(base string, s atomScope, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false // separate scope
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if i >= len(st.Lhs) {
					break
				}
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				switch r := rhs.(type) {
				case *ast.CompositeLit:
					if cls := typeClass(base, r.Type); cls != "" {
						s[id.Name] = atomVar{class: cls}
					}
				case *ast.UnaryExpr:
					if cl, ok := r.X.(*ast.CompositeLit); ok {
						if cls := typeClass(base, cl.Type); cls != "" {
							s[id.Name] = atomVar{class: cls, ptr: true, fresh: true}
						}
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || vs.Type == nil {
						continue
					}
					t, ptr := vs.Type, false
					if star, isStar := t.(*ast.StarExpr); isStar {
						t, ptr = star.X, true
					}
					if cls := typeClass(base, t); cls != "" {
						for _, id := range vs.Names {
							s[id.Name] = atomVar{class: cls, ptr: ptr}
						}
					}
				}
			}
		}
		return true
	})
}

// selChain flattens a pure identifier selector chain (a.b.c), or nil.
func selChain(e ast.Expr) []string {
	switch e := e.(type) {
	case *ast.Ident:
		return []string{e.Name}
	case *ast.SelectorExpr:
		if base := selChain(e.X); base != nil {
			return append(base, e.Sel.Name)
		}
	case *ast.ParenExpr:
		return selChain(e.X)
	}
	return nil
}

// resolveChain follows chain through the link table: returns the
// owning class of the final field, the final field name, whether the
// chain reaches shared memory, and the class of the full chain's
// value (for dereference checks).
func resolveChain(scope atomScope, links map[string]string, chain []string) (owner, field string, shared bool, valueClass string, ok bool) {
	root, found := scope[chain[0]]
	if !found {
		return "", "", false, "", false
	}
	shared = root.ptr && !root.fresh
	owner = root.class
	valueClass = root.class
	for i := 1; i < len(chain); i++ {
		link, has := links[linkFactPrefix+owner+"."+chain[i]]
		if i == len(chain)-1 {
			field = chain[i]
			if has {
				valueClass = link[4:]
				if strings.HasPrefix(link, "ptr ") {
					// The chain's value is a pointer: dereferencing it
					// reaches the shared pointee even off a value copy.
					shared = true
				}
			} else {
				valueClass = ""
			}
			return owner, field, shared, valueClass, true
		}
		if !has {
			return "", "", false, "", false
		}
		if strings.HasPrefix(link, "ptr ") {
			shared = true
		}
		owner = link[4:]
	}
	return owner, "", shared, valueClass, true
}

// atomicCall reports whether call is a sync/atomic function and, if
// so, returns its address arguments' selector chains.
func atomicCall(f *ast.File, call *ast.CallExpr) (chains [][]string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, false
	}
	x, isIdent := sel.X.(*ast.Ident)
	if !isIdent || x.Obj != nil {
		return nil, false
	}
	name, has := analysis.ImportName(f, "sync/atomic")
	if !has || x.Name != name {
		return nil, false
	}
	for _, arg := range call.Args {
		if ue, isAddr := arg.(*ast.UnaryExpr); isAddr && ue.Op == token.AND {
			if c := selChain(ue.X); c != nil {
				chains = append(chains, c)
			}
		}
	}
	return chains, true
}

func collectAtomic(pass *analysis.Pass) (map[string]string, error) {
	base := pkgBase(pass.PkgPath)
	facts := structLinks(pass)
	for _, f := range pass.Files {
		file := f
		var scan func(recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt, outer atomScope)
		scan = func(recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt, outer atomScope) {
			scope := outer.clone()
			bindParams(base, scope, recv, ftype)
			bindLocals(base, scope, body)
			ast.Inspect(body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncLit:
					scan(nil, x.Type, x.Body, scope)
					return false
				case *ast.CallExpr:
					chains, isAtomic := atomicCall(file, x)
					if !isAtomic {
						return true
					}
					for _, chain := range chains {
						if owner, field, _, _, ok := resolveChain(scope, facts, chain); ok && field != "" {
							facts[atomicFactPrefix+owner+"."+field] = "rw"
						}
					}
					return false
				}
				return true
			})
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if fn, ok := n.(*ast.FuncDecl); ok && fn.Body != nil {
				scan(fn.Recv, fn.Type, fn.Body, atomScope{})
				return false
			}
			return true
		})
	}
	return facts, nil
}

func runAtomic(pass *analysis.Pass) (interface{}, error) {
	base := pkgBase(pass.PkgPath)
	links := pass.Facts
	// Classes carrying at least one atomic field, for the
	// dereference-copy rule.
	atomicClasses := map[string]bool{}
	for _, k := range analysis.SortedKeys(links) {
		if strings.HasPrefix(k, atomicFactPrefix) {
			full := strings.TrimPrefix(k, atomicFactPrefix)
			if i := strings.LastIndex(full, "."); i > 0 {
				atomicClasses[full[:i]] = true
			}
		}
	}
	for _, f := range pass.Files {
		file := f
		var scan func(recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt, outer atomScope)
		scan = func(recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt, outer atomScope) {
			scope := outer.clone()
			bindParams(base, scope, recv, ftype)
			bindLocals(base, scope, body)
			ast.Inspect(body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncLit:
					scan(nil, x.Type, x.Body, scope)
					return false
				case *ast.CallExpr:
					if _, isAtomic := atomicCall(file, x); isAtomic {
						return false // the atomic access itself
					}
					return true
				case *ast.StarExpr:
					chain := selChain(x.X)
					if chain == nil {
						return true
					}
					_, _, shared, valueClass, ok := resolveChain(scope, links, chain)
					if ok && shared && atomicClasses[valueClass] {
						pass.Reportf(x.Pos(),
							"dereference copies %s, which has fields accessed via sync/atomic; "+
								"plain copies race with atomic writers — take a snapshot with atomic loads instead",
							valueClass)
						return false
					}
					return true
				case *ast.SelectorExpr:
					chain := selChain(x)
					if chain == nil {
						return true // composite base (call/index); descend for inner chains
					}
					owner, field, shared, _, ok := resolveChain(scope, links, chain)
					if ok && shared && field != "" && links[atomicFactPrefix+owner+"."+field] != "" {
						pass.Reportf(x.Pos(),
							"plain access to %s.%s, which is accessed via sync/atomic elsewhere; "+
								"mixed plain/atomic access is a data race — use atomic loads/stores on every path",
							owner, field)
					}
					return false
				}
				return true
			})
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if fn, ok := n.(*ast.FuncDecl); ok && fn.Body != nil {
				scan(fn.Recv, fn.Type, fn.Body, atomScope{})
				return false
			}
			return true
		})
	}
	return nil, nil
}
