package lint

import (
	"go/ast"

	"drugtree/internal/lint/analysis"
)

// ctxVerbs are the exported-name prefixes that mark a function as
// blocking or I/O-shaped: fetching from a source, synchronizing the
// mediator, serving a session, or running a long computation. Such
// functions must accept a context.Context so callers can cancel them
// (PR 1's invariant — every blocking path is abortable).
var ctxVerbs = []string{"Fetch", "Sync", "Serve", "Import", "Run"}

// admissionCtxVerbs extends the verb set inside internal/admission:
// limiter entrypoints block (Acquire), carry deadlines (Begin), or
// wait for quiescence (Drain), so every one must accept a
// context.Context even though the names fall outside the global verb
// list.
var admissionCtxVerbs = []string{"Acquire", "Begin", "Drain"}

// shardCtxVerbs extends the verb set inside internal/shard: a scatter
// fans goroutines out over the shard engines and a gather blocks on
// joining them (or copies whole tables), so both shapes must thread
// context.Context for mid-flight cancellation. Scoped to the shard
// package because elsewhere Gather* names pure column gathers
// (store.GatherCols).
var shardCtxVerbs = []string{"Scatter", "Gather"}

// replicaCtxVerbs extends the verb set inside internal/replica: a
// ship streams a WAL tail to every follower, an apply replays records
// into a follower store, and a promote replays a dead leader's tail
// before taking over — all unbounded-work paths a caller must be able
// to abandon mid-flight. Scoped to the replica package so Apply*
// elsewhere (pure in-memory appliers) stays unconstrained.
var replicaCtxVerbs = []string{"Ship", "Apply", "Promote"}

// ctxExemptSegments are path segments whose packages ctxcheck skips
// entirely: command mains and examples are context roots by
// definition, the lint tree itself runs no blocking work, and vfs is
// the filesystem seam whose File/FS interfaces must mirror *os.File's
// context-free method set (Sync, SyncDir) — a context parameter there
// would diverge the seam from the os passthrough it abstracts.
var ctxExemptSegments = []string{"cmd", "examples", "lint", "testdata_exempt", "vfs"}

// CtxCheck enforces context threading: exported functions that fetch,
// sync, serve, or run blocking work must accept context.Context, and
// library code below cmd/ must not mint fresh root contexts with
// context.Background()/TODO() — a goroutine holding a root context is
// invisible to shutdown. The only sanctioned Background() uses are
// nil-context defaulting guards (`if ctx == nil`).
var CtxCheck = &analysis.Analyzer{
	Name: "ctxcheck",
	Doc: "exported Fetch*/Sync*/Serve*/Import*/Run* functions must accept context.Context; " +
		"context.Background()/TODO() below cmd/ only inside `if ctx == nil` guards; " +
		"nextBatch methods must poll cancellation once per batch",
	Run: runCtxCheck,
}

func runCtxCheck(pass *analysis.Pass) (interface{}, error) {
	if anySegment(pass.PkgPath, ctxExemptSegments) {
		return nil, nil
	}
	verbs := ctxVerbs
	if anySegment(pass.PkgPath, []string{"admission"}) {
		verbs = append(append([]string{}, ctxVerbs...), admissionCtxVerbs...)
	}
	if anySegment(pass.PkgPath, []string{"shard"}) {
		verbs = append(append([]string{}, ctxVerbs...), shardCtxVerbs...)
	}
	if anySegment(pass.PkgPath, []string{"replica"}) {
		verbs = append(append([]string{}, ctxVerbs...), replicaCtxVerbs...)
	}
	for _, f := range pass.Files {
		checkCtxSignatures(pass, f, verbs)
		checkCtxRoots(pass, f)
		checkBatchPoll(pass, f)
	}
	return nil, nil
}

// checkBatchPoll enforces the vectorized executor's cancellation
// contract (the "batchpoll" rule): every nextBatch method — the batch
// operator interface — must poll its context at batch granularity,
// either directly via canceller.now()/.check() or by delegating to
// another batch iterator (a .nextBatch call or drainBatches), which
// polls on its behalf. A nextBatch that neither polls nor delegates
// makes a vectorized query unabortable for the whole operator.
func checkBatchPoll(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || fd.Name.Name != "nextBatch" || fd.Body == nil {
			continue
		}
		polls := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				switch fun.Sel.Name {
				case "now", "check", "nextBatch":
					polls = true
				}
			case *ast.Ident:
				if fun.Name == "drainBatches" {
					polls = true
				}
			}
			return !polls
		})
		if !polls {
			pass.Reportf(fd.Name.Pos(),
				"nextBatch does not poll cancellation: call canceller.now()/check() once per batch (or delegate to a polling batch iterator) so vectorized queries stay abortable")
		}
	}
}

// checkCtxSignatures flags exported blocking-verb functions without a
// context parameter.
func checkCtxSignatures(pass *analysis.Pass, f *ast.File, verbs []string) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || !fd.Name.IsExported() || !hasCtxVerb(fd.Name.Name, verbs) {
			continue
		}
		if hasContextParam(f, fd.Type) {
			continue
		}
		pass.Reportf(fd.Name.Pos(),
			"exported %s blocks or performs I/O (name matches %v) but takes no context.Context; thread ctx so callers can cancel it",
			fd.Name.Name, verbs)
	}
}

// checkCtxRoots flags context.Background()/context.TODO() calls
// outside nil-context defaulting guards.
func checkCtxRoots(pass *analysis.Pass, f *ast.File) {
	if _, ok := analysis.ImportName(f, "context"); !ok {
		return
	}
	parents := analysis.Parents(f)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := analysis.IsPkgCall(f, call, "context", "Background", "TODO")
		if !ok {
			return true
		}
		if inNilCtxGuard(parents, call) {
			return true
		}
		pass.Reportf(call.Pos(),
			"context.%s() below cmd/ creates an uncancellable root; accept a ctx parameter instead (nil-defaulting guards are exempt)",
			fn)
		return true
	})
}

// hasCtxVerb reports whether name starts with a blocking verb.
func hasCtxVerb(name string, verbs []string) bool {
	for _, v := range verbs {
		if len(name) >= len(v) && name[:len(v)] == v {
			// Require the verb to end the name or be followed by an
			// uppercase letter / digit, so "Runtime" or "Importance"
			// style names don't match.
			if len(name) == len(v) {
				return true
			}
			c := name[len(v)]
			if c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
				return true
			}
		}
	}
	return false
}

// hasContextParam reports whether ft has a parameter of (aliased)
// type context.Context.
func hasContextParam(f *ast.File, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	ctxName, imported := analysis.ImportName(f, "context")
	if !imported {
		return false
	}
	for _, field := range ft.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		if x, ok := sel.X.(*ast.Ident); ok && x.Name == ctxName {
			return true
		}
	}
	return false
}

// inNilCtxGuard walks outward from n looking for an enclosing
// `if ctx == nil { ... }` (or `x == nil` comparison naming a Context
// variable) — the sanctioned defaulting pattern.
func inNilCtxGuard(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for cur := n; cur != nil; cur = parents[cur] {
		ifs, ok := cur.(*ast.IfStmt)
		if !ok {
			continue
		}
		if bin, ok := ifs.Cond.(*ast.BinaryExpr); ok && isNilCompare(bin) {
			return true
		}
	}
	return false
}

// isNilCompare matches `<expr> == nil` / `nil == <expr>` where the
// non-nil side mentions a ctx-ish identifier.
func isNilCompare(bin *ast.BinaryExpr) bool {
	if bin.Op.String() != "==" {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	mentionsCtx := func(e ast.Expr) bool {
		s := analysis.ExprString(e)
		return s == "ctx" || len(s) >= 3 && (s[len(s)-3:] == "ctx" || s[len(s)-3:] == "Ctx")
	}
	return isNil(bin.X) && mentionsCtx(bin.Y) || isNil(bin.Y) && mentionsCtx(bin.X)
}
