package lint

import (
	"os"
	"path/filepath"
	"testing"

	"drugtree/internal/lint/loader"
)

// TestTreeIsClean is the zero-findings gate: the same check `make
// lint` runs, wired into `go test` so the invariant suite cannot
// silently rot between lint runs. If this test fails, either fix the
// violation or (for a reviewed, justified exception) add a
// //lint:ignore with a reason and raise the Budget entry.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("tree-wide lint skipped in -short mode")
	}
	root := moduleRootT(t)
	pkgs, err := loader.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	res := Check(pkgs)
	for _, f := range res.Findings {
		t.Errorf("%s", f)
	}
	for _, e := range res.BudgetErrors {
		t.Errorf("%s", e)
	}
}

func moduleRootT(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}
