// Package leaktest fails a test binary that leaks goroutines, in the
// style of go.uber.org/goleak (reimplemented on the standard library
// because this module pins its dependency set). It is the runtime
// complement to the spawncheck analyzer: spawncheck proves every `go`
// statement has a visible shutdown path, and leaktest proves the
// paths are actually taken — a package whose tests return while a
// server session, prefetcher, or retry loop is still running fails
// at exit.
//
// Adopt it per package with one line:
//
//	func TestMain(m *testing.M) { leaktest.VerifyTestMain(m) }
package leaktest

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"
)

// maxWait bounds how long VerifyTestMain waits for goroutines wound
// down by deferred cleanup (connection closes, context cancels) to
// actually exit before declaring them leaked.
const maxWait = 5 * time.Second

// Runner is the subset of *testing.M VerifyTestMain needs; taking the
// interface keeps the package importable outside tests.
type Runner interface{ Run() int }

// VerifyTestMain runs the package's tests and then fails the binary
// if goroutines beyond the test harness's own survive. Use it as the
// body of TestMain.
func VerifyTestMain(m Runner) {
	code := m.Run()
	if code == 0 {
		if leaked := Check(maxWait); leaked != "" {
			fmt.Fprintf(os.Stderr, "leaktest: leaked goroutines after tests passed:\n\n%s\n", leaked)
			code = 1
		}
	}
	os.Exit(code)
}

// Check polls until no unexpected goroutines remain or wait elapses,
// and returns the offending stacks ("" when clean). Polling, rather
// than a single snapshot, absorbs the scheduling delay between a
// test's cleanup (ctx cancel, conn close) and the goroutines it
// releases actually exiting.
func Check(wait time.Duration) string {
	deadline := time.Now().Add(wait)
	backoff := time.Millisecond
	for {
		leaked := leakedStacks()
		if len(leaked) == 0 {
			return ""
		}
		if time.Now().After(deadline) {
			sort.Strings(leaked)
			return strings.Join(leaked, "\n\n")
		}
		time.Sleep(backoff)
		if backoff < 100*time.Millisecond {
			backoff *= 2
		}
	}
}

// expectedFragments mark goroutines that belong to the runtime or the
// testing harness; a stack containing any of them is not a leak.
var expectedFragments = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).",
	"testing.runTests",
	"leaktest.Check(", // the goroutine taking this snapshot
	"runtime.goexit0",
	"signal.signal_recv",
	"os/signal.loop",
	"runtime.ensureSigM",
	"runtime.ReadTrace",
	"(*genericWriteTo)", // net.Pipe internals draining on close
}

// leakedStacks snapshots all goroutine stacks and filters the
// expected ones.
func leakedStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var leaked []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" || isExpected(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

func isExpected(stack string) bool {
	for _, frag := range expectedFragments {
		if strings.Contains(stack, frag) {
			return true
		}
	}
	return false
}
