package lint

import (
	"go/ast"

	"drugtree/internal/lint/analysis"
)

// SnapCheck enforces the snapshot-handle discipline behind the MVCC
// store's garbage collector: a pinned version is only reclaimable
// after its handle is released, so every PinSnapshot() acquisition
// must have a visible release or ownership-transfer path. For each
// `h := x.PinSnapshot()` the statements after it in the same block
// must reach, before any early return, one of:
//
//   - `defer h.Release()` — directly or inside a deferred closure
//   - a top-level `h.Release()` call (the pin/read/release idiom)
//   - an ownership transfer: h returned, passed as a call argument,
//     aliased/stored into another value, sent on a channel, or
//     captured by a closure — the receiver owns the release
//
// A `return` statement (or a branch containing one with no Release of
// h inside it) encountered first is a leak-on-early-return; falling
// off the end of the block without any of the above is a plain leak.
// A PinSnapshot whose result is discarded pins a version nothing can
// ever unpin and is always wrong.
var SnapCheck = &analysis.Analyzer{
	Name: "snapcheck",
	Doc: "every PinSnapshot() needs a release path: defer h.Release(), " +
		"an unconditional release, or an ownership transfer",
	Run: runSnapCheck,
}

func runSnapCheck(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			checkSnapBlock(pass, block)
			return true
		})
	}
	return nil, nil
}

// checkSnapBlock scans one block for pin sites and verifies each has a
// release path among the statements that follow it in this block.
func checkSnapBlock(pass *analysis.Pass, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isPinCall(call) {
				pass.Reportf(s.Pos(),
					"snapshot pinned and discarded; assign the handle and release it")
			}
		case *ast.AssignStmt:
			name, ok := pinAssignTarget(s)
			if !ok {
				continue
			}
			if name == "_" {
				pass.Reportf(s.Pos(),
					"snapshot pinned and discarded; assign the handle and release it")
				continue
			}
			checkSnapRelease(pass, s, name, block.List[i+1:])
		}
	}
}

// pinAssignTarget matches `h := x.PinSnapshot()` / `h = x.PinSnapshot()`
// and returns the handle variable's name.
func pinAssignTarget(s *ast.AssignStmt) (string, bool) {
	if len(s.Rhs) != 1 || len(s.Lhs) != 1 {
		return "", false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || !isPinCall(call) {
		return "", false
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

func isPinCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "PinSnapshot"
}

// checkSnapRelease walks the statements after a pin until it finds a
// release path or a leaking exit.
func checkSnapRelease(pass *analysis.Pass, pin *ast.AssignStmt, h string, rest []ast.Stmt) {
	for _, stmt := range rest {
		switch s := stmt.(type) {
		case *ast.DeferStmt:
			if deferReleases(s, h) {
				return
			}
		case *ast.ExprStmt:
			if isReleaseCall(s.X, h) {
				return
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if transfersHandle(r, h) {
					return // ownership transfers to the caller
				}
			}
			pass.Reportf(pin.Pos(),
				"snapshot %s may leak: return before %s.Release(); defer the release right after pinning", h, h)
			return
		}
		if stmtTransfersOwnership(stmt, h) {
			return
		}
		if stmtReturnsWithout(stmt, h) {
			pass.Reportf(pin.Pos(),
				"snapshot %s may leak on an early return; defer %s.Release() right after pinning", h, h)
			return
		}
	}
	pass.Reportf(pin.Pos(),
		"snapshot %s is never released; call %s.Release() or defer it", h, h)
}

// deferReleases matches `defer h.Release()` and deferred closures that
// release h in their body.
func deferReleases(d *ast.DeferStmt, h string) bool {
	if isReleaseCall(d.Call, h) {
		return true
	}
	if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
		found := false
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isReleaseCall(call, h) {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

// isReleaseCall matches the expression `h.Release()`.
func isReleaseCall(e ast.Expr, h string) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == h
}

// stmtTransfersOwnership reports whether stmt hands the handle to
// another owner: as a call argument, an alias or stored value, a
// channel send, or a closure capture.
func stmtTransfersOwnership(stmt ast.Stmt, h string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			for _, a := range x.Args {
				if transfersHandle(a, h) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				if id, ok := r.(*ast.Ident); ok && id.Name == h {
					found = true
				}
			}
		case *ast.SendStmt:
			if transfersHandle(x.Value, h) {
				found = true
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if transfersHandle(el, h) {
					found = true
				}
			}
		case *ast.FuncLit:
			// A closure capturing h takes over its lifetime (the defer-
			// closure form is recognized before we get here).
			ast.Inspect(x.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && id.Name == h {
					found = true
				}
				return !found
			})
			return false
		}
		return !found
	})
	return found
}

// stmtReturnsWithout reports whether stmt contains a return on a path
// with no Release of h inside the same statement — the leak-on-early-
// return shape (`if err != nil { return err }` between pin and
// release). Returns inside nested closures are that closure's exits,
// not this function's, and are ignored.
func stmtReturnsWithout(stmt ast.Stmt, h string) bool {
	hasReturn, hasRelease := false, false
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			hasReturn = true
		case *ast.CallExpr:
			if isReleaseCall(x, h) {
				hasRelease = true
			}
		}
		return true
	})
	return hasReturn && !hasRelease
}

// transfersHandle reports whether evaluating e hands the handle
// *itself* to a new owner: the bare identifier, the handle passed as
// a call argument, stored in a composite literal, or captured by a
// closure. A value merely *derived from* the handle — `h.Version()`,
// `int(h.Version())` — does not transfer it: the receiver position of
// a method call is the handle being used, not given away.
func transfersHandle(e ast.Expr, h string) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name == h
	case *ast.ParenExpr:
		return transfersHandle(x.X, h)
	case *ast.UnaryExpr:
		return transfersHandle(x.X, h)
	case *ast.StarExpr:
		return transfersHandle(x.X, h)
	case *ast.KeyValueExpr:
		return transfersHandle(x.Value, h)
	case *ast.CallExpr:
		for _, a := range x.Args {
			if transfersHandle(a, h) {
				return true
			}
		}
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if transfersHandle(el, h) {
				return true
			}
		}
	case *ast.FuncLit:
		return nodeMentions(x.Body, h) // closure capture
	}
	return false
}

// nodeMentions reports whether the identifier h appears anywhere in n.
func nodeMentions(n ast.Node, h string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && id.Name == h {
			found = true
		}
		return !found
	})
	return found
}
