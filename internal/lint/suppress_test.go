package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"drugtree/internal/lint/loader"
)

func loadFixture(t *testing.T, rel, path string) *loader.Package {
	t.Helper()
	fset := token.NewFileSet()
	pkg, err := loader.LoadDir(fset, filepath.Join("testdata", filepath.FromSlash(rel)), path)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// The query fixture carries two clockcheck violations, one suppressed
// in standalone form and one trailing. Within budget the tree is
// clean and both suppressions are counted.
func TestSuppressionWithinBudget(t *testing.T) {
	pkg := loadFixture(t, "suppress/src/query", "query")
	res := CheckBudget([]*loader.Package{pkg}, map[string]int{"clockcheck": 2})
	if !res.OK() {
		t.Fatalf("expected clean run, got findings=%v budget errors=%v", res.Findings, res.BudgetErrors)
	}
	if got := res.Suppressed["clockcheck"]; got != 2 {
		t.Fatalf("suppressed clockcheck = %d, want 2", got)
	}
}

// The same fixture over budget: the suppressions still silence the
// findings, but the run fails with a budget error naming the knob.
func TestSuppressionBudgetExceeded(t *testing.T) {
	pkg := loadFixture(t, "suppress/src/query", "query")
	res := CheckBudget([]*loader.Package{pkg}, map[string]int{"clockcheck": 1})
	if res.OK() {
		t.Fatal("expected a budget error")
	}
	if len(res.Findings) != 0 {
		t.Fatalf("suppressions should still apply, got findings %v", res.Findings)
	}
	if len(res.BudgetErrors) != 1 || !strings.Contains(res.BudgetErrors[0], "budget is 1") {
		t.Fatalf("budget errors = %v, want one mentioning the cap", res.BudgetErrors)
	}
}

// Malformed directives — missing reason, unknown analyzer, wrong
// shape — are errors, not silent no-ops.
func TestMalformedSuppressions(t *testing.T) {
	pkg := loadFixture(t, "suppress/src/badsup", "badsup")
	res := CheckBudget([]*loader.Package{pkg}, Budget)
	if res.OK() {
		t.Fatal("expected suppression errors")
	}
	wantFragments := []string{"gives no reason", "unknown analyzer", "malformed suppression"}
	if len(res.BudgetErrors) != len(wantFragments) {
		t.Fatalf("budget errors = %v, want %d", res.BudgetErrors, len(wantFragments))
	}
	joined := strings.Join(res.BudgetErrors, "\n")
	for _, frag := range wantFragments {
		if !strings.Contains(joined, frag) {
			t.Errorf("budget errors missing %q:\n%s", frag, joined)
		}
	}
}

// Every analyzer must have an explicit budget entry: a missing key
// reads as zero at enforcement time, which is safe, but an explicit
// ledger keeps the policy reviewable in one place.
func TestBudgetCoversEveryAnalyzer(t *testing.T) {
	for _, a := range All() {
		if _, ok := Budget[a.Name]; !ok {
			t.Errorf("Budget has no entry for %s", a.Name)
		}
	}
}

// A budget entry naming no known analyzer is a config bug — a typo
// there would silently grant zero-or-infinite budget to nothing — so
// the run fails loudly instead of ignoring the key.
func TestUnknownBudgetKeyRejected(t *testing.T) {
	pkg := loadFixture(t, "suppress/src/query", "query")
	budget := map[string]int{"clockcheck": 2, "clokcheck": 1} // note the typo
	res := CheckBudget([]*loader.Package{pkg}, budget)
	if res.OK() {
		t.Fatal("budget with an unknown key passed")
	}
	found := false
	for _, e := range res.BudgetErrors {
		if strings.Contains(e, `unknown analyzer "clokcheck"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("budget errors %v do not name the unknown key", res.BudgetErrors)
	}
}

// Findings come out in one total order — file, then line, then
// column, then analyzer — and identically on every run, so a CI log
// diff is a real change and never map-iteration noise. The check runs
// two fixture packages (different analyzers, multiple findings per
// file) through the suite twice with everything unsuppressed.
func TestFindingOrderDeterministic(t *testing.T) {
	run := func() []string {
		pkgs := []*loader.Package{
			loadFixture(t, "sendcheck/src/sends", "sends"),
			loadFixture(t, "atomiccheck/src/atomics", "atomics"),
		}
		res := CheckBudget(pkgs, Budget)
		out := make([]string, len(res.Findings))
		for i, f := range res.Findings {
			out[i] = f.String()
		}
		return out
	}
	first := run()
	if len(first) < 4 {
		t.Fatalf("fixtures produced %d findings, want several to order: %v", len(first), first)
	}
	second := run()
	if strings.Join(first, "\n") != strings.Join(second, "\n") {
		t.Fatalf("finding order changed between runs:\n%s\n--- vs ---\n%s",
			strings.Join(first, "\n"), strings.Join(second, "\n"))
	}
	// And the order is the documented one, not merely stable.
	pkgs := []*loader.Package{
		loadFixture(t, "sendcheck/src/sends", "sends"),
		loadFixture(t, "atomiccheck/src/atomics", "atomics"),
	}
	res := CheckBudget(pkgs, Budget)
	for i := 1; i < len(res.Findings); i++ {
		a, b := res.Findings[i-1], res.Findings[i]
		ka := []string{a.Pos.Filename, pad(a.Pos.Line), pad(a.Pos.Column), a.Analyzer}
		kb := []string{b.Pos.Filename, pad(b.Pos.Line), pad(b.Pos.Column), b.Analyzer}
		if strings.Join(ka, "\x00") > strings.Join(kb, "\x00") {
			t.Fatalf("findings out of order at %d: %v before %v", i, a, b)
		}
	}
}

func pad(n int) string { return fmt.Sprintf("%08d", n) }
