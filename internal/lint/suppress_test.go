package lint

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"drugtree/internal/lint/loader"
)

func loadFixture(t *testing.T, rel, path string) *loader.Package {
	t.Helper()
	fset := token.NewFileSet()
	pkg, err := loader.LoadDir(fset, filepath.Join("testdata", filepath.FromSlash(rel)), path)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// The query fixture carries two clockcheck violations, one suppressed
// in standalone form and one trailing. Within budget the tree is
// clean and both suppressions are counted.
func TestSuppressionWithinBudget(t *testing.T) {
	pkg := loadFixture(t, "suppress/src/query", "query")
	res := CheckBudget([]*loader.Package{pkg}, map[string]int{"clockcheck": 2})
	if !res.OK() {
		t.Fatalf("expected clean run, got findings=%v budget errors=%v", res.Findings, res.BudgetErrors)
	}
	if got := res.Suppressed["clockcheck"]; got != 2 {
		t.Fatalf("suppressed clockcheck = %d, want 2", got)
	}
}

// The same fixture over budget: the suppressions still silence the
// findings, but the run fails with a budget error naming the knob.
func TestSuppressionBudgetExceeded(t *testing.T) {
	pkg := loadFixture(t, "suppress/src/query", "query")
	res := CheckBudget([]*loader.Package{pkg}, map[string]int{"clockcheck": 1})
	if res.OK() {
		t.Fatal("expected a budget error")
	}
	if len(res.Findings) != 0 {
		t.Fatalf("suppressions should still apply, got findings %v", res.Findings)
	}
	if len(res.BudgetErrors) != 1 || !strings.Contains(res.BudgetErrors[0], "budget is 1") {
		t.Fatalf("budget errors = %v, want one mentioning the cap", res.BudgetErrors)
	}
}

// Malformed directives — missing reason, unknown analyzer, wrong
// shape — are errors, not silent no-ops.
func TestMalformedSuppressions(t *testing.T) {
	pkg := loadFixture(t, "suppress/src/badsup", "badsup")
	res := CheckBudget([]*loader.Package{pkg}, Budget)
	if res.OK() {
		t.Fatal("expected suppression errors")
	}
	wantFragments := []string{"gives no reason", "unknown analyzer", "malformed suppression"}
	if len(res.BudgetErrors) != len(wantFragments) {
		t.Fatalf("budget errors = %v, want %d", res.BudgetErrors, len(wantFragments))
	}
	joined := strings.Join(res.BudgetErrors, "\n")
	for _, frag := range wantFragments {
		if !strings.Contains(joined, frag) {
			t.Errorf("budget errors missing %q:\n%s", frag, joined)
		}
	}
}

// Every analyzer must have an explicit budget entry: a missing key
// reads as zero at enforcement time, which is safe, but an explicit
// ledger keeps the policy reviewable in one place.
func TestBudgetCoversEveryAnalyzer(t *testing.T) {
	for _, a := range All() {
		if _, ok := Budget[a.Name]; !ok {
			t.Errorf("Budget has no entry for %s", a.Name)
		}
	}
}
