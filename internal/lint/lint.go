// Package lint is the drugtree static-analysis suite: eleven
// analyzers that machine-check the invariants the system's
// correctness rests on, from the intra-function discipline PR 1/PR 2
// introduced (clock injection, context threading, lock/blocking
// hygiene, goroutine shutdown, %w wrapping) to the distributed
// invariants of the sharded, replicated engine (PRs 6–7): a
// cross-package lock-order contract over shard.Coordinator →
// replica.Set → store.DB → admission, errors.Is-only handling of
// wrapped sentinels like shard.ErrShardUnavailable, atomic-everywhere
// access to seq/lag counters, leak-proof channel operations inside
// spawned goroutines, the durability seam of the crash-safe I/O layer
// (fscheck: persistence packages do file I/O through vfs.FS, never
// raw os.*, so the T13 crash-point torture harness sees every byte
// that matters), and the MVCC snapshot lifecycle (snapcheck: every
// PinSnapshot gets a Release on all paths, so pinned versions cannot
// leak and block the version GC).
//
// Seven analyzers (clockcheck, ctxcheck, fscheck, lockcheck,
// snapcheck, spawncheck, wrapcheck) are intra-function and purely
// syntactic. The four added for the distributed layer (lockorder,
// errcmp, atomiccheck, sendcheck) are fact-propagating: a collection
// phase
// runs every analyzer's Collect hook over every package and merges
// the exported per-function facts ("acquires mu", "blocks on a
// channel", "wraps sentinel X", "field f is atomic") into one table,
// so the analysis phase can follow a call from internal/shard into
// internal/replica and internal/store and reason about what it
// acquires or blocks on across the package boundary.
//
// Each analyzer is documented on its own file; Check runs them all
// over a set of loaded packages, applies `//lint:ignore` suppressions,
// and enforces the suppression budget so the escape hatch cannot
// silently grow.
package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"

	"drugtree/internal/lint/analysis"
	"drugtree/internal/lint/loader"
)

// All returns the suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		AtomicCheck,
		ClockCheck,
		CtxCheck,
		ErrCmp,
		FSCheck,
		LockCheck,
		LockOrder,
		SendCheck,
		SnapCheck,
		SpawnCheck,
		WrapCheck,
	}
}

// Budget caps how many //lint:ignore suppressions each analyzer may
// carry across the whole tree. A suppression documents a reviewed,
// justified exception (the comment must say why); the budget keeps
// the count from creeping up unreviewed. Raising a number here is a
// reviewable act. Every analyzer in All() must have an entry, and no
// entry may name an unknown analyzer — CheckBudget enforces both.
var Budget = map[string]int{
	// The mobile server intentionally detaches background prefetch
	// from the session context (it must outlive the interaction that
	// triggered it).
	"ctxcheck": 1,
	// Three deliberate fsyncs under a lock: store.DB.Checkpoint syncs
	// under db.mu (the snapshot must be a frozen point-in-time image),
	// walWriter.Reset syncs its truncation under the writer mutex (no
	// post-checkpoint append may land before the truncation is
	// durable), and walWriter.syncTo holds syncMu across the group-
	// commit fsync (that hold is the ticket concurrent committers
	// piggyback on).
	"lockcheck": 3,
	// replica.Set.Ship/Promote hold Set.mu across store WAL scans by
	// design (the mutex quiesces leader writes so a follower's image
	// is consistent) and stay clean here: the store calls acquire
	// db.mu strictly below Set.mu per the documented hierarchy, and
	// lockorder's blocking rule is channel ops and Wait, not disk I/O.
	"lockorder":   0,
	"atomiccheck": 0,
	"clockcheck":  0,
	"errcmp":      0,
	"fscheck":     0,
	"sendcheck":   0,
	"snapcheck":   0,
	"spawncheck":  0,
	"wrapcheck":   0,
}

// Finding is one post-suppression diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [drugtree/%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Result aggregates one Check run.
type Result struct {
	Findings []Finding
	// Suppressed counts consumed suppressions per analyzer.
	Suppressed map[string]int
	// BudgetErrors reports analyzers whose suppression count exceeds
	// Budget, malformed suppression comments, and budget entries that
	// name no known analyzer.
	BudgetErrors []string
}

// OK reports whether the tree is clean: no findings and the
// suppression budget holds.
func (r *Result) OK() bool { return len(r.Findings) == 0 && len(r.BudgetErrors) == 0 }

// Check runs every analyzer over pkgs with the default budget.
func Check(pkgs []*loader.Package) *Result { return CheckBudget(pkgs, Budget) }

// CollectFacts runs the collection phase: every analyzer's Collect
// hook over every package, merged into one FactSet. The vet driver
// calls it directly so per-package invocations can ship facts through
// .vetx files; CheckBudget calls it as phase one of a whole-tree run.
// Collection failures surface as error strings (they fail the run
// like findings) rather than aborting other analyzers.
func CollectFacts(pkgs []*loader.Package) (analysis.FactSet, []string) {
	facts := make(analysis.FactSet)
	var errs []string
	for _, pkg := range pkgs {
		for _, a := range All() {
			if a.Collect == nil {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Filenames: pkg.Filenames,
				PkgPath:   pkg.Path,
			}
			kv, err := a.Collect(pass)
			if err != nil {
				errs = append(errs, fmt.Sprintf("%s: fact collection failed on %s: %v", a.Name, pkg.Path, err))
				continue
			}
			facts.Merge(analysis.FactSet{a.Name: kv})
		}
	}
	return facts, errs
}

// CheckBudget runs every analyzer over pkgs, filtering suppressed
// diagnostics and enforcing the given per-analyzer suppression caps.
// The run is two-phase: fact collection over every package first,
// then analysis with the merged cross-package fact table.
func CheckBudget(pkgs []*loader.Package, budget map[string]int) *Result {
	facts, errs := CollectFacts(pkgs)
	return checkWithFacts(pkgs, budget, facts, errs)
}

// CheckWithFacts runs the analysis phase over pkgs against an
// externally assembled fact table (the vet driver's path: facts for
// dependency packages arrive through .vetx files, already merged with
// this package's own Collect output).
func CheckWithFacts(pkgs []*loader.Package, budget map[string]int, facts analysis.FactSet) *Result {
	return checkWithFacts(pkgs, budget, facts, nil)
}

func checkWithFacts(pkgs []*loader.Package, budget map[string]int, facts analysis.FactSet, preErrors []string) *Result {
	res := &Result{Suppressed: make(map[string]int)}
	res.BudgetErrors = append(res.BudgetErrors, preErrors...)
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for name := range budget {
		if !known[name] {
			res.BudgetErrors = append(res.BudgetErrors, fmt.Sprintf(
				"budget names unknown analyzer %q (internal/lint/lint.go Budget)", name))
		}
	}
	for _, pkg := range pkgs {
		sup, malformed := suppressions(pkg)
		res.BudgetErrors = append(res.BudgetErrors, malformed...)
		for _, a := range All() {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Filenames: pkg.Filenames,
				PkgPath:   pkg.Path,
				Facts:     facts[a.Name],
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if sup.covers(name, pos) {
					res.Suppressed[name]++
					return
				}
				res.Findings = append(res.Findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				res.BudgetErrors = append(res.BudgetErrors,
					fmt.Sprintf("%s: analyzer failed on %s: %v", name, pkg.Path, err))
			}
		}
	}
	for name, used := range res.Suppressed {
		if used > budget[name] {
			res.BudgetErrors = append(res.BudgetErrors, fmt.Sprintf(
				"drugtree/%s: %d suppressions in tree, budget is %d (internal/lint/lint.go Budget)",
				name, used, budget[name]))
		}
	}
	// Findings sort by file, then line, then column, then analyzer:
	// total order, so two findings on one line cannot flip between
	// runs and CI diffs stay stable.
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	sort.Strings(res.BudgetErrors)
	return res
}

// suppressionRE matches `//lint:ignore drugtree/<analyzer> <reason>`.
var suppressionRE = regexp.MustCompile(`^//lint:ignore\s+drugtree/([a-z]+)\s*(.*)$`)

// suppressionSet records which (file, line) pairs each analyzer is
// silenced on. A suppression comment covers its own line (trailing
// form) and the line below it (standalone form).
type suppressionSet map[string]map[int]bool // "analyzer\x00file" → lines

func (s suppressionSet) covers(analyzer string, pos token.Position) bool {
	return s[analyzer+"\x00"+pos.Filename][pos.Line]
}

// suppressions scans pkg's comments for //lint:ignore directives.
// Directives with no reason, or naming an unknown analyzer, are
// reported as malformed rather than honored.
func suppressions(pkg *loader.Package) (suppressionSet, []string) {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	set := make(suppressionSet)
	var malformed []string
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:ignore") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := suppressionRE.FindStringSubmatch(c.Text)
				switch {
				case m == nil:
					malformed = append(malformed, fmt.Sprintf(
						"%s:%d: malformed suppression %q (want //lint:ignore drugtree/<analyzer> reason)",
						pos.Filename, pos.Line, c.Text))
				case !known[m[1]]:
					malformed = append(malformed, fmt.Sprintf(
						"%s:%d: suppression names unknown analyzer %q", pos.Filename, pos.Line, m[1]))
				case strings.TrimSpace(m[2]) == "":
					malformed = append(malformed, fmt.Sprintf(
						"%s:%d: suppression of drugtree/%s gives no reason", pos.Filename, pos.Line, m[1]))
				default:
					key := m[1] + "\x00" + pos.Filename
					if set[key] == nil {
						set[key] = make(map[int]bool)
					}
					set[key][pos.Line] = true
					set[key][pos.Line+1] = true
				}
			}
		}
	}
	return set, malformed
}

// pathSegment reports whether any slash-separated segment of path
// equals seg — the package-scoping primitive shared by the analyzers
// (it matches both real paths like drugtree/internal/query and bare
// fixture paths like "query").
func pathSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// anySegment reports whether path contains any of the segments.
func anySegment(path string, segs []string) bool {
	for _, s := range segs {
		if pathSegment(path, s) {
			return true
		}
	}
	return false
}
