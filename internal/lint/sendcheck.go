package lint

import (
	"go/ast"
	"go/token"

	"drugtree/internal/lint/analysis"
)

// SendCheck polices channel operations inside spawned goroutines,
// the other half of the leak story spawncheck opens: spawncheck
// demands that a goroutine *have* a shutdown path, sendcheck demands
// that its channel ops cannot wedge it past that path. An unguarded
// `results <- r` in a worker blocks forever once the consumer stops
// draining (it returned early on error, the client disconnected), and
// the goroutine — plus everything it pins — leaks. The accepted
// shapes, matching the idioms the scatter-gather and mobile layers
// use:
//
//   - the op is a case of a select that also has a ctx.Done()/signal
//     receive or a default clause (the op loses the race, the
//     goroutine still exits);
//   - a send to a channel provably buffered at the spawn site: a
//     visible `make(chan T, n)` with nonzero capacity in the
//     enclosing function, sized so the send cannot block (the
//     one-result-per-worker errc idiom);
//   - a receive from ctx.Done()/a done/stop/quit signal channel, or
//     from a time/clock call (After, Tick, Done — they fire);
//   - a range over a channel some visible close() releases.
//
// Everything else is a potential wedge and gets flagged.
var SendCheck = &analysis.Analyzer{
	Name: "sendcheck",
	Doc: "channel ops inside spawned goroutines must be select-guarded by ctx.Done()/default, " +
		"provably buffered, or released by a visible close — an unguarded op wedges the goroutine when its peer exits",
	Run: runSendCheck,
}

func runSendCheck(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		// Channels closed anywhere in this file. File scope (not
		// function scope) keeps producer-closes-in-helper idioms legal
		// without facts: the proof the reader would look for is on the
		// same page.
		closed := map[string]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			x, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fun, ok := x.Fun.(*ast.Ident); ok && fun.Name == "close" && len(x.Args) == 1 {
				if name, ok := chanIdent(x.Args[0]); ok {
					closed[name] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			// Buffered proof is function-scoped: the make and the
			// spawn sit together in the errc idiom, and a same-named
			// channel in a sibling function proves nothing.
			buffered := map[string]bool{}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if x, ok := n.(*ast.AssignStmt); ok {
					for i, rhs := range x.Rhs {
						if i >= len(x.Lhs) {
							break
						}
						if name, ok := chanIdent(x.Lhs[i]); ok && isBufferedMake(rhs) {
							buffered[name] = true
						}
					}
				}
				return true
			})
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				fl, ok := g.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true // go x.Method(...): body out of reach, spawncheck's beat
				}
				scanSendBody(pass, fl.Body, buffered, closed)
				return false // nested go statements are scanned by scanSendBody
			})
			return false
		})
	}
	return nil, nil
}

// chanIdent names a channel-valued expression: a bare identifier or
// the final selector of a field chain.
func chanIdent(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		return e.Sel.Name, true
	}
	return "", false
}

// isBufferedMake matches make(chan T, n) with a nonzero capacity
// expression.
func isBufferedMake(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "make" {
		return false
	}
	if _, ok := call.Args[0].(*ast.ChanType); !ok {
		return false
	}
	if lit, ok := call.Args[1].(*ast.BasicLit); ok && lit.Value == "0" {
		return false
	}
	return true
}

// guardedSelect reports whether sel has an escape case: a default
// clause or a receive from ctx.Done()/a signal channel.
func guardedSelect(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		comm, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if comm.Comm == nil {
			return true // default
		}
		if recv := commReceive(comm.Comm); recv != nil && isEscapeChannel(recv) {
			return true
		}
	}
	return false
}

// commReceive extracts the channel expression of a receive comm
// clause (`<-ch`, `v := <-ch`, `v, ok := <-ch`), or nil for sends.
func commReceive(s ast.Stmt) ast.Expr {
	var e ast.Expr
	switch s := s.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			e = s.Rhs[0]
		}
	}
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
		return ue.X
	}
	return nil
}

// isEscapeChannel reports whether receiving from e lets the goroutine
// exit: ctx.Done(), a done/stop/quit signal channel, or a firing
// timer-ish call.
func isEscapeChannel(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return isSignalName(e.Name)
	case *ast.SelectorExpr:
		return isSignalName(e.Sel.Name)
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Done", "After", "Tick", "Deadline", "Elapsed":
				return true
			}
		}
	}
	return false
}

// scanSendBody walks a spawned body flagging unguarded channel ops.
func scanSendBody(pass *analysis.Pass, body ast.Node, buffered, closed map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectStmt:
			guarded := guardedSelect(x)
			for _, c := range x.Body.List {
				comm, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if comm.Comm != nil && !guarded {
					checkChanOpStmt(pass, comm.Comm, buffered, closed)
				}
				for _, s := range comm.Body {
					scanSendBody(pass, s, buffered, closed)
				}
			}
			return false
		case *ast.SendStmt:
			checkSend(pass, x, buffered)
			return true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				checkReceive(pass, x, closed)
			}
		case *ast.RangeStmt:
			if name, ok := chanIdent(x.X); ok && looksChannel(name) && !closed[name] {
				pass.Reportf(x.Pos(),
					"goroutine ranges over %s with no visible close(%s); the loop never ends and the goroutine leaks",
					name, name)
			}
			for _, s := range x.Body.List {
				scanSendBody(pass, s, buffered, closed)
			}
			return false
		case *ast.GoStmt:
			if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
				scanSendBody(pass, fl.Body, buffered, closed)
			}
			return false
		}
		return true
	})
}

// checkChanOpStmt re-checks a comm clause of an unguarded select as
// if it were a bare op.
func checkChanOpStmt(pass *analysis.Pass, s ast.Stmt, buffered, closed map[string]bool) {
	if send, ok := s.(*ast.SendStmt); ok {
		checkSend(pass, send, buffered)
		return
	}
	if recv := commReceive(s); recv != nil {
		checkReceiveChan(pass, s.Pos(), recv, closed)
	}
}

func checkSend(pass *analysis.Pass, s *ast.SendStmt, buffered map[string]bool) {
	name, ok := chanIdent(s.Chan)
	if ok && buffered[name] {
		return
	}
	if !ok {
		name = analysis.ExprString(s.Chan)
	}
	pass.Reportf(s.Pos(),
		"unguarded send to %s in a goroutine wedges it if the receiver exits first; "+
			"select on it with ctx.Done() (or size the buffer for every send)", name)
}

func checkReceive(pass *analysis.Pass, ue *ast.UnaryExpr, closed map[string]bool) {
	checkReceiveChan(pass, ue.Pos(), ue.X, closed)
}

func checkReceiveChan(pass *analysis.Pass, pos token.Pos, ch ast.Expr, closed map[string]bool) {
	if isEscapeChannel(ch) {
		return
	}
	name, ok := chanIdent(ch)
	if ok && closed[name] {
		return
	}
	if _, isCall := ch.(*ast.CallExpr); isCall {
		return // clock.After-style sources fire on their own
	}
	if !ok {
		name = analysis.ExprString(ch)
	}
	pass.Reportf(pos,
		"unguarded receive from %s in a goroutine wedges it if the sender exits first; "+
			"select on it with ctx.Done() or close(%s) on every sender path", name, name)
}

// looksChannel is the naming heuristic for range targets: without
// types, `for v := range items` (a slice) and `for v := range ch` (a
// channel) are identical, so only channel-named identifiers are held
// to the close rule.
func looksChannel(name string) bool {
	return isSignalName(name) || name == "ch" || name == "c" ||
		len(name) > 2 && (name[len(name)-2:] == "ch" || name[len(name)-2:] == "Ch")
}
