package lint

import (
	"go/ast"

	"drugtree/internal/lint/analysis"
)

// vfsSeamPkgs are the packages whose every byte of file I/O must flow
// through the internal/vfs seam: the durable store (WAL, snapshot),
// the shard layer (partition dirs, MANIFEST), and the replica layer
// (snapshot seed, shipped-WAL apply). A raw os.* call in any of them
// is a persistence path the crash-point torture harness (T13) cannot
// see — a fault the FaultFS can never inject and a durability bug the
// matrix can never catch.
var vfsSeamPkgs = []string{"store", "shard", "replica"}

// fsForbiddenFuncs are the os package's filesystem entry points. Note
// what is NOT here: error predicates (os.IsNotExist), open-flag and
// permission constants (os.O_CREATE, os.FileMode), and process-level
// calls (os.Getenv) are all fine — the seam replaces I/O, not the
// standard library's vocabulary.
var fsForbiddenFuncs = []string{
	"Open", "OpenFile", "Create", "CreateTemp",
	"ReadFile", "WriteFile",
	"Remove", "RemoveAll", "Rename",
	"Mkdir", "MkdirAll", "MkdirTemp",
	"ReadDir", "Stat", "Lstat",
	"Truncate", "Chmod", "Chtimes", "Link", "Symlink",
}

// FSCheck enforces the vfs-seam invariant: packages on a persistence
// path do file I/O through an injected vfs.FS, never raw os.* calls,
// so every write, sync, and rename is visible to deterministic fault
// injection. Purely syntactic, like clockcheck: the fixture and the
// production tree are matched on call shape (os.<Func>(...)),
// honoring import aliasing.
var FSCheck = &analysis.Analyzer{
	Name: "fscheck",
	Doc: "forbid raw os file I/O (os.Open, os.Rename, ...) in store/shard/replica; " +
		"route it through the vfs.FS seam so crash-point fault injection covers every persistence path",
	Run: runFSCheck,
}

func runFSCheck(pass *analysis.Pass) (interface{}, error) {
	if !anySegment(pass.PkgPath, vfsSeamPkgs) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if _, ok := analysis.ImportName(f, "os"); !ok {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, ok := analysis.IsPkgCall(f, call, "os", fsForbiddenFuncs...); ok {
				pass.Reportf(call.Pos(),
					"os.%s bypasses the vfs seam in %s; do file I/O through the injected vfs.FS so FaultFS crash points cover it (see internal/vfs)",
					fn, pass.PkgPath)
			}
			return true
		})
	}
	return nil, nil
}
