package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"drugtree/internal/lint/analysis"
)

// ErrCmp enforces sentinel-error hygiene across wrap boundaries:
// once any package in the tree wraps errors with %w (and wrapcheck
// makes sure they all do), a raw `err == ErrX` / `err != ErrX`
// comparison is a latent bug — the sentinel arrives wrapped and the
// identity test silently fails. The same applies to type assertions
// and type switches against concrete error types. errors.Is and
// errors.As unwrap; == and .(T) do not.
//
// The cross-package evidence is a fact: the collection phase exports
// "wraps:<pkg>" for every package containing a fmt.Errorf call whose
// format string carries %w. The analysis phase flags:
//
//   - ==/!= against a project sentinel (an Err-prefixed identifier or
//     selector) or a curated stdlib sentinel (io.EOF,
//     io.ErrUnexpectedEOF, context.Canceled, context.DeadlineExceeded)
//     whenever any package in the fact table wraps;
//   - err.(*FooError) type assertions and `switch err.(type)` cases
//     naming *Error types, under the same condition.
//
// Comparisons inside methods named Is or As are exempt: that is the
// errors.Is/errors.As protocol being implemented, the one place raw
// identity is the point (shard.UnavailableError.Is is the house
// example).
var ErrCmp = &analysis.Analyzer{
	Name: "errcmp",
	Doc: "compare sentinel errors with errors.Is and match error types with errors.As; " +
		"== and type assertions fail once a call chain wraps with %w",
	Collect: collectErrCmp,
	Run:     runErrCmp,
}

// wrapsFactPrefix keys the per-package "wraps with %w" marker.
const wrapsFactPrefix = "wraps:"

// stdlibSentinels are stdlib errors routinely returned through
// drugtree call chains that wrap — comparing any of them raw is wrong
// everywhere in this tree.
var stdlibSentinels = map[string]bool{
	"io.EOF":                   true,
	"io.ErrUnexpectedEOF":      true,
	"io.ErrClosedPipe":         true,
	"context.Canceled":         true,
	"context.DeadlineExceeded": true,
	"net.ErrClosed":            true,
	"os.ErrNotExist":           true,
	"os.ErrExist":              true,
	"sql.ErrNoRows":            true,
}

func collectErrCmp(pass *analysis.Pass) (map[string]string, error) {
	facts := make(map[string]string)
	for _, f := range pass.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := analysis.IsPkgCall(file, call, "fmt", "Errorf"); !ok {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING &&
				strings.Contains(lit.Value, "%w") {
				facts[wrapsFactPrefix+pkgBase(pass.PkgPath)] = "1"
			}
			return true
		})
	}
	return facts, nil
}

// treeWraps reports whether any package's facts mark %w wrapping.
func treeWraps(facts map[string]string) bool {
	for k := range facts {
		if strings.HasPrefix(k, wrapsFactPrefix) {
			return true
		}
	}
	return false
}

// sentinelName renders e as a sentinel-error reference: an identifier
// or selector whose final name has the Err prefix ("ErrShardUnavailable",
// "shard.ErrTooStale"), or a curated stdlib sentinel. Empty when e is
// not sentinel-shaped.
func sentinelName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		if strings.HasPrefix(e.Name, "Err") && len(e.Name) > 3 {
			return e.Name
		}
	case *ast.SelectorExpr:
		x, ok := e.X.(*ast.Ident)
		if !ok || x.Obj != nil {
			return ""
		}
		full := x.Name + "." + e.Sel.Name
		if stdlibSentinels[full] {
			return full
		}
		if strings.HasPrefix(e.Sel.Name, "Err") && len(e.Sel.Name) > 3 {
			return full
		}
	}
	return ""
}

// errTypeName renders t as a concrete error-type reference
// (*QueryError, shard.UnavailableError) by the house convention that
// error types end in "Error". Empty otherwise.
func errTypeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return errTypeName(t.X)
	case *ast.Ident:
		if strings.HasSuffix(t.Name, "Error") {
			return t.Name
		}
	case *ast.SelectorExpr:
		if x, ok := t.X.(*ast.Ident); ok && strings.HasSuffix(t.Sel.Name, "Error") {
			return x.Name + "." + t.Sel.Name
		}
	}
	return ""
}

// errish reports whether e looks like an error value: an identifier
// or selector whose name is err-ish ("err", "werr", "lastErr", "e").
func errish(e ast.Expr) bool {
	name := ""
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	case *ast.CallExpr:
		// errors.Unwrap(err), r.Err() — a call yielding an error.
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			name = sel.Sel.Name
		}
	}
	l := strings.ToLower(name)
	return l == "err" || l == "e" || strings.HasSuffix(l, "err") || strings.HasSuffix(l, "error")
}

func runErrCmp(pass *analysis.Pass) (interface{}, error) {
	if !treeWraps(pass.Facts) {
		return nil, nil // no %w anywhere: raw identity still works
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fn.Recv != nil && (fn.Name.Name == "Is" || fn.Name.Name == "As") {
				return false // the errors.Is/As protocol implementation itself
			}
			if fn.Body == nil {
				return false
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.BinaryExpr:
					if x.Op != token.EQL && x.Op != token.NEQ {
						return true
					}
					name := sentinelName(x.Y)
					other := x.X
					if name == "" {
						name = sentinelName(x.X)
						other = x.Y
					}
					if name == "" || !errish(other) {
						return true
					}
					pass.Reportf(x.Pos(),
						"comparing error with %s %s: call chains wrap with %%w, so identity fails on a wrapped %s; use errors.Is(err, %s)",
						x.Op, name, name, name)
				case *ast.TypeAssertExpr:
					if x.Type == nil {
						return true // the `switch err.(type)` form, handled below
					}
					if t := errTypeName(x.Type); t != "" && errish(x.X) {
						pass.Reportf(x.Pos(),
							"type assertion to %s misses wrapped errors; use errors.As(err, &target)", t)
					}
				case *ast.TypeSwitchStmt:
					var operand ast.Expr
					switch a := x.Assign.(type) {
					case *ast.ExprStmt:
						if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
							operand = ta.X
						}
					case *ast.AssignStmt:
						if len(a.Rhs) == 1 {
							if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
								operand = ta.X
							}
						}
					}
					if operand == nil || !errish(operand) {
						return true
					}
					for _, c := range x.Body.List {
						cc, ok := c.(*ast.CaseClause)
						if !ok {
							continue
						}
						for _, t := range cc.List {
							if name := errTypeName(t); name != "" {
								pass.Reportf(t.Pos(),
									"type switch on an error matches %s only unwrapped; use errors.As(err, &target)", name)
							}
						}
					}
				}
				return true
			})
			return false
		})
	}
	return nil, nil
}
