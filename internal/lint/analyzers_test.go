package lint

import (
	"testing"

	"drugtree/internal/lint/analysistest"
)

// The golden tests below run each analyzer over its fixture tree and
// match diagnostics against the fixtures' `// want` comments — both
// directions: an unexpected diagnostic and an unmet expectation each
// fail the test.

func TestClockCheck(t *testing.T) {
	analysistest.Run(t, "testdata/clockcheck", ClockCheck,
		"experiments", "internal/netsim", "other")
}

func TestCtxCheck(t *testing.T) {
	analysistest.Run(t, "testdata/ctxcheck", CtxCheck,
		"source", "cmd/tool", "admission", "batch", "shard", "replica")
}

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, "testdata/lockcheck", LockCheck, "locks")
}

func TestSpawnCheck(t *testing.T) {
	analysistest.Run(t, "testdata/spawncheck", SpawnCheck, "spawn")
}

func TestWrapCheck(t *testing.T) {
	analysistest.Run(t, "testdata/wrapcheck", WrapCheck, "wrap")
}
