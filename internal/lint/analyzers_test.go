package lint

import (
	"testing"

	"drugtree/internal/lint/analysistest"
)

// The golden tests below run each analyzer over its fixture tree and
// match diagnostics against the fixtures' `// want` comments — both
// directions: an unexpected diagnostic and an unmet expectation each
// fail the test.

func TestAtomicCheck(t *testing.T) {
	analysistest.Run(t, "testdata/atomiccheck", AtomicCheck, "atomics", "atomreader")
}

func TestClockCheck(t *testing.T) {
	analysistest.Run(t, "testdata/clockcheck", ClockCheck,
		"experiments", "internal/netsim", "other")
}

func TestCtxCheck(t *testing.T) {
	analysistest.Run(t, "testdata/ctxcheck", CtxCheck,
		"source", "cmd/tool", "admission", "batch", "shard", "replica")
}

func TestErrCmp(t *testing.T) {
	analysistest.Run(t, "testdata/errcmp", ErrCmp, "errw")
}

func TestFSCheck(t *testing.T) {
	analysistest.Run(t, "testdata/fscheck", FSCheck, "store", "other")
}

// TestErrCmpNoWrapIsSilent analyzes the nowrap fixture alone: with no
// wraps: fact in its table, raw sentinel identity is legal and the
// package's == comparison goes unflagged. The identical syntax inside
// errw IS flagged — the diagnostic hinges on the cross-package fact,
// not the comparison's shape.
func TestErrCmpNoWrapIsSilent(t *testing.T) {
	analysistest.Run(t, "testdata/errcmp", ErrCmp, "nowrap")
}

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, "testdata/lockcheck", LockCheck, "locks")
}

// TestLockOrder runs the two fixture packages in one pass so the fact
// tables merge: the A.mu → C.mu edge exists only by following
// locka.A.One's call into lockb and back out through the Filler
// callback — neither package exhibits a cycle alone.
func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata/lockorder", LockOrder, "locka", "lockb")
}

func TestSendCheck(t *testing.T) {
	analysistest.Run(t, "testdata/sendcheck", SendCheck, "sends")
}

func TestSnapCheck(t *testing.T) {
	analysistest.Run(t, "testdata/snapcheck", SnapCheck, "snaps")
}

func TestSpawnCheck(t *testing.T) {
	analysistest.Run(t, "testdata/spawncheck", SpawnCheck, "spawn")
}

func TestWrapCheck(t *testing.T) {
	analysistest.Run(t, "testdata/wrapcheck", WrapCheck, "wrap")
}
