package lint

import (
	"go/ast"
	"strings"

	"drugtree/internal/lint/analysis"
)

// deterministicPkgs are the packages whose behavior must be
// reproducible under a netsim.VirtualClock: fault schedules, retry
// backoff, breaker cooldowns, experiment timings, and the mobile
// session all run on injected time so scripted timelines (T8) and
// latency measurements (T1–T7, F2–F4) are exact under test.
var deterministicPkgs = []string{
	"netsim", "source", "integrate", "experiments", "query", "mobile", "admission", "shard", "replica",
}

// wallClockShims are the only files in deterministic packages allowed
// to touch the real clock: the netsim wall-clock implementation
// behind the Clock interface, the real-mode link shaping (which by
// definition models time with time), and the mobile server's deadline
// base. Everything else must inject netsim.Clock.
var wallClockShims = []string{
	"internal/netsim/clock.go",
	"internal/netsim/netsim.go",
	"internal/netsim/conn.go",
	"internal/mobile/wallclock.go",
	// The admission limiter converts context.Context wall-time
	// deadlines into remaining budgets; that one read lives in a
	// dedicated shim.
	"internal/admission/wallclock.go",
}

// wallClockFuncs are the time package's wall-clock entry points.
// time.Duration arithmetic and constants remain free.
var wallClockFuncs = []string{
	"Now", "Sleep", "After", "AfterFunc", "NewTimer", "NewTicker", "Tick", "Since", "Until",
}

// ClockCheck enforces the clock-injection invariant from PR 2: code
// in deterministic packages must read and advance time through an
// injectable netsim.Clock, never the process wall clock, so that
// scripted fault timelines and latency measurements replay exactly.
var ClockCheck = &analysis.Analyzer{
	Name: "clockcheck",
	Doc: "forbid wall-clock calls (time.Now, time.Sleep, ...) in deterministic packages; " +
		"inject netsim.Clock so fault schedules and measurements replay under a virtual clock",
	Run: runClockCheck,
}

func runClockCheck(pass *analysis.Pass) (interface{}, error) {
	if !anySegment(pass.PkgPath, deterministicPkgs) {
		return nil, nil
	}
	for i, f := range pass.Files {
		if isWallClockShim(pass.Filenames[i]) {
			continue
		}
		if _, ok := analysis.ImportName(f, "time"); !ok {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, ok := analysis.IsPkgCall(f, call, "time", wallClockFuncs...); ok {
				pass.Reportf(call.Pos(),
					"time.%s in deterministic package %s; use an injected netsim.Clock (see internal/netsim/clock.go)",
					fn, pass.PkgPath)
			}
			return true
		})
	}
	return nil, nil
}

func isWallClockShim(filename string) bool {
	for _, shim := range wallClockShims {
		if strings.HasSuffix(filename, shim) {
			return true
		}
	}
	return false
}
