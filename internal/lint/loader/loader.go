// Package loader parses Go packages for the lint analyzers. The
// production path shells out to `go list -json` so package membership
// matches exactly what the build sees (build tags, ignored files,
// testdata exclusion); the test path loads a bare directory so
// analysistest fixtures need no go.mod scaffolding. Both paths skip
// _test.go files: the analyzers encode production invariants, and
// tests legitimately use wall clocks, context.Background, and
// short-lived goroutines.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed package.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the package directory on disk.
	Dir  string
	Fset *token.FileSet
	// Files and Filenames are parallel; Filenames are slash-separated
	// and relative to the load root when below it.
	Files     []*ast.File
	Filenames []string
}

// listEntry is the subset of `go list -json` output we consume.
type listEntry struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

// Load enumerates the packages matching patterns (as the go tool
// resolves them, so `./...` skips testdata/) rooted at dir, and
// parses each one's non-test files.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("loader: go list %s: %w\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	dec := json.NewDecoder(&out)
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %w", err)
		}
		pkg := &Package{Path: e.ImportPath, Dir: e.Dir, Fset: fset}
		for _, name := range e.GoFiles {
			full := filepath.Join(e.Dir, name)
			f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("loader: %w", err)
			}
			pkg.Files = append(pkg.Files, f)
			pkg.Filenames = append(pkg.Filenames, relTo(dir, full))
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses the non-test .go files directly under dir as a
// single package with the given import path. Used by analysistest
// and suppression tests over fixture trees.
func LoadDir(fset *token.FileSet, dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: %w", err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, filepath.ToSlash(full))
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	return pkg, nil
}

// relTo returns full relative to root in slash form when it sits
// below it, else full in slash form.
func relTo(root, full string) string {
	if rel, err := filepath.Rel(root, full); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(full)
}
