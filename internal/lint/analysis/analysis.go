// Package analysis is a self-contained, stdlib-only mirror of the
// golang.org/x/tools/go/analysis API surface that the drugtree-lint
// analyzers need. The build environment pins dependencies to the
// standard library, so rather than importing x/tools we reimplement
// the small slice of it we use: an Analyzer is a named syntactic
// check, a Pass hands it one parsed package, and diagnostics flow
// back through Pass.Report. Analyzers written against this package
// keep the upstream shape (Name/Doc/Run) so they could be ported to
// the real framework by swapping the import.
//
// The framework is deliberately syntactic: passes carry parsed files
// and per-file import tables but no go/types information. Every
// invariant the suite checks (clock injection, context threading,
// lock discipline, goroutine shutdown, error wrapping) is expressible
// against the AST plus import resolution, and skipping the type
// checker keeps the whole tree lintable in well under a second.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// comments (`//lint:ignore drugtree/<Name> reason`).
	Name string
	// Doc states the invariant the analyzer enforces.
	Doc string
	// Collect, when non-nil, runs over every package before any Run
	// call and returns this package's exported facts (keys scoped by
	// the analyzer, conventionally "<pkgpath>.<Recv>.<Func>"). The
	// driver merges all packages' facts and delivers the merged table
	// to every Run through Pass.Facts — the cross-package channel
	// lockorder uses to see what a call into another package acquires.
	Collect func(*Pass) (map[string]string, error)
	// Run applies the check to one package.
	Run func(*Pass) (interface{}, error)
}

// Pass is the unit of work handed to an Analyzer: one parsed package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	// Filenames is parallel to Files (slash-separated, relative to the
	// module root when loaded by the loader).
	Filenames []string
	// PkgPath is the package import path ("drugtree/internal/query").
	PkgPath string
	// Facts is the merged cross-package fact table for this analyzer
	// (every package's Collect output, including this package's own).
	// Nil for analyzers without a Collect hook.
	Facts map[string]string
	// Report receives each diagnostic.
	Report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// FileOf returns the *ast.File containing pos, with its filename.
func (p *Pass) FileOf(pos token.Pos) (*ast.File, string) {
	for i, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f, p.Filenames[i]
		}
	}
	return nil, ""
}

// ImportName returns the name under which file f refers to the
// package with the given import path, and whether it imports it at
// all. An unnamed import resolves to the path's last segment, which
// is correct for every stdlib package the analyzers look for.
func ImportName(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			switch imp.Name.Name {
			case "_", ".":
				return "", false // unusable as a qualifier
			}
			return imp.Name.Name, true
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p, true
	}
	return "", false
}

// IsPkgCall reports whether call invokes <pkgPath>.<fn> for one of
// fns, resolving the package qualifier through f's import table and
// rejecting identifiers shadowed by local declarations (parser object
// resolution marks those with a non-nil Obj). It returns the matched
// function name.
func IsPkgCall(f *ast.File, call *ast.CallExpr, pkgPath string, fns ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok || x.Obj != nil {
		return "", false
	}
	name, ok := ImportName(f, pkgPath)
	if !ok || x.Name != name {
		return "", false
	}
	for _, fn := range fns {
		if sel.Sel.Name == fn {
			return fn, true
		}
	}
	return "", false
}

// Preorder walks every file of the pass in depth-first order.
func (p *Pass) Preorder(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// Parents builds a child→parent map for one file, for checks that
// need to look outward from a node (e.g. "is this call inside a
// `ctx == nil` guard?").
func Parents(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// ExprString renders a small expression (identifiers and selector
// chains) as source text; other expression kinds render as a
// placeholder. It is used to key mutexes by their receiver chain
// ("c.link.mu") without a full printer.
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.StarExpr:
		return ExprString(e.X)
	case *ast.IndexExpr:
		return ExprString(e.X) + "[...]"
	case *ast.CallExpr:
		return ExprString(e.Fun) + "(...)"
	}
	return "<expr>"
}
