package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Facts is the cross-package side channel of the framework: during
// the collection phase each analyzer's Collect hook runs over every
// package and returns string facts under analyzer-chosen keys
// (conventionally "<pkgpath>.<Recv>.<Func>" for per-function facts).
// The driver merges every package's facts into one table per analyzer
// and hands the merged table to Run through Pass.Facts, so an
// analyzer inspecting internal/shard can reason about what a call
// into internal/replica acquires or blocks on.
//
// FactSet is the serialized form: analyzer name → key → value. Its
// encoding is stable (JSON with sorted keys) so a facts file produced
// for a dependency package under `go vet -vettool` is byte-identical
// across runs and safe to cache by content hash.
type FactSet map[string]map[string]string

// Merge folds other into fs, later values winning on key collisions
// (keys are package-scoped by convention, so collisions mean the same
// package was collected twice and the values agree).
func (fs FactSet) Merge(other FactSet) {
	for analyzer, kv := range other {
		dst := fs[analyzer]
		if dst == nil {
			dst = make(map[string]string, len(kv))
			fs[analyzer] = dst
		}
		for k, v := range kv {
			dst[k] = v
		}
	}
}

// Encode renders fs in the stable wire form. encoding/json sorts map
// keys, so equal fact sets encode byte-identically — the property the
// vet driver's content-addressed .vetx caching relies on.
func (fs FactSet) Encode() ([]byte, error) {
	// Normalize away empty inner maps so "no facts" has one encoding.
	clean := make(FactSet, len(fs))
	for a, kv := range fs {
		if len(kv) > 0 {
			clean[a] = kv
		}
	}
	return json.Marshal(clean)
}

// DecodeFacts parses a serialized fact set. Empty input (the facts
// file a facts-only vet invocation writes for stdlib dependencies)
// decodes as an empty set, not an error.
func DecodeFacts(data []byte) (FactSet, error) {
	fs := make(FactSet)
	if len(data) == 0 {
		return fs, nil
	}
	if err := json.Unmarshal(data, &fs); err != nil {
		return nil, fmt.Errorf("analysis: decoding facts: %w", err)
	}
	return fs, nil
}

// SortedKeys returns the keys of a fact table in stable order, for
// analyzers that must iterate facts deterministically (diagnostic
// order is part of the CI contract).
func SortedKeys(facts map[string]string) []string {
	keys := make([]string, 0, len(facts))
	for k := range facts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
