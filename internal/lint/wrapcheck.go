package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"drugtree/internal/lint/analysis"
)

// WrapCheck enforces the error-chain invariant the PR 2 resilience
// layer depends on: breaker and degradation logic classifies failures
// with errors.Is/errors.As, which only see through errors wrapped
// with %w (or a package sentinel). A fmt.Errorf that flattens an
// error value through %v or %s severs the chain at the package
// boundary, and a breaker downstream misclassifies the failure.
var WrapCheck = &analysis.Analyzer{
	Name: "wrapcheck",
	Doc: "errors crossing a package boundary must be wrapped with %w " +
		"(fmt.Errorf flattening an err through %v/%s breaks errors.Is for breaker logic)",
	Run: runWrapCheck,
}

func runWrapCheck(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if _, ok := analysis.ImportName(f, "fmt"); !ok {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			if _, ok := analysis.IsPkgCall(f, call, "fmt", "Errorf"); !ok {
				return true
			}
			format, ok := stringLit(call.Args[0])
			if !ok || strings.Contains(format, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				if isErrValue(arg) {
					pass.Reportf(call.Pos(),
						"fmt.Errorf flattens %s without %%w; wrap it so errors.Is/errors.As see the cause",
						analysis.ExprString(arg))
				}
			}
			return true
		})
	}
	return nil, nil
}

// stringLit extracts a constant string literal.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// isErrValue recognizes error-typed operands syntactically: the
// conventional identifiers (err, xErr, errX fields) and calls to
// <expr>.Error().
func isErrValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return isErrName(e.Name)
	case *ast.SelectorExpr:
		return isErrName(e.Sel.Name)
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Error" && len(e.Args) == 0
		}
	}
	return false
}

func isErrName(name string) bool {
	return name == "err" || strings.HasSuffix(name, "Err") || strings.HasSuffix(name, "err")
}
