package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"drugtree/internal/lint/analysis"
)

// LockOrder is the interprocedural half of the mutex discipline:
// where lockcheck polices one function body, lockorder follows calls
// across package boundaries through exported per-function facts. For
// every function it collects which lock classes it acquires (and
// which it holds at each acquisition and call site), which functions
// it calls, and whether it blocks (channel op, select without
// default, WaitGroup wait, or a known blocking call). The analysis
// phase merges every package's facts, closes acquisition and blocking
// over the call graph, and reports:
//
//   - lock-order cycles: acquiring (directly or via any call chain)
//     lock B while holding lock A when some chain also acquires A
//     while holding B — the two-thread deadlock shape. Re-entrant
//     acquisition (A while holding A) is the one-thread special case.
//   - blocking calls under a lock: calling a function whose
//     transitive closure performs a channel op or Wait while a mutex
//     is held.
//
// Lock identity is a class, not an instance: "replica.Set.mu" names
// the mu field of every replica.Set. Classes come from the receiver
// or parameter type when the lock expression roots there ("s.mu" in a
// *Set method), and are function-scoped for true locals (a local
// mutex cannot alias another function's). The documented hierarchy —
// shard.Coordinator → replica.Set → store.DB → admission.Limiter
// (DESIGN.md "Lock-order contract") — is whatever keeps this graph
// acyclic.
//
// Method calls whose receiver type the syntax cannot resolve match
// fact entries by method name, restricted to packages the caller
// imports (plus its own), and excluding the caller's own receiver
// type — field delegation like n.db.Close() must not self-match the
// enclosing type's Close and fabricate a re-entrancy cycle. Function
// literals are scanned as independent roots under uncallable keys:
// their acquisitions contribute edges, but a goroutine's locks are
// not held on its spawner's path.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "cross-package lock-acquisition graph must stay acyclic " +
		"(cycles are potential deadlocks), and no call chain may block on a channel or Wait while a mutex is held",
	Collect: collectLockOrder,
	Run:     runLockOrder,
}

// loFact is one function's exported lock behavior.
type loFact struct {
	// Recv is the receiver type class ("replica.Set"), empty for free
	// functions.
	Recv string `json:",omitempty"`
	// Acquires lists each lock acquisition with the locks held at it.
	Acquires []loAcq `json:",omitempty"`
	// Calls lists each call site with the locks held at it.
	Calls []loCall `json:",omitempty"`
	// Blocks marks a direct blocking operation in the function body.
	Blocks bool `json:",omitempty"`
}

type loAcq struct {
	Lock string
	Held []string `json:",omitempty"`
}

type loCall struct {
	// Name is the bare function/method name.
	Name string
	// Key is the exact fact key when the callee resolved
	// syntactically ("store.DB.Insert"); empty means match by Name.
	Key  string   `json:",omitempty"`
	Held []string `json:",omitempty"`
}

// loSite is one acquisition or call with its source position — the
// analysis phase's rescan output, never serialized.
type loSite struct {
	pos  token.Pos
	kind string // "acquire" or "call"
	acq  loAcq
	call loCall
	recv string // enclosing function's receiver class
}

// importsFactPrefix keys the per-package import list fact.
const importsFactPrefix = "imports:"

// ifaceFactPrefix marks interface type declarations.
const ifaceFactPrefix = "iface:"

func collectLockOrder(pass *analysis.Pass) (map[string]string, error) {
	facts := make(map[string]string)
	base := pkgBase(pass.PkgPath)
	var imports []string
	seen := map[string]bool{}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			b := pkgBase(strings.Trim(imp.Path.Value, `"`))
			if !seen[b] {
				seen[b] = true
				imports = append(imports, b)
			}
		}
	}
	sort.Strings(imports)
	facts[importsFactPrefix+base] = strings.Join(imports, ",")
	// Struct-shape links (shared with atomiccheck) let call receivers
	// like ix.tree.Insert or db.wal.Close resolve to exact fact keys
	// instead of falling back to bare-name matching.
	links := structLinks(pass)
	for k, v := range links {
		facts[k] = v
	}
	// Interface declarations: a call resolving to an interface method
	// dispatches to implementations supplied by the interface's
	// importers (the observer/callback shape cross-package deadlocks
	// ride in on), so the analysis phase needs to know which classes
	// are interfaces.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if ts, ok := n.(*ast.TypeSpec); ok {
				if _, isIface := ts.Type.(*ast.InterfaceType); isIface {
					facts[ifaceFactPrefix+base+"."+ts.Name.Name] = "1"
				}
			}
			return true
		})
	}
	scanLockOrderPkg(pass, links, func(key string, fact *loFact) {
		if len(fact.Acquires) == 0 && len(fact.Calls) == 0 && !fact.Blocks {
			return // nothing lock-relevant; keep the fact table lean
		}
		if b, err := json.Marshal(fact); err == nil {
			facts[key] = string(b)
		}
	}, nil)
	return facts, nil
}

// pkgBase returns the last slash segment of an import path.
func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// typeClass renders a receiver/parameter type expression as a lock
// class prefix: *replica.Set and replica.Set both become
// "replica.Set"; a bare *Set inside package replica does too.
func typeClass(base string, t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return typeClass(base, t.X)
	case *ast.Ident:
		return base + "." + t.Name
	case *ast.SelectorExpr:
		if x, ok := t.X.(*ast.Ident); ok {
			return x.Name + "." + t.Sel.Name
		}
	case *ast.IndexExpr: // generic instantiation
		return typeClass(base, t.X)
	}
	return ""
}

// loScope is the per-function naming context.
type loScope struct {
	base   string            // this package's base name
	fnKey  string            // fact key of the enclosing function
	recv   string            // receiver class, "" for free functions
	typeOf map[string]string // param/receiver ident → type class
	links  map[string]string // struct-shape link facts for chain resolution
	file   *ast.File
	emit   func(key string, fact *loFact) // receives nested-literal facts
	lits   *int                           // per-file counter for uncallable literal keys
}

// lockClass names the lock acquired by recvExpr (the receiver text of
// a Lock call, e.g. "s.mu" or "c.link.mu"). Rooted at a typed
// identifier it becomes "<class>.<tail>"; otherwise it is scoped to
// the enclosing function (a true local cannot alias another
// function's mutex).
func (sc *loScope) lockClass(recvExpr string) string {
	root, tail, _ := strings.Cut(recvExpr, ".")
	if cls, ok := sc.typeOf[root]; ok {
		if tail == "" {
			return cls
		}
		return cls + "." + tail
	}
	return sc.fnKey + ":" + recvExpr
}

// scanLockOrderPkg scans every function of the pass, emitting one
// fact per function (and per nested literal, under an uncallable
// key). When sink is non-nil every acquisition and call site is also
// appended to it with positions — the analysis phase's rescan.
func scanLockOrderPkg(pass *analysis.Pass, links map[string]string, emit func(string, *loFact), sink *[]loSite) {
	base := pkgBase(pass.PkgPath)
	for fi, f := range pass.Files {
		lits := 0
		file := f
		fileIdx := fi
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				if fl, isLit := n.(*ast.FuncLit); isLit {
					// Package-level literal (var initializer).
					lits++
					sc := newLoScope(base, file, fmt.Sprintf("%s.$f%d.lit%d", base, fileIdx, lits), "", nil, fl.Type, links, emit, &lits)
					scanLoFunc(sc, fl.Body, sink)
					return false
				}
				return true
			}
			recvClass := ""
			var recvNames []*ast.Ident
			if fn.Recv != nil && len(fn.Recv.List) == 1 {
				recvClass = typeClass(base, fn.Recv.List[0].Type)
				recvNames = fn.Recv.List[0].Names
			}
			key := base + ".." + fn.Name.Name
			if recvClass != "" {
				key = base + "." + recvClass[strings.LastIndex(recvClass, ".")+1:] + "." + fn.Name.Name
			}
			sc := newLoScope(base, file, key, recvClass, recvNames, fn.Type, links, emit, &lits)
			scanLoFunc(sc, fn.Body, sink)
			return false
		})
	}
}

func newLoScope(base string, file *ast.File, key, recvClass string, recvNames []*ast.Ident, ftype *ast.FuncType, links map[string]string, emit func(string, *loFact), lits *int) *loScope {
	sc := &loScope{base: base, fnKey: key, recv: recvClass, typeOf: map[string]string{}, links: links, file: file, emit: emit, lits: lits}
	for _, id := range recvNames {
		sc.typeOf[id.Name] = recvClass
	}
	if ftype != nil && ftype.Params != nil {
		for _, p := range ftype.Params.List {
			if cls := typeClass(base, p.Type); cls != "" {
				for _, id := range p.Names {
					sc.typeOf[id.Name] = cls
				}
			}
		}
	}
	return sc
}

// scanLoFunc walks one function body and emits its fact.
func scanLoFunc(sc *loScope, body *ast.BlockStmt, sink *[]loSite) {
	fact := &loFact{Recv: sc.recv}
	walkLockOrder(sc, fact, body.List, map[string]bool{}, sink)
	if sc.emit != nil {
		sc.emit(sc.fnKey, fact)
	}
}

// nestedLit scans a nested function literal as an independent root:
// empty held set, its own uncallable fact key (its acquisitions form
// edges, but calls never resolve to it, so its locks never count as
// acquired by the enclosing function — a goroutine's locks are not
// held on the spawner's path).
func (sc *loScope) nestedLit(fl *ast.FuncLit, sink *[]loSite) {
	if fl == nil {
		return
	}
	*sc.lits++
	sub := newLoScope(sc.base, sc.file, fmt.Sprintf("%s.lit%d", sc.fnKey, *sc.lits), sc.recv, nil, fl.Type, sc.links, sc.emit, sc.lits)
	// The literal closes over the enclosing scope's typed identifiers.
	for k, v := range sc.typeOf {
		sub.typeOf[k] = v
	}
	scanLoFunc(sub, fl.Body, sink)
}

func heldList(held map[string]bool) []string {
	if len(held) == 0 {
		return nil
	}
	out := make([]string, 0, len(held))
	for k := range held {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func cloneHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// walkLockOrder processes stmts in order, tracking held lock classes
// along the textual path with lockcheck's branch-cloning discipline.
func walkLockOrder(sc *loScope, fact *loFact, stmts []ast.Stmt, held map[string]bool, sink *[]loSite) {
	for _, stmt := range stmts {
		walkLockOrderStmt(sc, fact, stmt, held, sink)
	}
}

func walkLockOrderStmt(sc *loScope, fact *loFact, stmt ast.Stmt, held map[string]bool, sink *[]loSite) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if recv, op, ok := lockOp(s.X); ok {
			cls := sc.lockClass(recv)
			switch op {
			case "Lock", "RLock":
				acq := loAcq{Lock: cls, Held: heldList(held)}
				fact.Acquires = append(fact.Acquires, acq)
				if sink != nil {
					*sink = append(*sink, loSite{pos: s.Pos(), kind: "acquire", acq: acq, recv: sc.recv})
				}
				held[cls] = true
			case "Unlock", "RUnlock":
				delete(held, cls)
			}
			return
		}
		lockOrderExpr(sc, fact, s.X, held, sink)
	case *ast.DeferStmt:
		if _, op, ok := lockOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return // deferred release: the lock stays held on this path
		}
		lockOrderExpr(sc, fact, s.Call, held, sink)
	case *ast.SendStmt:
		fact.Blocks = true
		lockOrderExpr(sc, fact, s.Value, held, sink)
	case *ast.SelectStmt:
		blocking := true
		for _, c := range s.Body.List {
			if comm, ok := c.(*ast.CommClause); ok && comm.Comm == nil {
				blocking = false // default case: the select cannot block
			}
		}
		if blocking {
			fact.Blocks = true
		}
		for _, c := range s.Body.List {
			if comm, ok := c.(*ast.CommClause); ok {
				walkLockOrder(sc, fact, comm.Body, cloneHeld(held), sink)
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			walkLockOrderStmt(sc, fact, s.Init, held, sink)
		}
		lockOrderExpr(sc, fact, s.Cond, held, sink)
		walkLockOrder(sc, fact, s.Body.List, cloneHeld(held), sink)
		if s.Else != nil {
			walkLockOrderStmt(sc, fact, s.Else, cloneHeld(held), sink)
		}
	case *ast.BlockStmt:
		walkLockOrder(sc, fact, s.List, held, sink)
	case *ast.ForStmt:
		if s.Init != nil {
			walkLockOrderStmt(sc, fact, s.Init, held, sink)
		}
		lockOrderExpr(sc, fact, s.Cond, held, sink)
		walkLockOrder(sc, fact, s.Body.List, cloneHeld(held), sink)
	case *ast.RangeStmt:
		lockOrderExpr(sc, fact, s.X, held, sink)
		walkLockOrder(sc, fact, s.Body.List, cloneHeld(held), sink)
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkLockOrderStmt(sc, fact, s.Init, held, sink)
		}
		lockOrderExpr(sc, fact, s.Tag, held, sink)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLockOrder(sc, fact, cc.Body, cloneHeld(held), sink)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLockOrder(sc, fact, cc.Body, cloneHeld(held), sink)
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lockOrderExpr(sc, fact, e, held, sink)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lockOrderExpr(sc, fact, e, held, sink)
		}
	case *ast.GoStmt:
		// The goroutine runs off this path with no inherited locks;
		// its body is an independent root.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			sc.nestedLit(fl, sink)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lockOrderExpr(sc, fact, v, held, sink)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		walkLockOrderStmt(sc, fact, s.Stmt, held, sink)
	case *ast.IncDecStmt:
		lockOrderExpr(sc, fact, s.X, held, sink)
	}
}

// lockOrderExpr records call sites (with the current held set) and
// direct blocking operations inside expression e.
func lockOrderExpr(sc *loScope, fact *loFact, e ast.Expr, held map[string]bool, sink *[]loSite) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			sc.nestedLit(x, sink)
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				fact.Blocks = true
			}
		case *ast.CallExpr:
			name, key := resolveCall(sc, x)
			if name == "" {
				return true
			}
			if loWaitCalls[name] && !isOnceDo(x) {
				fact.Blocks = true
			}
			call := loCall{Name: name, Key: key, Held: heldList(held)}
			fact.Calls = append(fact.Calls, call)
			if sink != nil {
				*sink = append(*sink, loSite{pos: x.Pos(), kind: "call", call: call, recv: sc.recv})
			}
		}
		return true
	})
}

// loWaitCalls are the named operations lockorder treats as blocking
// when closing over the call graph: unbounded synchronization waits
// (sync.WaitGroup.Wait, sync.Cond.Wait) and open-ended request
// dispatch (client.Do). Channel operations are detected structurally.
// The broader lockBlockingCalls list (Sync, Fetch, Query, ...) is
// deliberately NOT reused here: bounded disk/network I/O under a lock
// is lockcheck's per-site concern, while lockorder hunts
// cross-function deadlock shapes — its contract is "channel op or
// Wait in the call chain" (see the Budget note in lint.go). Folding
// fsync into the closure would flag every WAL group-commit reachable
// under a coordinator or replica mutex, which is the durability
// design, not a deadlock.
var loWaitCalls = map[string]bool{"Wait": true, "Do": true}

// isOnceDo recognizes the sync.Once.Do shape — bounded one-time
// initialization, not the open-ended blocking the Do entry of
// lockBlockingCalls exists for (client.Do).
func isOnceDo(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Do" {
		return false
	}
	recv := analysis.ExprString(sel.X)
	last := recv[strings.LastIndex(recv, ".")+1:]
	return strings.HasSuffix(last, "once") || strings.HasSuffix(last, "Once")
}

// resolveCall names a call target. For pkg.Fn with an import-table
// qualifier, x.Method with a typed receiver identifier, or a receiver
// chain that resolves through the struct-shape links (db.wal.Close →
// store.walWriter.Close), the exact fact key is returned; otherwise
// only the bare name.
func resolveCall(sc *loScope, call *ast.CallExpr) (name, key string) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Obj != nil && fun.Obj.Kind != ast.Fun {
			return "", "" // a local func value; unresolvable
		}
		switch fun.Name {
		case "len", "cap", "append", "make", "new", "copy", "delete", "close",
			"panic", "recover", "print", "println", "min", "max",
			"string", "int", "int32", "int64", "uint32", "uint64", "float64", "byte", "rune", "bool", "error", "any":
			return "", "" // builtins and conversions carry no lock behavior
		}
		return fun.Name, sc.base + ".." + fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			if x.Obj == nil && imported(sc.file, x.Name) {
				// pkg.Fn form: exact cross-package key.
				return fun.Sel.Name, x.Name + ".." + fun.Sel.Name
			}
		}
		if chain := selChain(fun.X); chain != nil {
			if cls, ok := sc.resolveRecvChain(chain); ok {
				return fun.Sel.Name, cls + "." + fun.Sel.Name
			}
		}
		return fun.Sel.Name, ""
	}
	return "", ""
}

// resolveRecvChain resolves a receiver chain (["db","wal"]) to the
// class of its final value via the typed-identifier table and the
// struct-shape links. A miss at any step returns false — the caller
// falls back to bare-name matching.
func (sc *loScope) resolveRecvChain(chain []string) (string, bool) {
	cls, ok := sc.typeOf[chain[0]]
	if !ok {
		return "", false
	}
	for _, field := range chain[1:] {
		link, has := sc.links[linkFactPrefix+cls+"."+field]
		if !has {
			return "", false
		}
		cls = link[4:]
	}
	return cls, true
}

// imported reports whether name is an import qualifier of f.
func imported(f *ast.File, name string) bool {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if imp.Name != nil {
			if imp.Name.Name == name {
				return true
			}
			continue
		}
		if pkgBase(p) == name {
			return true
		}
	}
	return false
}

// ---- analysis phase ----

// loTable is the decoded global fact table.
type loTable struct {
	funcs     map[string]*loFact
	byName    map[string][]string // bare name → fact keys
	imports   map[string][]string // pkg base → imported bases
	importers map[string][]string // pkg base → bases that import it
	ifaces    map[string]bool     // interface classes
	links     map[string]string   // merged struct-shape links
}

func decodeLockOrderFacts(facts map[string]string) *loTable {
	t := &loTable{
		funcs: map[string]*loFact{}, byName: map[string][]string{},
		imports: map[string][]string{}, importers: map[string][]string{},
		ifaces: map[string]bool{}, links: map[string]string{},
	}
	for _, key := range analysis.SortedKeys(facts) {
		if strings.HasPrefix(key, importsFactPrefix) {
			base := strings.TrimPrefix(key, importsFactPrefix)
			if facts[key] != "" {
				t.imports[base] = strings.Split(facts[key], ",")
				for _, dep := range t.imports[base] {
					t.importers[dep] = append(t.importers[dep], base)
				}
			}
			continue
		}
		if strings.HasPrefix(key, ifaceFactPrefix) {
			t.ifaces[strings.TrimPrefix(key, ifaceFactPrefix)] = true
			continue
		}
		if strings.HasPrefix(key, linkFactPrefix) {
			t.links[key] = facts[key]
			continue
		}
		var f loFact
		if err := json.Unmarshal([]byte(facts[key]), &f); err != nil {
			continue
		}
		t.funcs[key] = &f
		if strings.Contains(key, ".lit") || strings.Contains(key, ".$f") {
			continue // uncallable literal roots: edges yes, call targets no
		}
		name := key[strings.LastIndex(key, ".")+1:]
		t.byName[name] = append(t.byName[name], key)
	}
	return t
}

// loLeafIfaces are interface classes whose implementations are I/O
// leaves by contract: the vfs seam's File/FS are implemented only by
// the os passthrough and the in-memory fault injector, neither of
// which calls back into the packages that use them. Dispatching a
// vfs.File.Close by name to every Close method in vfs's importers
// (store.DB.Close, ...) would fabricate re-entrancy cycles that no
// execution can take, so these classes are resolution dead ends —
// like a concrete foreign type. Direct fsync-under-lock at such call
// sites is still policed per-site by lockcheck.
var loLeafIfaces = map[string]bool{"vfs.File": true, "vfs.FS": true}

// candidates resolves one call fact to fact-table keys. An exact key
// matches directly. A key naming an interface method dispatches to
// same-named methods in packages that import the interface's package
// (implementations flow from importers — the callback shape). Bare
// names match every entry with that method name in the caller's
// package or its imports. Both name-based modes exclude the caller's
// own receiver type: field delegation like n.db.Close() must not
// self-match the enclosing type's Close and fabricate a re-entrancy
// cycle. (Exact keys are exempt — a resolved same-type call is real
// re-entrancy and must be seen.)
func (t *loTable) candidates(callerPkg, callerRecv string, c loCall) []string {
	if c.Key != "" {
		if _, ok := t.funcs[c.Key]; ok {
			return []string{c.Key}
		}
		cls := c.Key[:strings.LastIndex(c.Key, ".")]
		if !t.ifaces[cls] {
			return nil // a concrete foreign type (os.File etc.): dead end
		}
		if loLeafIfaces[cls] {
			return nil // an I/O-leaf interface: implementations never call up
		}
		ifacePkg := cls[:strings.Index(cls, ".")]
		scope := append([]string{ifacePkg}, t.importers[ifacePkg]...)
		return t.byNameIn(c.Name, callerRecv, scope)
	}
	scope := append([]string{callerPkg}, t.imports[callerPkg]...)
	return t.byNameIn(c.Name, callerRecv, scope)
}

// byNameIn returns the fact keys for methods named name whose package
// is in scope, excluding receivers of type exclRecv.
func (t *loTable) byNameIn(name, exclRecv string, scope []string) []string {
	var out []string
	for _, key := range t.byName[name] {
		base := key[:strings.Index(key, ".")]
		if !contains(scope, base) {
			continue
		}
		if exclRecv != "" && t.funcs[key].Recv == exclRecv {
			continue
		}
		out = append(out, key)
	}
	return out
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// closures computes, per function key, the transitive set of lock
// classes it may acquire and whether it may block, by fixpoint over
// the call graph (cycle-safe).
func (t *loTable) closures() (acq map[string]map[string]bool, blocks map[string]bool) {
	acq = map[string]map[string]bool{}
	blocks = map[string]bool{}
	keys := make([]string, 0, len(t.funcs))
	for k := range t.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		acq[k] = map[string]bool{}
		for _, a := range t.funcs[k].Acquires {
			acq[k][a.Lock] = true
		}
		blocks[k] = t.funcs[k].Blocks
	}
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			f := t.funcs[k]
			callerPkg := k[:strings.Index(k, ".")]
			for _, c := range f.Calls {
				for _, cand := range t.candidates(callerPkg, f.Recv, c) {
					for l := range acq[cand] {
						if !acq[k][l] {
							acq[k][l] = true
							changed = true
						}
					}
					if blocks[cand] && !blocks[k] {
						blocks[k] = true
						changed = true
					}
				}
			}
		}
	}
	return acq, blocks
}

// edges builds the global lock-order edge set: held → acquired.
func (t *loTable) edges(acq map[string]map[string]bool) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	add := func(from, to string) {
		if out[from] == nil {
			out[from] = map[string]bool{}
		}
		out[from][to] = true
	}
	keys := make([]string, 0, len(t.funcs))
	for k := range t.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f := t.funcs[k]
		callerPkg := k[:strings.Index(k, ".")]
		for _, a := range f.Acquires {
			for _, h := range a.Held {
				add(h, a.Lock)
			}
		}
		for _, c := range f.Calls {
			if len(c.Held) == 0 {
				continue
			}
			for _, cand := range t.candidates(callerPkg, f.Recv, c) {
				for l := range acq[cand] {
					for _, h := range c.Held {
						add(h, l)
					}
				}
			}
		}
	}
	return out
}

// pathBack finds a shortest edge path from 'from' back to 'to' (BFS),
// or nil when unreachable. from == to is the trivial (re-entrant)
// cycle.
func pathBack(edges map[string]map[string]bool, from, to string) []string {
	if from == to {
		return []string{from}
	}
	prev := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		next := make([]string, 0, len(edges[cur]))
		for n := range edges[cur] {
			next = append(next, n)
		}
		sort.Strings(next)
		for _, n := range next {
			if _, seen := prev[n]; seen {
				continue
			}
			prev[n] = cur
			if n == to {
				var path []string
				for c := n; c != from; c = prev[c] {
					path = append(path, c)
				}
				path = append(path, from)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, n)
		}
	}
	return nil
}

func runLockOrder(pass *analysis.Pass) (interface{}, error) {
	table := decodeLockOrderFacts(pass.Facts)
	acqClosure, blockClosure := table.closures()
	edges := table.edges(acqClosure)
	base := pkgBase(pass.PkgPath)

	reported := map[string]bool{}
	report := func(pos token.Pos, msg string) {
		k := fmt.Sprintf("%d:%s", pos, msg)
		if reported[k] {
			return
		}
		reported[k] = true
		pass.Reportf(pos, "%s", msg)
	}

	var sites []loSite
	scanLockOrderPkg(pass, table.links, nil, &sites)
	for _, site := range sites {
		switch site.kind {
		case "acquire":
			for _, h := range site.acq.Held {
				if cyc := pathBack(edges, site.acq.Lock, h); cyc != nil {
					report(site.pos, fmt.Sprintf(
						"acquiring %s while holding %s creates a lock-order cycle (%s → %s); acquire locks in the documented order",
						site.acq.Lock, h, h, strings.Join(cyc, " → ")))
				}
			}
		case "call":
			if len(site.call.Held) == 0 {
				continue
			}
			for _, cand := range table.candidates(base, site.recv, site.call) {
				locks := make([]string, 0, len(acqClosure[cand]))
				for l := range acqClosure[cand] {
					locks = append(locks, l)
				}
				sort.Strings(locks)
				for _, h := range site.call.Held {
					cycleHit := false
					for _, l := range locks {
						if cyc := pathBack(edges, l, h); cyc != nil {
							report(site.pos, fmt.Sprintf(
								"call to %s acquires %s while %s is held, creating a lock-order cycle (%s → %s)",
								cand, l, h, h, strings.Join(cyc, " → ")))
							cycleHit = true
							break
						}
					}
					if !cycleHit && blockClosure[cand] {
						report(site.pos, fmt.Sprintf(
							"call to %s blocks (channel op or Wait in its call chain) while %s is held; release the lock first",
							cand, h))
					}
				}
			}
		}
	}
	return nil, nil
}
