package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"drugtree/internal/lint/analysis"
)

// SpawnCheck enforces the goroutine-shutdown invariant behind the
// PR 1/PR 2 leak tests: every `go` statement must have a visible
// shutdown or completion path. Accepted evidence, in the spawned
// body (or the argument list for `go method(...)` form):
//
//   - a context: an identifier named ctx / *Ctx, or a ctx.Done() call
//   - a channel operation: send, receive, close, or select (the
//     "errc <- f()" completion-signal idiom counts — the spawner
//     joins on the channel)
//   - a WaitGroup: wg.Done() / wg.Wait()
//
// A bare `go f()` with none of these is a goroutine nothing can stop
// or join, exactly the shape the -race leak tests exist to catch.
var SpawnCheck = &analysis.Analyzer{
	Name: "spawncheck",
	Doc: "every go statement needs a shutdown or completion path: " +
		"a threaded ctx, a channel op, or a WaitGroup",
	Run: runSpawnCheck,
}

func runSpawnCheck(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
				if !bodyHasShutdownPath(fl) && !argsHaveShutdownPath(g.Call) {
					pass.Reportf(g.Pos(),
						"goroutine has no shutdown path; thread a ctx, signal a channel, or register with a WaitGroup")
				}
				return true
			}
			// go pkg.Fn(args...) / go x.Method(args...): the body is out
			// of reach, so the arguments must carry the cancellation.
			if !argsHaveShutdownPath(g.Call) {
				pass.Reportf(g.Pos(),
					"goroutine %s receives no context or signalling argument; it cannot be cancelled or joined",
					analysis.ExprString(g.Call.Fun))
			}
			return true
		})
	}
	return nil, nil
}

// bodyHasShutdownPath scans a spawned func literal for any accepted
// shutdown evidence.
func bodyHasShutdownPath(fl *ast.FuncLit) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if isCtxName(x.Name) {
				found = true
			}
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			// `for v := range ch` over a channel closes the loop when
			// the channel closes; ranging a slice/map is inert but
			// harmless to accept only when paired with other evidence,
			// so ranges alone are NOT evidence.
		case *ast.CallExpr:
			switch fun := x.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" || fun.Sel.Name == "Wait" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// argsHaveShutdownPath reports whether any call argument is a context
// or channel-ish value the callee can select on.
func argsHaveShutdownPath(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		switch a := arg.(type) {
		case *ast.Ident:
			if isCtxName(a.Name) || isSignalName(a.Name) {
				return true
			}
		case *ast.CallExpr:
			// context.Background()/WithTimeout(...) etc: passing any
			// context is a shutdown path (the callee honors ctx);
			// ctxcheck separately polices Background() roots.
			if sel, ok := a.Fun.(*ast.SelectorExpr); ok {
				if x, ok := sel.X.(*ast.Ident); ok && x.Name == "context" {
					return true
				}
			}
		case *ast.SelectorExpr:
			if isCtxName(a.Sel.Name) || isSignalName(a.Sel.Name) {
				return true
			}
		}
	}
	return false
}

func isCtxName(name string) bool {
	return name == "ctx" || strings.HasSuffix(name, "Ctx") || strings.HasSuffix(name, "ctx")
}

func isSignalName(name string) bool {
	switch {
	case name == "done" || name == "stop" || name == "quit":
		return true
	case strings.HasSuffix(name, "ch") || strings.HasSuffix(name, "Ch"),
		strings.HasSuffix(name, "Chan"), strings.HasPrefix(name, "done"):
		return true
	}
	return false
}
