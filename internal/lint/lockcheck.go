package lint

import (
	"go/ast"
	"go/token"

	"drugtree/internal/lint/analysis"
)

// lockBlockingCalls are method/function names that block on I/O, the
// scheduler, or another goroutine. Holding a mutex across any of them
// serializes the system behind the slowest caller (and Wait/<-ch can
// deadlock outright against another goroutine needing the same lock).
var lockBlockingCalls = map[string]bool{
	"Sleep": true, "Fetch": true, "FetchAll": true, "Wait": true,
	"ReadMsg": true, "WriteMsg": true, "Accept": true,
	"Serve": true, "ServeConn": true, "Sync": true, "Query": true,
	"OpenSubtree": true, "RunPrefetch": true, "Do": true,
}

// LockCheck enforces mutex discipline: no blocking call or channel
// operation while a sync.Mutex/RWMutex is held, and no return path
// that leaves a manually-locked mutex locked (multi-return functions
// must use defer). The analysis is an intraprocedural, syntactic
// walk: Lock()/RLock() receivers are tracked textually ("c.link.mu")
// through the statement list, branch bodies are scanned with a copy
// of the held set, and an Unlock on the textual path clears it.
var LockCheck = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "forbid blocking calls and channel ops while a mutex is held, " +
		"and returns that leave a manually-locked mutex locked (use defer on multi-return paths)",
	Run: runLockCheck,
}

func runLockCheck(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		// Every function body — declarations and literals — is an
		// independent scan root with an empty held set.
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					scanLockBlock(pass, fn.Body.List, newHeldSet())
				}
			case *ast.FuncLit:
				if fn.Body != nil {
					scanLockBlock(pass, fn.Body.List, newHeldSet())
				}
			}
			return true
		})
	}
	return nil, nil
}

// heldLock is one acquired mutex on the current textual path.
type heldLock struct {
	pos      token.Pos
	deferred bool // released by a registered defer
}

// heldSet tracks lock state along one textual path. locks is cloned
// at branch points; deferredOnce is function-wide and shared across
// clones — once `defer mu.Unlock()` has executed, it releases every
// later re-acquisition of mu at function exit, so re-locks after an
// unlock/relock dance stay defer-protected.
type heldSet struct {
	locks        map[string]*heldLock
	deferredOnce map[string]bool
}

func newHeldSet() heldSet {
	return heldSet{locks: make(map[string]*heldLock), deferredOnce: make(map[string]bool)}
}

func (h heldSet) clone() heldSet {
	c := heldSet{locks: make(map[string]*heldLock, len(h.locks)), deferredOnce: h.deferredOnce}
	for k, v := range h.locks {
		c.locks[k] = v
	}
	return c
}

// scanLockBlock walks stmts in order, tracking lock state. Branch
// bodies are scanned with a cloned set: an Unlock inside a branch
// releases for that branch only, matching the common
// "if fast-path { unlock; return }" shape without path explosion.
func scanLockBlock(pass *analysis.Pass, stmts []ast.Stmt, held heldSet) {
	for _, stmt := range stmts {
		scanLockStmt(pass, stmt, held)
	}
}

func scanLockStmt(pass *analysis.Pass, stmt ast.Stmt, held heldSet) {
	// Any statement other than the lock/unlock calls themselves is
	// first checked for blocking operations while something is held.
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if recv, op, ok := lockOp(s.X); ok {
			switch op {
			case "Lock", "RLock":
				held.locks[recv] = &heldLock{pos: s.Pos(), deferred: held.deferredOnce[recv]}
			case "Unlock", "RUnlock":
				delete(held.locks, recv)
			}
			return
		}
		checkBlockingExpr(pass, s.X, held)
	case *ast.DeferStmt:
		if recv, op, ok := lockOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			if l := held.locks[recv]; l != nil {
				l.deferred = true
			}
			held.deferredOnce[recv] = true
			return
		}
		// The deferred call runs after the function body; its body is
		// scanned as its own root by runLockCheck.
	case *ast.ReturnStmt:
		checkBlockingExprs(pass, s.Results, held)
		for recv, l := range held.locks {
			if !l.deferred {
				pass.Reportf(s.Pos(),
					"return leaves %s locked (acquired at line %d); release it on this path or use defer %s.Unlock()",
					recv, pass.Fset.Position(l.pos).Line, recv)
			}
		}
	case *ast.SendStmt:
		reportIfHeld(pass, s.Pos(), held, "channel send")
	case *ast.SelectStmt:
		reportIfHeld(pass, s.Pos(), held, "select")
		for _, c := range s.Body.List {
			if comm, ok := c.(*ast.CommClause); ok {
				scanLockBlock(pass, comm.Body, held.clone())
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			scanLockStmt(pass, s.Init, held)
		}
		checkBlockingExpr(pass, s.Cond, held)
		scanLockBlock(pass, s.Body.List, held.clone())
		if s.Else != nil {
			scanLockStmt(pass, s.Else, held.clone())
		}
	case *ast.BlockStmt:
		scanLockBlock(pass, s.List, held)
	case *ast.ForStmt:
		scanLockBlock(pass, s.Body.List, held.clone())
	case *ast.RangeStmt:
		scanLockBlock(pass, s.Body.List, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			scanLockStmt(pass, s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanLockBlock(pass, cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanLockBlock(pass, cc.Body, held.clone())
			}
		}
	case *ast.AssignStmt:
		checkBlockingExprs(pass, s.Rhs, held)
	case *ast.GoStmt:
		// The goroutine runs concurrently; it does not inherit the
		// caller's locks (scanned separately as its own root).
	case *ast.LabeledStmt:
		scanLockStmt(pass, s.Stmt, held)
	}
}

// lockOp recognizes `<recv>.Lock()` / `Unlock` / `RLock` / `RUnlock`
// calls and returns the receiver's textual form.
func lockOp(e ast.Expr) (recv, op string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return analysis.ExprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

// checkBlockingExpr flags blocking calls and channel receives inside
// e while any mutex is held.
func checkBlockingExpr(pass *analysis.Pass, e ast.Expr, held heldSet) {
	if e == nil || len(held.locks) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // deferred/escaping body, not on this path
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				reportIfHeld(pass, x.Pos(), held, "channel receive")
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && lockBlockingCalls[sel.Sel.Name] {
				reportIfHeld(pass, x.Pos(), held, analysis.ExprString(x.Fun)+" call")
			}
		}
		return true
	})
}

func checkBlockingExprs(pass *analysis.Pass, es []ast.Expr, held heldSet) {
	for _, e := range es {
		checkBlockingExpr(pass, e, held)
	}
}

// reportIfHeld emits one diagnostic per held mutex for a blocking
// operation.
func reportIfHeld(pass *analysis.Pass, pos token.Pos, held heldSet, what string) {
	for recv := range held.locks {
		pass.Reportf(pos,
			"%s while %s is held; release the lock before blocking (copy what you need under the lock)",
			what, recv)
	}
}
