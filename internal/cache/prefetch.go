package cache

import (
	"sync"

	"drugtree/internal/phylo"
)

// Prefetcher predicts the next subtree a navigating user will open
// from their recent visit history. Two signals drive it:
//
//   - zoom: after visiting a node, its children are likely next
//     (drilling into a clade);
//   - pan: two consecutive sibling visits establish a direction, and
//     the next sibling in that direction is likely next.
//
// The DrugTree engine runs the suggestions through the normal query
// path in the background, populating the semantic cache so the
// interactive request hits.
type Prefetcher struct {
	mu      sync.Mutex
	history []phylo.NodeID
	depth   int // max history length
	// MaxSuggestions bounds the per-visit prefetch fanout.
	MaxSuggestions int
}

// NewPrefetcher creates a prefetcher remembering the last few visits.
func NewPrefetcher() *Prefetcher {
	return &Prefetcher{depth: 8, MaxSuggestions: 4}
}

// RecordVisit notes that the user opened the subtree at node.
func (p *Prefetcher) RecordVisit(node phylo.NodeID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.history = append(p.history, node)
	if len(p.history) > p.depth {
		p.history = p.history[len(p.history)-p.depth:]
	}
}

// History returns a copy of the recorded visits (most recent last).
func (p *Prefetcher) History() []phylo.NodeID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]phylo.NodeID(nil), p.history...)
}

// Reset clears the history (new session).
func (p *Prefetcher) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.history = nil
}

// Suggest returns nodes worth prefetching after the most recent
// visit, best-first, at most MaxSuggestions.
func (p *Prefetcher) Suggest(t *phylo.Tree) []phylo.NodeID {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.history) == 0 {
		return nil
	}
	cur := p.history[len(p.history)-1]
	if !t.Valid(cur) {
		return nil
	}
	var out []phylo.NodeID
	seen := map[phylo.NodeID]bool{cur: true}
	add := func(id phylo.NodeID) {
		if id != phylo.None && !seen[id] && len(out) < p.MaxSuggestions {
			seen[id] = true
			out = append(out, id)
		}
	}

	// Pan direction from the last two visits when they are siblings.
	if len(p.history) >= 2 {
		prev := p.history[len(p.history)-2]
		if t.Valid(prev) {
			if sib, dir := siblingDirection(t, prev, cur); dir != 0 {
				add(sib)
			}
		}
	}
	// Zoom: children of the current node, widest subtrees first (the
	// user is most likely to open the dominant clade).
	node := t.Node(cur)
	children := append([]phylo.NodeID(nil), node.Children...)
	for i := 0; i < len(children); i++ {
		// Selection sort by leaf count (children lists are tiny).
		best := i
		for j := i + 1; j < len(children); j++ {
			if t.LeafCount(children[j]) > t.LeafCount(children[best]) {
				best = j
			}
		}
		children[i], children[best] = children[best], children[i]
		add(children[i])
	}
	// Fallback: next sibling either way, then the parent.
	if sib := adjacentSibling(t, cur, +1); sib != phylo.None {
		add(sib)
	}
	if sib := adjacentSibling(t, cur, -1); sib != phylo.None {
		add(sib)
	}
	add(node.Parent)
	return out
}

// siblingDirection reports the continuation sibling when prev and cur
// are siblings: visiting child i then child j ⇒ child j+(j-i sign).
// dir is 0 when prev/cur are not siblings.
func siblingDirection(t *phylo.Tree, prev, cur phylo.NodeID) (next phylo.NodeID, dir int) {
	pp, cp := t.Node(prev).Parent, t.Node(cur).Parent
	if pp == phylo.None || pp != cp {
		return phylo.None, 0
	}
	siblings := t.Node(cp).Children
	pi, ci := -1, -1
	for i, s := range siblings {
		if s == prev {
			pi = i
		}
		if s == cur {
			ci = i
		}
	}
	if pi < 0 || ci < 0 || pi == ci {
		return phylo.None, 0
	}
	if ci > pi {
		dir = 1
	} else {
		dir = -1
	}
	ni := ci + dir
	if ni < 0 || ni >= len(siblings) {
		return phylo.None, 0
	}
	return siblings[ni], dir
}

// adjacentSibling returns the sibling at offset dir from id, or None.
func adjacentSibling(t *phylo.Tree, id phylo.NodeID, dir int) phylo.NodeID {
	parent := t.Node(id).Parent
	if parent == phylo.None {
		return phylo.None
	}
	siblings := t.Node(parent).Children
	for i, s := range siblings {
		if s == id {
			ni := i + dir
			if ni >= 0 && ni < len(siblings) {
				return siblings[ni]
			}
			return phylo.None
		}
	}
	return phylo.None
}
