package cache

import (
	"fmt"
	"testing"
	"time"

	"drugtree/internal/phylo"
	"drugtree/internal/store"
)

func mkRows(lo, hi int64) []store.Row {
	var rows []store.Row
	for i := lo; i <= hi; i++ {
		rows = append(rows, store.Row{store.IntValue(i), store.StringValue(fmt.Sprintf("n%d", i))})
	}
	return rows
}

func mkEntry(key Key, lo, hi int64, version int64, cost time.Duration) *Entry {
	return &Entry{
		Key: key, Lo: lo, Hi: hi,
		Columns:  []string{"pre", "name"},
		Rows:     mkRows(lo, hi),
		RangeIdx: 0,
		Version:  version,
		Cost:     cost,
	}
}

var k1 = Key{Relation: "tree_nodes", RangeCol: "pre", Residual: ""}

func TestCacheExactHit(t *testing.T) {
	c := New(1 << 20)
	c.Put(mkEntry(k1, 10, 20, 1, time.Millisecond))
	rows, cols, ok := c.Get(k1, 10, 20, 1)
	if !ok || len(rows) != 11 || cols[0] != "pre" {
		t.Fatalf("exact hit: ok=%v rows=%d", ok, len(rows))
	}
	st := c.Stats()
	if st.Hits != 1 || st.SubsumedHits != 0 || st.Misses != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheSubsumedHit(t *testing.T) {
	c := New(1 << 20)
	c.Put(mkEntry(k1, 0, 100, 1, time.Millisecond))
	rows, _, ok := c.Get(k1, 40, 50, 1)
	if !ok {
		t.Fatal("subsumed query missed")
	}
	if len(rows) != 11 {
		t.Fatalf("subsumed rows = %d, want 11", len(rows))
	}
	for _, r := range rows {
		if r[0].I < 40 || r[0].I > 50 {
			t.Fatalf("row %v outside requested range", r[0])
		}
	}
	if st := c.Stats(); st.SubsumedHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheMissOutsideRange(t *testing.T) {
	c := New(1 << 20)
	c.Put(mkEntry(k1, 10, 20, 1, time.Millisecond))
	if _, _, ok := c.Get(k1, 15, 25, 1); ok {
		t.Fatal("partially-covered query hit")
	}
	if _, _, ok := c.Get(k1, 0, 5, 1); ok {
		t.Fatal("disjoint query hit")
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheKeyIsolation(t *testing.T) {
	c := New(1 << 20)
	c.Put(mkEntry(k1, 0, 100, 1, time.Millisecond))
	k2 := Key{Relation: "tree_nodes", RangeCol: "pre", Residual: "is_leaf = true"}
	if _, _, ok := c.Get(k2, 10, 20, 1); ok {
		t.Fatal("different residual hit the same entry")
	}
	k3 := Key{Relation: "other", RangeCol: "pre"}
	if _, _, ok := c.Get(k3, 10, 20, 1); ok {
		t.Fatal("different relation hit the same entry")
	}
}

func TestCacheVersionInvalidation(t *testing.T) {
	c := New(1 << 20)
	c.Put(mkEntry(k1, 0, 100, 1, time.Millisecond))
	if _, _, ok := c.Get(k1, 10, 20, 2); ok {
		t.Fatal("stale entry served")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if c.Len() != 0 {
		t.Fatal("stale entry not removed")
	}
}

func TestCacheInvalidateRelation(t *testing.T) {
	c := New(1 << 20)
	c.Put(mkEntry(k1, 0, 50, 1, time.Millisecond))
	k2 := Key{Relation: "proteins", RangeCol: "length"}
	c.Put(mkEntry(k2, 0, 50, 1, time.Millisecond))
	c.InvalidateRelation("tree_nodes")
	if _, _, ok := c.Get(k1, 0, 50, 1); ok {
		t.Fatal("invalidated relation served")
	}
	if _, _, ok := c.Get(k2, 0, 50, 1); !ok {
		t.Fatal("unrelated relation dropped")
	}
}

func TestCachePutCoversNarrower(t *testing.T) {
	c := New(1 << 20)
	c.Put(mkEntry(k1, 40, 50, 1, time.Millisecond))
	c.Put(mkEntry(k1, 0, 100, 1, time.Millisecond))
	if c.Len() != 1 {
		t.Fatalf("covered narrower entry kept: %d entries", c.Len())
	}
}

func TestCacheEvictionRespectsCost(t *testing.T) {
	// Capacity fits ~2 entries; the cheap one should be evicted when
	// a third arrives.
	e1 := mkEntry(k1, 0, 30, 1, 100*time.Millisecond) // expensive
	k2 := Key{Relation: "a", RangeCol: "x"}
	e2 := mkEntry(k2, 0, 30, 1, time.Microsecond) // cheap
	k3 := Key{Relation: "b", RangeCol: "x"}
	e3 := mkEntry(k3, 0, 30, 1, 50*time.Millisecond)
	size := rowBytes(e1.Rows)
	c := New(size*2 + 100)
	c.Put(e1)
	c.Put(e2)
	c.Put(e3) // must evict e2 (cheapest per byte)
	if _, _, ok := c.Get(k1, 0, 30, 1); !ok {
		t.Fatal("expensive entry evicted")
	}
	if _, _, ok := c.Get(k2, 0, 30, 1); ok {
		t.Fatal("cheap entry survived")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheOversizeEntryRejected(t *testing.T) {
	c := New(100)
	c.Put(mkEntry(k1, 0, 1000, 1, time.Millisecond))
	if c.Len() != 0 {
		t.Fatal("oversize entry cached")
	}
}

func TestCacheClear(t *testing.T) {
	c := New(1 << 20)
	c.Put(mkEntry(k1, 0, 10, 1, time.Millisecond))
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("clear incomplete")
	}
	if _, _, ok := c.Get(k1, 0, 10, 1); ok {
		t.Fatal("cleared entry served")
	}
}

// --- Prefetcher ---

// prefTree builds root(a(a1,a2,a3), b(b1,b2), c).
func prefTree(t *testing.T) (*phylo.Tree, map[string]phylo.NodeID) {
	t.Helper()
	tr := phylo.NewTree()
	ids := map[string]phylo.NodeID{}
	var err error
	if ids["root"], err = tr.AddNode("root", phylo.None, 0); err != nil {
		t.Fatal(err)
	}
	add := func(name string, parent string) {
		id, err := tr.AddNode(name, ids[parent], 1)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
	}
	add("a", "root")
	add("b", "root")
	add("c", "root")
	add("a1", "a")
	add("a2", "a")
	add("a3", "a")
	add("b1", "b")
	add("b2", "b")
	if err := tr.Index(); err != nil {
		t.Fatal(err)
	}
	return tr, ids
}

func TestPrefetcherZoomSuggestsChildren(t *testing.T) {
	tr, ids := prefTree(t)
	p := NewPrefetcher()
	p.RecordVisit(ids["a"])
	sugg := p.Suggest(tr)
	if len(sugg) == 0 {
		t.Fatal("no suggestions")
	}
	// All three children must appear among the suggestions.
	want := map[phylo.NodeID]bool{ids["a1"]: true, ids["a2"]: true, ids["a3"]: true}
	found := 0
	for _, s := range sugg {
		if want[s] {
			found++
		}
	}
	if found < 3 {
		t.Fatalf("children missing from suggestions: %v", sugg)
	}
}

func TestPrefetcherPanDirection(t *testing.T) {
	tr, ids := prefTree(t)
	p := NewPrefetcher()
	p.RecordVisit(ids["a"])
	p.RecordVisit(ids["b"]) // panning a→b ⇒ c is next
	sugg := p.Suggest(tr)
	if len(sugg) == 0 || sugg[0] != ids["c"] {
		t.Fatalf("pan suggestion = %v, want c first", sugg)
	}
	// Reverse pan: c→b ⇒ a next.
	p.Reset()
	p.RecordVisit(ids["c"])
	p.RecordVisit(ids["b"])
	sugg = p.Suggest(tr)
	if len(sugg) == 0 || sugg[0] != ids["a"] {
		t.Fatalf("reverse pan suggestion = %v, want a first", sugg)
	}
}

func TestPrefetcherLeafFallsBackToSiblings(t *testing.T) {
	tr, ids := prefTree(t)
	p := NewPrefetcher()
	p.RecordVisit(ids["a2"])
	sugg := p.Suggest(tr)
	// a2 has no children: expect siblings (a3 or a1) and parent a.
	if len(sugg) == 0 {
		t.Fatal("no suggestions for leaf")
	}
	seen := map[phylo.NodeID]bool{}
	for _, s := range sugg {
		seen[s] = true
	}
	if !seen[ids["a3"]] && !seen[ids["a1"]] {
		t.Fatalf("no sibling suggested: %v", sugg)
	}
}

func TestPrefetcherBounded(t *testing.T) {
	tr, ids := prefTree(t)
	p := NewPrefetcher()
	p.MaxSuggestions = 2
	p.RecordVisit(ids["a"])
	if sugg := p.Suggest(tr); len(sugg) > 2 {
		t.Fatalf("suggestions = %d > 2", len(sugg))
	}
}

func TestPrefetcherEmptyHistory(t *testing.T) {
	tr, _ := prefTree(t)
	p := NewPrefetcher()
	if sugg := p.Suggest(tr); sugg != nil {
		t.Fatalf("suggestions without history: %v", sugg)
	}
}

func TestPrefetcherHistoryBounded(t *testing.T) {
	tr, ids := prefTree(t)
	p := NewPrefetcher()
	for i := 0; i < 100; i++ {
		p.RecordVisit(ids["a"])
	}
	if got := len(p.History()); got > 8 {
		t.Fatalf("history length = %d", got)
	}
	_ = tr
}
