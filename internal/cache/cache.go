// Package cache implements DrugTree's semantic result cache and the
// navigation-aware prefetcher — the "novel mechanisms" the poster
// credits for improving interactive query performance.
//
// The cache is range-semantic: entries remember the predicate range
// they cover, so a query for preorder interval [10,20] is answered
// from a cached [0,100] result by filtering (subsumption), not only
// by exact match. Eviction is cost-aware (GreedyDual-Size): entries
// that were expensive to compute and cheap to keep survive longer.
package cache

import (
	"sync"
	"time"

	"drugtree/internal/store"
)

// Key identifies the semantic class of a cached result: one relation
// (or named view), the column the range predicate applies to, and a
// canonical rendering of any residual predicate. Two queries share an
// entry class iff all three match.
type Key struct {
	Relation string
	RangeCol string
	Residual string
}

// Entry is one cached result set covering a range.
type Entry struct {
	Key     Key
	Lo, Hi  int64 // inclusive covered range on RangeCol
	Columns []string
	Rows    []store.Row
	// RangeIdx is the position of RangeCol in Rows (for subsumption
	// filtering); -1 disables subsumption for this entry.
	RangeIdx int
	// Version is the data version the entry was computed at.
	Version int64
	// Cost is the compute cost the entry saved (eviction weight).
	Cost time.Duration

	bytes    int64
	priority float64
}

// Stats reports cache effectiveness.
type Stats struct {
	Hits          int64
	SubsumedHits  int64 // hits answered by filtering a wider entry
	Misses        int64
	Evictions     int64
	Invalidations int64
	BytesCached   int64
}

// Cache is a bounded, range-semantic result cache. Safe for
// concurrent use.
type Cache struct {
	// ExactOnly disables range subsumption, turning the cache into a
	// plain exact-match result cache. Exists for the ablation
	// experiments; leave false in production.
	ExactOnly bool

	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[Key][]*Entry
	clock    float64 // GreedyDual-Size aging clock
	stats    Stats
}

// New creates a cache bounded to capacity bytes.
func New(capacity int64) *Cache {
	return &Cache{capacity: capacity, entries: make(map[Key][]*Entry)}
}

// rowBytes estimates an entry's memory footprint.
func rowBytes(rows []store.Row) int64 {
	var n int64
	for _, r := range rows {
		n += int64(store.EncodedRowSize(r))
	}
	return n + 64
}

// Get answers a range query [lo,hi] from the cache. version is the
// caller's current data version; stale entries are invalidated on
// contact. The returned rows are the cached rows restricted to the
// requested range.
func (c *Cache) Get(key Key, lo, hi int64, version int64) ([]store.Row, []string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	list := c.entries[key]
	for i := 0; i < len(list); i++ {
		e := list[i]
		if e.Version != version {
			c.removeLocked(key, i)
			list = c.entries[key]
			i--
			c.stats.Invalidations++
			continue
		}
		if e.Lo <= lo && hi <= e.Hi {
			// Hit. Refresh GDS priority.
			e.priority = c.clock + float64(e.Cost.Microseconds())/float64(e.bytes+1)
			if e.Lo == lo && e.Hi == hi {
				c.stats.Hits++
				return e.Rows, e.Columns, true
			}
			if e.RangeIdx < 0 || c.ExactOnly {
				continue // subsumption unavailable for this entry
			}
			c.stats.Hits++
			c.stats.SubsumedHits++
			var out []store.Row
			for _, r := range e.Rows {
				v := r[e.RangeIdx]
				if v.K == store.KindInt && v.I >= lo && v.I <= hi {
					out = append(out, r)
				}
			}
			return out, e.Columns, true
		}
	}
	c.stats.Misses++
	return nil, nil, false
}

// Put inserts a computed result covering [lo,hi].
func (c *Cache) Put(e *Entry) {
	e.bytes = rowBytes(e.Rows)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.bytes > c.capacity {
		return // too large to ever cache
	}
	// Drop narrower same-version entries this one covers.
	list := c.entries[e.Key]
	for i := 0; i < len(list); i++ {
		old := list[i]
		if old.Version == e.Version && e.Lo <= old.Lo && old.Hi <= e.Hi {
			c.removeLocked(e.Key, i)
			list = c.entries[e.Key]
			i--
		}
	}
	for c.used+e.bytes > c.capacity {
		if !c.evictLocked() {
			return
		}
	}
	e.priority = c.clock + float64(e.Cost.Microseconds())/float64(e.bytes+1)
	c.entries[e.Key] = append(c.entries[e.Key], e)
	c.used += e.bytes
	c.stats.BytesCached = c.used
}

// evictLocked removes the minimum-priority entry (GreedyDual-Size).
func (c *Cache) evictLocked() bool {
	var victimKey Key
	victimIdx := -1
	min := 0.0
	first := true
	for k, list := range c.entries {
		for i, e := range list {
			if first || e.priority < min {
				min = e.priority
				victimKey, victimIdx = k, i
				first = false
			}
		}
	}
	if victimIdx < 0 {
		return false
	}
	c.clock = min // age the clock to the evicted priority
	c.removeLocked(victimKey, victimIdx)
	c.stats.Evictions++
	return true
}

func (c *Cache) removeLocked(k Key, i int) {
	list := c.entries[k]
	c.used -= list[i].bytes
	list[i] = list[len(list)-1]
	c.entries[k] = list[:len(list)-1]
	if len(c.entries[k]) == 0 {
		delete(c.entries, k)
	}
	c.stats.BytesCached = c.used
}

// InvalidateRelation drops every entry for the relation (called on
// writes).
func (c *Cache) InvalidateRelation(relation string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.entries {
		if k.Relation == relation {
			for range c.entries[k] {
				c.stats.Invalidations++
			}
			for _, e := range c.entries[k] {
				c.used -= e.bytes
			}
			delete(c.entries, k)
		}
	}
	c.stats.BytesCached = c.used
}

// Clear empties the cache.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Key][]*Entry)
	c.used = 0
	c.stats.BytesCached = 0
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, list := range c.entries {
		n += len(list)
	}
	return n
}
