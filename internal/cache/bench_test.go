package cache

import (
	"testing"
	"time"
)

func BenchmarkCacheGet(b *testing.B) {
	c := New(16 << 20)
	c.Put(mkEntry(k1, 0, 4095, 1, time.Millisecond))
	b.Run("ExactHit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Get(k1, 0, 4095, 1)
		}
	})
	b.Run("SubsumedHit64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lo := int64(i % 4000)
			c.Get(k1, lo, lo+63, 1)
		}
	})
	miss := Key{Relation: "other", RangeCol: "pre"}
	b.Run("Miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Get(miss, 0, 10, 1)
		}
	})
}

func BenchmarkCachePutEvict(b *testing.B) {
	entrySize := rowBytes(mkRows(0, 99))
	c := New(entrySize * 8) // room for ~8 entries → constant eviction
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := Key{Relation: "r", RangeCol: "pre", Residual: ""}
		lo := int64(i%64) * 1000
		c.Put(mkEntry(k, lo, lo+99, 1, time.Millisecond))
	}
}
