package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"drugtree/internal/query"
)

// TestShardedDifferentialCorpus drives the fixed corpus through the
// four-way matrix: sharded vs single-node × row vs vectorized. Every
// operator class crosses the coordinator here — replicated-only
// routing, co-partitioned joins, partial re-aggregation, top-k
// merge, shard pruning, and the gather fallback (subqueries and
// DISTINCT aggregates).
func TestShardedDifferentialCorpus(t *testing.T) {
	f := newFourWay(t, fixtureConfig(7), 3, nil)
	clade := cladeName(f.tree)
	corpus := []struct {
		q      string
		keyPos int // sort-key column for ordered queries, -1 otherwise
	}{
		{"SELECT * FROM proteins", -1},
		{"SELECT accession FROM proteins WHERE family = 'FAM01'", -1},
		{"SELECT accession, length FROM proteins WHERE length > 120 AND family != 'FAM00'", -1},
		{"SELECT accession FROM proteins WHERE family = 'FAM02' OR length BETWEEN 110 AND 125", -1},
		{"SELECT p.accession, a.ligand_id FROM proteins p JOIN activities a ON p.accession = a.protein_id", -1},
		{`SELECT p.accession, l.weight FROM proteins p
		  JOIN activities a ON p.accession = a.protein_id
		  JOIN ligands l ON a.ligand_id = l.ligand_id WHERE a.affinity > 7`, -1},
		{"SELECT t.name, a.affinity FROM tree_nodes t JOIN activities a ON t.name = a.protein_id WHERE a.affinity > 8", -1},
		{"SELECT COUNT(*) FROM activities", -1},
		{"SELECT COUNT(*), SUM(affinity), AVG(affinity), MIN(affinity), MAX(affinity) FROM activities", -1},
		{"SELECT COUNT(*), SUM(length), MIN(accession) FROM proteins WHERE family = 'NOSUCH'", -1},
		{"SELECT family, COUNT(*), AVG(length) FROM proteins GROUP BY family", -1},
		{"SELECT family, COUNT(*) AS n FROM proteins GROUP BY family HAVING n > 15", -1},
		{`SELECT p.family, COUNT(*) AS n, AVG(a.affinity) FROM proteins p
		  JOIN activities a ON p.accession = a.protein_id GROUP BY p.family`, -1},
		{"SELECT protein_id, AVG(affinity) AS m FROM activities GROUP BY protein_id ORDER BY m DESC LIMIT 5", 1},
		{"SELECT protein_id, COUNT(DISTINCT ligand_id) FROM activities GROUP BY protein_id", -1},
		{"SELECT COUNT(DISTINCT family) FROM proteins", -1},
		{"SELECT accession, length FROM proteins ORDER BY length DESC LIMIT 7", 1},
		{"SELECT accession FROM proteins ORDER BY accession", 0},
		{"SELECT protein_id, affinity FROM activities ORDER BY affinity LIMIT 11", 1},
		{fmt.Sprintf("SELECT name FROM tree_nodes WHERE WITHIN_SUBTREE(pre, '%s') AND is_leaf = TRUE", clade), -1},
		{"SELECT name FROM tree_nodes WHERE ANCESTOR_OF(pre, 'DT00010')", -1},
		{"SELECT accession FROM proteins WHERE accession IN (SELECT protein_id FROM activities WHERE affinity > 8)", -1},
		{"SELECT accession FROM proteins WHERE length > (SELECT AVG(length) FROM proteins)", -1},
		{`SELECT a.protein_id, l.ligand_id FROM activities a
		  JOIN ligands l ON a.affinity < l.weight WHERE l.weight < 110`, -1},
		{"SELECT ligand_id, weight FROM ligands WHERE weight > 100", -1},
		{"SELECT pre, name FROM tree_nodes WHERE pre >= 10 AND pre <= 40", -1},
		{"SELECT COUNT(*) FROM tree_nodes WHERE pre < 25", -1},
	}
	for _, c := range corpus {
		runFourWay(t, f, c.q, c.keyPos)
	}
}

// shardGen generates random well-formed DTQL over the fixture schema,
// mirroring the engine-level fuzz generator: joins along the real
// key relationships, nested predicates, IN-subqueries, BETWEEN,
// LIKE, and ordered top-k tails.
type shardGen struct {
	rng *rand.Rand
}

var shardFuzzTables = map[string][]struct {
	name string
	kind string
}{
	"proteins":   {{"accession", "string"}, {"family", "string"}, {"length", "int"}},
	"activities": {{"protein_id", "string"}, {"ligand_id", "string"}, {"affinity", "float"}},
	"ligands":    {{"ligand_id", "string"}, {"weight", "float"}},
	"tree_nodes": {{"pre", "int"}, {"name", "string"}, {"is_leaf", "bool"}},
}

func (g *shardGen) literal(kind string) string {
	switch kind {
	case "int":
		return fmt.Sprint(g.rng.Intn(200))
	case "float":
		return fmt.Sprintf("%.1f", g.rng.Float64()*10)
	case "string":
		opts := []string{"'zzz'", "'FAM00'", "'FAM01'", "'FAM02'", "'DT00000'", "'DT00017'", "'DT00034'", "'LIG0000'", "'LIG0007'", "'LIG0014'"}
		return opts[g.rng.Intn(len(opts))]
	case "bool":
		if g.rng.Intn(2) == 0 {
			return "TRUE"
		}
		return "FALSE"
	}
	return "0"
}

func (g *shardGen) predicate(alias, table string, depth int) string {
	cols := shardFuzzTables[table]
	c := cols[g.rng.Intn(len(cols))]
	ref := alias + "." + c.name
	if depth > 0 && g.rng.Float64() < 0.4 {
		op := "AND"
		if g.rng.Intn(2) == 0 {
			op = "OR"
		}
		s := fmt.Sprintf("(%s %s %s)", g.predicate(alias, table, depth-1), op, g.predicate(alias, table, depth-1))
		if g.rng.Float64() < 0.2 {
			s = "NOT " + s
		}
		return s
	}
	switch c.kind {
	case "bool":
		return fmt.Sprintf("%s = %s", ref, g.literal("bool"))
	case "string":
		switch g.rng.Intn(5) {
		case 0:
			return fmt.Sprintf("%s = %s", ref, g.literal("string"))
		case 1:
			return fmt.Sprintf("%s != %s", ref, g.literal("string"))
		case 2:
			return fmt.Sprintf("%s LIKE 'DT0%%'", ref)
		case 3:
			subs := []string{
				"SELECT protein_id FROM activities WHERE affinity > 5",
				"SELECT accession FROM proteins WHERE length < 135",
				"SELECT ligand_id FROM ligands WHERE weight > 120",
			}
			return fmt.Sprintf("%s IN (%s)", ref, subs[g.rng.Intn(len(subs))])
		default:
			return fmt.Sprintf("%s IN (%s, %s)", ref, g.literal("string"), g.literal("string"))
		}
	default:
		ops := []string{"=", "!=", "<", "<=", ">", ">="}
		if g.rng.Float64() < 0.25 {
			return fmt.Sprintf("%s BETWEEN %s AND %s", ref, g.literal(c.kind), g.literal(c.kind))
		}
		return fmt.Sprintf("%s %s %s", ref, ops[g.rng.Intn(len(ops))], g.literal(c.kind))
	}
}

// generate emits one random query and the sort-key position (-1 when
// unordered).
func (g *shardGen) generate() (string, int) {
	type rel struct{ table, alias string }
	shapes := [][]rel{
		{{"proteins", "p"}},
		{{"activities", "a"}},
		{{"tree_nodes", "t"}},
		{{"ligands", "l"}},
		{{"proteins", "p"}, {"activities", "a"}},
		{{"proteins", "p"}, {"activities", "a"}, {"ligands", "l"}},
		{{"tree_nodes", "t"}, {"activities", "a"}},
	}
	joinConds := map[string]string{
		"p/a": "p.accession = a.protein_id",
		"a/l": "a.ligand_id = l.ligand_id",
		"t/a": "t.name = a.protein_id",
	}
	shape := shapes[g.rng.Intn(len(shapes))]
	var b strings.Builder
	b.WriteString("SELECT ")
	var selCols []string
	for _, r := range shape {
		cols := shardFuzzTables[r.table]
		c := cols[g.rng.Intn(len(cols))]
		selCols = append(selCols, r.alias+"."+c.name)
	}
	b.WriteString(strings.Join(selCols, ", "))
	b.WriteString(" FROM " + shape[0].table + " " + shape[0].alias)
	for i := 1; i < len(shape); i++ {
		cond, ok := joinConds[shape[i-1].alias+"/"+shape[i].alias]
		if !ok {
			cond = joinConds[shape[i].alias+"/"+shape[i-1].alias]
		}
		fmt.Fprintf(&b, " JOIN %s %s ON %s", shape[i].table, shape[i].alias, cond)
	}
	if g.rng.Float64() < 0.8 {
		var preds []string
		for _, r := range shape {
			if g.rng.Float64() < 0.7 {
				preds = append(preds, g.predicate(r.alias, r.table, 1))
			}
		}
		if len(preds) > 0 {
			b.WriteString(" WHERE " + strings.Join(preds, " AND "))
		}
	}
	keyPos := -1
	if g.rng.Float64() < 0.3 {
		fmt.Fprintf(&b, " ORDER BY %s", selCols[0])
		if g.rng.Intn(2) == 0 {
			b.WriteString(" DESC")
		}
		fmt.Fprintf(&b, " LIMIT %d", 1+g.rng.Intn(20))
		keyPos = 0
	}
	return b.String(), keyPos
}

// TestShardedDifferentialFuzz pushes generated queries through the
// four-way matrix across seeds.
func TestShardedDifferentialFuzz(t *testing.T) {
	f := newFourWay(t, fixtureConfig(7), 3, nil)
	for _, seed := range []int64{1, 42} {
		g := &shardGen{rng: rand.New(rand.NewSource(seed))}
		trials := 80
		if testing.Short() {
			trials = 20
		}
		for i := 0; i < trials; i++ {
			q, keyPos := g.generate()
			runFourWay(t, f, q, keyPos)
		}
	}
}

// TestShardedUnorderedLimit pins the any-N-rows contract of LIMIT
// without ORDER BY: which N qualifying rows are kept is unspecified
// (single-node keeps the first N in table order, the coordinator the
// first N in shard-concatenation order), so the differential check is
// a subset check — every engine must return exactly min(N, total)
// rows, each drawn from the unlimited result's multiset — rather than
// row identity, which would only hold by corpus luck.
func TestShardedUnorderedLimit(t *testing.T) {
	f := newFourWay(t, fixtureConfig(7), 3, nil)
	ctx := context.Background()
	corpus := []struct {
		q, unlimited string
		limit        int
	}{
		{"SELECT accession, family FROM proteins LIMIT 9",
			"SELECT accession, family FROM proteins", 9},
		{"SELECT accession FROM proteins WHERE length > 120 LIMIT 5",
			"SELECT accession FROM proteins WHERE length > 120", 5},
		{"SELECT p.accession, a.ligand_id FROM proteins p JOIN activities a ON p.accession = a.protein_id LIMIT 13",
			"SELECT p.accession, a.ligand_id FROM proteins p JOIN activities a ON p.accession = a.protein_id", 13},
		{"SELECT ligand_id FROM ligands LIMIT 3",
			"SELECT ligand_id FROM ligands", 3},
		{"SELECT accession FROM proteins WHERE family = 'NOSUCH' LIMIT 4",
			"SELECT accession FROM proteins WHERE family = 'NOSUCH'", 4},
		{"SELECT accession FROM proteins LIMIT 100000",
			"SELECT accession FROM proteins", 100000},
	}
	for _, c := range corpus {
		full, err := f.singleRow.Query(ctx, c.unlimited)
		if err != nil {
			t.Fatalf("query %q: unlimited baseline: %v", c.unlimited, err)
		}
		pool := map[string]int{}
		for _, r := range full.Rows {
			pool[canonKey(r)]++
		}
		want := c.limit
		if len(full.Rows) < want {
			want = len(full.Rows)
		}
		run := func(label string, res *query.Result, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("query %q [%s]: %v", c.q, label, err)
			}
			if len(res.Rows) != want {
				t.Fatalf("query %q [%s]: returned %d rows, want %d", c.q, label, len(res.Rows), want)
			}
			left := make(map[string]int, len(pool))
			for k, v := range pool {
				left[k] = v
			}
			for _, r := range res.Rows {
				k := canonKey(r)
				left[k]--
				if left[k] < 0 {
					t.Fatalf("query %q [%s]: row %v not in (or over-represented vs) the unlimited result", c.q, label, r)
				}
			}
		}
		res, err := f.singleRow.Query(ctx, c.q)
		run("single-row", res, err)
		res, err = f.singleVec.Query(ctx, c.q)
		run("single-vec", res, err)
		res, err = f.shardRow.Query(ctx, c.q)
		run("shard-row", res, err)
		res, err = f.shardVec.Query(ctx, c.q)
		run("shard-vec", res, err)
	}
}

// TestShardedCancelParity pins cancellation behavior: a cancelled
// context produces ctx.Err() from the coordinator exactly as it does
// from the single-node engine, never a partial result.
func TestShardedCancelParity(t *testing.T) {
	f := newFourWay(t, fixtureConfig(7), 3, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	corpus := []string{
		"SELECT * FROM proteins",
		"SELECT family, COUNT(*) FROM proteins GROUP BY family",
		"SELECT accession FROM proteins WHERE accession IN (SELECT protein_id FROM activities WHERE affinity > 8)",
		"SELECT accession, length FROM proteins ORDER BY length DESC LIMIT 7",
	}
	for _, q := range corpus {
		if _, err := f.singleRow.Query(ctx, q); !errors.Is(err, context.Canceled) {
			t.Fatalf("query %q: single-node error = %v, want context.Canceled", q, err)
		}
		for name, c := range map[string]*Coordinator{"row": f.shardRow, "vec": f.shardVec} {
			if _, err := c.Query(ctx, q); !errors.Is(err, context.Canceled) {
				t.Fatalf("query %q [%s]: sharded error = %v, want context.Canceled", q, name, err)
			}
		}
	}
}
