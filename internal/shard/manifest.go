package shard

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"path/filepath"

	"drugtree/internal/store"
	"drugtree/internal/vfs"
)

// manifest records what a completed durable partitioning was computed
// from: the topology (shard count and interval starts) and a
// fingerprint of every source table. It is written atomically only
// after every shard store has been populated and checkpointed, so its
// presence is the proof that the shard directories are complete.
// Reopening compares the manifest against the current source: a
// missing manifest means the previous partitioning was interrupted
// mid-populate, a mismatched one means the source dataset (or the
// topology) changed under the same directory — both re-partition from
// scratch instead of silently serving partial or stale shard stores.
type manifest struct {
	Shards int                `json:"shards"`
	Starts []int64            `json:"starts"`
	Tables []tableFingerprint `json:"tables"`
}

// tableFingerprint identifies one source table's content: row count
// plus an order-independent checksum (wrap-around sum of per-row
// FNV-1a hashes, so it is insensitive to scan order but sensitive to
// any changed, added, or removed row, including duplicates).
type tableFingerprint struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
	Sum  uint64 `json:"sum"`
}

const manifestName = "MANIFEST"

func manifestPath(dir string) string { return filepath.Join(dir, manifestName) }

// fingerprint computes the manifest the current source and topology
// would produce.
func fingerprint(src *store.DB, n int, starts []int64) (*manifest, error) {
	m := &manifest{Shards: n, Starts: append([]int64(nil), starts...)}
	var buf []byte
	for _, name := range src.TableNames() {
		tab, err := src.Table(name)
		if err != nil {
			return nil, err
		}
		tf := tableFingerprint{Name: name, Rows: tab.Len()}
		tab.Scan(func(_ int64, r store.Row) bool {
			buf = store.AppendRow(buf[:0], r)
			h := fnv.New64a()
			h.Write(buf)
			tf.Sum += h.Sum64()
			return true
		})
		m.Tables = append(m.Tables, tf)
	}
	return m, nil
}

// equal reports whether two manifests describe the same partitioning
// of the same source.
func (m *manifest) equal(o *manifest) bool {
	if o == nil || m.Shards != o.Shards || len(m.Starts) != len(o.Starts) || len(m.Tables) != len(o.Tables) {
		return false
	}
	for i := range m.Starts {
		if m.Starts[i] != o.Starts[i] {
			return false
		}
	}
	for i := range m.Tables {
		if m.Tables[i] != o.Tables[i] {
			return false
		}
	}
	return true
}

// readManifest loads the completion manifest, or an error when it is
// absent or unreadable (both mean: re-partition).
func readManifest(fsys vfs.FS, dir string) (*manifest, error) {
	b, err := fsys.ReadFile(manifestPath(dir))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("shard: corrupt manifest %s: %w", manifestPath(dir), err)
	}
	return &m, nil
}

// writeManifest persists m atomically (tmp + fsync + rename + parent
// directory fsync), so a crash mid-write never leaves a manifest that
// passes readManifest, and a crash right after return never loses the
// committed rename.
func writeManifest(fsys vfs.FS, dir string, m *manifest) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := manifestPath(dir) + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, manifestPath(dir)); err != nil {
		return err
	}
	// The rename is only durable once the directory entry is synced;
	// without this, a crash can resurrect the old (or no) manifest and
	// the reopened coordinator would silently re-partition.
	return fsys.SyncDir(dir)
}
