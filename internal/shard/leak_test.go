package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// The scatter fan-out's goroutine discipline: every gather joins all
// of its shard goroutines before returning, on success, error, and
// cancellation alike. The package TestMain (leaktest.VerifyTestMain
// in shard_test.go) turns any stranded goroutine from these tests
// into a failure at process exit.

// TestCancelMidGatherSlowShard cancels a query while one shard is
// deliberately stuck: the fast shards have already returned, the
// slow shard is blocked inside the gate until cancellation reaches
// it, and Query must unwind with context.Canceled without leaking
// the slow goroutine.
func TestCancelMidGatherSlowShard(t *testing.T) {
	db, tree := buildFixture(t, fixtureConfig(7))
	c := newCoordinator(t, db, tree, Options{Shards: 3, QueryOptions: rowOptions()})

	const slow = 2
	entered := make(chan int, 3)
	c.gateHook = func(ctx context.Context, shard int) error {
		entered <- shard
		if shard == slow {
			// Stuck shard: only cancellation releases it.
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := c.Query(ctx, "SELECT * FROM proteins")
		done <- err
	}()

	// Wait until every shard goroutine is inside the gate, then
	// cancel mid-gather.
	for i := 0; i < 3; i++ {
		<-entered
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-gather cancel: err = %v, want context.Canceled", err)
	}
}

// TestShardErrorCancelsSiblings injects a failure on one shard and
// requires the gather to cancel the still-running siblings, join
// them, and report the injected error — not a cancellation echo.
func TestShardErrorCancelsSiblings(t *testing.T) {
	db, tree := buildFixture(t, fixtureConfig(7))
	c := newCoordinator(t, db, tree, Options{Shards: 3, QueryOptions: rowOptions()})

	injected := fmt.Errorf("injected shard fault")
	c.gateHook = func(ctx context.Context, shard int) error {
		switch shard {
		case 0:
			return injected
		case 2:
			// A sibling parked until the fault's cancellation arrives.
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	}
	_, err := c.Query(context.Background(), "SELECT * FROM proteins")
	if !errors.Is(err, injected) {
		t.Fatalf("gather error = %v, want the injected fault", err)
	}
}

// TestCancelDuringMergePaths covers the classes that do
// coordinator-side work after the gather (partial aggregation and
// the ordered top-k merge): a cancellation that lands while the
// scatter is in flight must surface as context.Canceled, never as a
// partial result.
func TestCancelDuringMergePaths(t *testing.T) {
	db, tree := buildFixture(t, fixtureConfig(7))
	c := newCoordinator(t, db, tree, Options{Shards: 3, QueryOptions: rowOptions()})

	queries := []string{
		"SELECT family, COUNT(*) FROM proteins GROUP BY family",
		"SELECT COUNT(*), AVG(affinity) FROM activities",
		"SELECT accession FROM proteins ORDER BY accession LIMIT 3",
	}
	for _, q := range queries {
		entered := make(chan int, 3)
		c.gateHook = func(ctx context.Context, shard int) error {
			entered <- shard
			if shard == 1 {
				<-ctx.Done()
				return ctx.Err()
			}
			return nil
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := c.Query(ctx, q)
			done <- err
		}()
		// Shard 1 is parked inside the gate, so the gather cannot
		// complete before the cancellation below lands.
		<-entered
		cancel()
		if err := <-done; !errors.Is(err, context.Canceled) {
			t.Fatalf("query %q: err = %v, want context.Canceled", q, err)
		}
	}
}
