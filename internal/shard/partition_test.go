package shard

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"drugtree/internal/store"
	"drugtree/internal/vfs"
)

// shardRowCount sums a table's rows across every shard store.
func shardRowCount(t *testing.T, c *Coordinator, table string) int {
	t.Helper()
	total := 0
	for i := 0; i < c.Shards(); i++ {
		tab, err := c.Shard(i).DB().Table(table)
		if err != nil {
			t.Fatal(err)
		}
		total += tab.Len()
	}
	return total
}

// TestDurableInterruptedRepartition simulates a partitioning that
// crashed mid-populate: shard stores hold a partial row set and no
// completion manifest exists. Reopening must re-partition from the
// source instead of trusting the nonzero table lengths — the failure
// mode where a partially populated shard was marked "preloaded" and
// its missing rows were silently lost forever.
func TestDurableInterruptedRepartition(t *testing.T) {
	db, tree := buildFixture(t, fixtureConfig(7))
	dir := t.TempDir()
	opts := Options{Shards: 3, QueryOptions: rowOptions(), Dir: dir}
	ctx := context.Background()

	c1, err := Partition(db, tree, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := shardRowCount(t, c1, "proteins")
	want, err := c1.Query(ctx, "SELECT COUNT(*), SUM(length) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// Forge the interrupted state: drop the manifest and delete rows
	// from one shard store, leaving it durable, nonempty, and
	// incomplete — exactly what a crash between populate and the
	// manifest write leaves behind.
	if err := os.Remove(manifestPath(dir)); err != nil {
		t.Fatal(err)
	}
	sdb, err := store.Open(filepath.Join(dir, "shard-1"))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := sdb.Table("proteins")
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	tab.Scan(func(id int64, _ store.Row) bool {
		ids = append(ids, id)
		return len(ids) < 5
	})
	if len(ids) == 0 {
		t.Fatal("shard 1 holds no proteins to delete")
	}
	for _, id := range ids {
		if _, err := sdb.Delete("proteins", id); err != nil {
			t.Fatal(err)
		}
	}
	if err := sdb.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Partition(db, tree, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := shardRowCount(t, c2, "proteins"); got != wantRows {
		t.Fatalf("re-partitioned topology holds %d protein rows, want %d", got, wantRows)
	}
	res, err := c2.Query(ctx, "SELECT COUNT(*), SUM(length) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "interrupted-reopen", "SELECT COUNT(*), SUM(length) FROM proteins", -1, want, res)
}

// TestDurableSourceChangeRepartition changes the source dataset under
// the same directory: the manifest fingerprint mismatches and the
// topology must be rebuilt from the new source, not served stale.
func TestDurableSourceChangeRepartition(t *testing.T) {
	db, tree := buildFixture(t, fixtureConfig(7))
	dir := t.TempDir()
	opts := Options{Shards: 3, QueryOptions: rowOptions(), Dir: dir}
	ctx := context.Background()

	c1, err := Partition(db, tree, opts)
	if err != nil {
		t.Fatal(err)
	}
	before, err := c1.Query(ctx, "SELECT COUNT(*) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-generate the dataset: one extra protein row.
	if _, err := db.Insert("proteins", store.Row{
		store.StringValue("DTNEW00"),
		store.StringValue("FAM00"),
		store.IntValue(133),
	}); err != nil {
		t.Fatal(err)
	}

	c2, err := Partition(db, tree, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	after, err := c2.Query(ctx, "SELECT COUNT(*) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := after.Rows[0][0].I, before.Rows[0][0].I+1; got != want {
		t.Fatalf("reopened COUNT(*) = %d, want %d (stale shard stores served?)", got, want)
	}
	res, err := c2.Query(ctx, "SELECT family FROM proteins WHERE accession = 'DTNEW00'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("new source row not present in re-partitioned topology (%d rows)", len(res.Rows))
	}
}

// TestDurableTopologyChangeRepartition reopens the same source with a
// different shard count: the manifest topology mismatches, so the
// directories are rebuilt instead of row counts silently straddling
// two layouts.
func TestDurableTopologyChangeRepartition(t *testing.T) {
	db, tree := buildFixture(t, fixtureConfig(7))
	dir := t.TempDir()
	ctx := context.Background()

	c1, err := Partition(db, tree, Options{Shards: 3, QueryOptions: rowOptions(), Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want, err := c1.Query(ctx, "SELECT COUNT(*) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Partition(db, tree, Options{Shards: 2, QueryOptions: rowOptions(), Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, err := c2.Query(ctx, "SELECT COUNT(*) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][0].I != want.Rows[0][0].I {
		t.Fatalf("2-shard reopen COUNT(*) = %d, want %d", got.Rows[0][0].I, want.Rows[0][0].I)
	}
}

// openFDs counts the process's open file descriptors.
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd: %v", err)
	}
	return len(ents)
}

// TestPartitionErrorClosesShards makes populate fail after every
// durable shard store (and its WAL) has been opened, and requires the
// failed construction to close them all — no leaked file handles.
func TestPartitionErrorClosesShards(t *testing.T) {
	_, tree := buildFixture(t, fixtureConfig(7))
	// A source whose proteins table lacks the partition column makes
	// populate fail after the shard stores are open.
	src, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.CreateTable("proteins", store.MustSchema(
		store.Column{Name: "id", Kind: store.KindString},
	)); err != nil {
		t.Fatal(err)
	}

	before := openFDs(t)
	_, err = Partition(src, tree, Options{Shards: 3, QueryOptions: rowOptions(), Dir: t.TempDir()})
	if err == nil {
		t.Fatal("Partition over a keyless proteins table did not fail")
	}
	if after := openFDs(t); after != before {
		t.Fatalf("failed Partition leaked file descriptors: %d before, %d after", before, after)
	}

	// No manifest may be left behind by the failed run.
	dir := t.TempDir()
	if _, err := Partition(src, tree, Options{Shards: 3, QueryOptions: rowOptions(), Dir: dir}); err == nil {
		t.Fatal("Partition did not fail")
	}
	if _, err := os.Stat(manifestPath(dir)); !os.IsNotExist(err) {
		t.Fatalf("failed Partition left a completion manifest (stat err: %v)", err)
	}
}

// TestManifestFingerprint pins the fingerprint's sensitivity: row
// edits, additions, and topology changes all change it; scan order
// does not (the checksum is an order-independent sum).
func TestManifestFingerprint(t *testing.T) {
	mk := func(rows ...int64) *store.DB {
		db, err := store.Open("")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateTable("t", store.MustSchema(store.Column{Name: "v", Kind: store.KindInt})); err != nil {
			t.Fatal(err)
		}
		for _, v := range rows {
			if _, err := db.Insert("t", store.Row{store.IntValue(v)}); err != nil {
				t.Fatal(err)
			}
		}
		return db
	}
	base, err := fingerprint(mk(1, 2, 3), 2, []int64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		m    func() (*manifest, error)
		want bool
	}{
		{"same", func() (*manifest, error) { return fingerprint(mk(1, 2, 3), 2, []int64{0, 2}) }, true},
		{"reordered", func() (*manifest, error) { return fingerprint(mk(3, 1, 2), 2, []int64{0, 2}) }, true},
		{"edited-row", func() (*manifest, error) { return fingerprint(mk(1, 2, 4), 2, []int64{0, 2}) }, false},
		{"extra-row", func() (*manifest, error) { return fingerprint(mk(1, 2, 3, 3), 2, []int64{0, 2}) }, false},
		{"shard-count", func() (*manifest, error) { return fingerprint(mk(1, 2, 3), 3, []int64{0, 1, 2}) }, false},
		{"cuts", func() (*manifest, error) { return fingerprint(mk(1, 2, 3), 2, []int64{0, 1}) }, false},
	}
	for _, tc := range cases {
		m, err := tc.m()
		if err != nil {
			t.Fatal(err)
		}
		if got := base.equal(m); got != tc.want {
			t.Fatalf("%s: equal = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Round-trip through the on-disk encoding.
	dir := t.TempDir()
	if err := writeManifest(vfs.OS(), dir, base); err != nil {
		t.Fatal(err)
	}
	back, err := readManifest(vfs.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if !back.equal(base) {
		t.Fatalf("manifest round-trip diverged: %+v vs %+v", back, base)
	}
}
