package shard

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"drugtree/internal/admission"
	"drugtree/internal/query"
	"drugtree/internal/store"
)

func strVal(s string) store.Value { return store.StringValue(s) }

// TestClassification pins the strategy the classifier picks per
// statement shape: the differential matrix proves each class
// correct, this test proves the cheap classes are actually taken.
func TestClassification(t *testing.T) {
	db, tree := buildFixture(t, fixtureConfig(7))
	c := newCoordinator(t, db, tree, Options{Shards: 3, QueryOptions: rowOptions()})
	cases := []struct {
		q    string
		want class
	}{
		{"SELECT ligand_id FROM ligands", classReplicated},
		{"SELECT ligand_id FROM ligands WHERE weight > (SELECT AVG(weight) FROM ligands)", classReplicated},
		{"SELECT * FROM proteins", classScatter},
		{"SELECT p.accession, a.affinity FROM proteins p JOIN activities a ON p.accession = a.protein_id", classScatter},
		{"SELECT t.name, a.affinity FROM tree_nodes t JOIN activities a ON t.name = a.protein_id", classScatter},
		{"SELECT accession FROM proteins ORDER BY accession LIMIT 5", classScatterOrdered},
		{"SELECT family, COUNT(*) FROM proteins GROUP BY family", classPartialAgg},
		{"SELECT COUNT(*), AVG(affinity) FROM activities", classPartialAgg},
		{"SELECT COUNT(DISTINCT family) FROM proteins", classFallback},
		{"SELECT accession FROM proteins WHERE accession IN (SELECT protein_id FROM activities)", classFallback},
		// Partitioned tables joined without a partition-key equality
		// cannot run shard-local.
		{"SELECT p.accession FROM proteins p JOIN activities a ON p.length < a.affinity", classFallback},
	}
	for _, tc := range cases {
		stmt, err := query.Parse(tc.q)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.q, err)
		}
		pl, err := c.classify(stmt)
		if err != nil {
			t.Fatalf("classify %q: %v", tc.q, err)
		}
		if pl.class != tc.want {
			t.Fatalf("classify %q = %v, want %v", tc.q, pl.class, tc.want)
		}
	}
}

// TestExplainShardPruning checks that EXPLAIN surfaces the gather
// header with shard participation and pruning counts, and that
// EXPLAIN ANALYZE carries per-shard per-operator rows/batches
// annotations.
func TestExplainShardPruning(t *testing.T) {
	db, tree := buildFixture(t, fixtureConfig(7))
	c := newCoordinator(t, db, tree, Options{Shards: 3, QueryOptions: vecOptions()})
	ctx := context.Background()

	// A tight preorder range prunes to the single owning shard.
	res, err := c.Query(ctx, "EXPLAIN SELECT name FROM tree_nodes WHERE pre >= 1 AND pre <= 2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "Gather [shards=1 pruned=2 mode=scatter]") {
		t.Fatalf("EXPLAIN plan lacks pruned gather header:\n%s", res.Plan)
	}
	if !strings.Contains(res.Plan, "shard 0:") {
		t.Fatalf("EXPLAIN plan lacks per-shard section:\n%s", res.Plan)
	}

	// A directory-routed point lookup prunes to the accession's
	// owner.
	res, err = c.Query(ctx, "EXPLAIN SELECT family FROM proteins WHERE accession = 'DT00000'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "shards=1 pruned=2") {
		t.Fatalf("EXPLAIN point lookup not pruned:\n%s", res.Plan)
	}

	// A kind-mismatched literal on the partition key makes no pruning
	// claim: the engine coerces INT/FLOAT in `=`, so pre = 2.0 can
	// match rows the partitioner would route elsewhere.
	res, err = c.Query(ctx, "EXPLAIN SELECT name FROM tree_nodes WHERE pre = 2.0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "Gather [shards=3 pruned=0 mode=scatter]") {
		t.Fatalf("EXPLAIN float-literal lookup wrongly pruned:\n%s", res.Plan)
	}

	// An unconstrained scan participates everywhere.
	res, err = c.Query(ctx, "EXPLAIN SELECT * FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "Gather [shards=3 pruned=0 mode=scatter]") {
		t.Fatalf("EXPLAIN full scan header wrong:\n%s", res.Plan)
	}

	// EXPLAIN ANALYZE executes and annotates per-shard operators.
	res, err = c.Query(ctx, "EXPLAIN ANALYZE SELECT * FROM proteins WHERE length > 110")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != nil {
		t.Fatalf("EXPLAIN ANALYZE returned rows")
	}
	if !strings.Contains(res.Plan, "[rows=") || !strings.Contains(res.Plan, "batches=") {
		t.Fatalf("EXPLAIN ANALYZE lacks runtime counters:\n%s", res.Plan)
	}
	if res.Stats.RowsScanned+res.Stats.RowsIndexed == 0 {
		t.Fatalf("EXPLAIN ANALYZE did not merge shard stats")
	}

	// WITHIN_SUBTREE prunes through the tree's preorder interval:
	// the participating shard count must match the interval's span.
	clade := cladeName(tree)
	res, err = c.Query(ctx, fmt.Sprintf("EXPLAIN SELECT name FROM tree_nodes WHERE WITHIN_SUBTREE(pre, '%s')", clade))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := tree.SubtreeInterval(c.byName[clade])
	part := c.specs["tree_nodes"].keys[0].part
	lov, hiv := store.IntValue(int64(lo)), store.IntValue(int64(hi))
	span := part.RouteRange(&lov, &hiv)
	wantHeader := fmt.Sprintf("Gather [shards=%d pruned=%d mode=scatter]", len(span), 3-len(span))
	if !strings.Contains(res.Plan, wantHeader) {
		t.Fatalf("EXPLAIN subtree query header != %q:\n%s", wantHeader, res.Plan)
	}
}

// TestFailoverDegradedService fails one shard and requires queries —
// under the AllowPartial policy — to keep answering from the healthy
// remainder, with the loss visible in Health, annotated on results as
// SkippedShards, and the pruned point lookups still exact.
func TestFailoverDegradedService(t *testing.T) {
	db, tree := buildFixture(t, fixtureConfig(7))
	c := newCoordinator(t, db, tree, Options{Shards: 3, QueryOptions: rowOptions(), AllowPartial: true})
	ctx := context.Background()

	total, err := c.Query(ctx, "SELECT COUNT(*) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	want := total.Rows[0][0].I
	prot, err := db.Table("proteins")
	if err != nil {
		t.Fatal(err)
	}
	if int64(prot.Len()) != want {
		t.Fatalf("sharded COUNT(*) = %d, want %d", want, prot.Len())
	}

	// Fail the shard owning DT00000.
	victim := c.specs["proteins"].keys[0].part.Route(strVal("DT00000"))
	c.FailShard(victim)

	for _, h := range c.Health() {
		wantStatus := "ok"
		if h.Shard == victim {
			wantStatus = "failed"
		}
		if h.Status != wantStatus {
			t.Fatalf("shard %d status %q, want %q", h.Shard, h.Status, wantStatus)
		}
	}

	degraded, err := c.Query(ctx, "SELECT COUNT(*) FROM proteins")
	if err != nil {
		t.Fatalf("query against degraded topology: %v", err)
	}
	got := degraded.Rows[0][0].I
	if len(degraded.SkippedShards) != 1 || degraded.SkippedShards[0] != victim {
		t.Fatalf("degraded result SkippedShards = %v, want [%d]", degraded.SkippedShards, victim)
	}
	var victimRows int64
	vt, err := c.Shard(victim).DB().Table("proteins")
	if err != nil {
		t.Fatal(err)
	}
	victimRows = int64(vt.Len())
	if got != want-victimRows {
		t.Fatalf("degraded COUNT(*) = %d, want %d (total %d minus victim's %d)", got, want-victimRows, want, victimRows)
	}

	// A point lookup routed to the failed shard returns empty (served
	// by a healthy shard that provably lacks the row), not an error.
	res, err := c.Query(ctx, "SELECT family FROM proteins WHERE accession = 'DT00000'")
	if err != nil {
		t.Fatalf("point lookup on failed shard: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("point lookup on failed shard returned %d rows", len(res.Rows))
	}

	// The fallback path must also survive on the healthy remainder.
	if _, err := c.Query(ctx, "SELECT COUNT(DISTINCT family) FROM proteins"); err != nil {
		t.Fatalf("fallback on degraded topology: %v", err)
	}

	c.RestoreShard(victim)
	restored, err := c.Query(ctx, "SELECT COUNT(*) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	if restored.Rows[0][0].I != want {
		t.Fatalf("restored COUNT(*) = %d, want %d", restored.Rows[0][0].I, want)
	}
}

// TestPerShardAdmission gives every shard its own limiter and checks
// that saturating one shard sheds only queries routed to it.
func TestPerShardAdmission(t *testing.T) {
	db, tree := buildFixture(t, fixtureConfig(7))
	c := newCoordinator(t, db, tree, Options{
		Shards:       3,
		QueryOptions: rowOptions(),
		Admission:    &admission.Config{MaxConcurrency: 1, MaxQueue: 0},
	})
	ctx := context.Background()

	victim := c.specs["proteins"].keys[0].part.Route(strVal("DT00000"))
	release, err := c.Shard(victim).Limiter().Acquire(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}

	// The point lookup routed to the saturated shard sheds.
	_, err = c.Query(ctx, "SELECT family FROM proteins WHERE accession = 'DT00000'")
	if !admission.IsShed(err) {
		t.Fatalf("query to saturated shard: err = %v, want shed", err)
	}

	// A lookup owned by a different shard is admitted normally.
	other := -1
	var otherAcc string
	for i := 0; i < c.Shards(); i++ {
		if i == victim {
			continue
		}
		tab, err := c.Shard(i).DB().Table("proteins")
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range tab.Snapshot() {
			other, otherAcc = i, r[0].S
			break
		}
		if other >= 0 {
			break
		}
	}
	if other < 0 {
		t.Fatal("no other shard holds proteins")
	}
	res, err := c.Query(ctx, fmt.Sprintf("SELECT family FROM proteins WHERE accession = '%s'", otherAcc))
	if err != nil {
		t.Fatalf("query to unsaturated shard %d: %v", other, err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("point lookup returned %d rows, want 1", len(res.Rows))
	}
	release()

	// After release the victim admits again.
	if _, err := c.Query(ctx, "SELECT family FROM proteins WHERE accession = 'DT00000'"); err != nil {
		t.Fatalf("query after release: %v", err)
	}
}

// TestDurableReopen partitions into an on-disk directory, reopens
// over the same directory, and requires the reopened topology to
// reuse the persisted shard stores (same row counts, same results)
// rather than double-inserting.
func TestDurableReopen(t *testing.T) {
	db, tree := buildFixture(t, fixtureConfig(7))
	dir := t.TempDir()
	opts := Options{Shards: 3, QueryOptions: rowOptions(), Dir: dir}
	ctx := context.Background()

	c1, err := Partition(db, tree, opts)
	if err != nil {
		t.Fatal(err)
	}
	first, err := c1.Query(ctx, "SELECT COUNT(*), SUM(length) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	var perShard []int
	for i := 0; i < c1.Shards(); i++ {
		tab, err := c1.Shard(i).DB().Table("proteins")
		if err != nil {
			t.Fatal(err)
		}
		perShard = append(perShard, tab.Len())
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Partition(db, tree, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; i < c2.Shards(); i++ {
		tab, err := c2.Shard(i).DB().Table("proteins")
		if err != nil {
			t.Fatal(err)
		}
		if tab.Len() != perShard[i] {
			t.Fatalf("reopened shard %d has %d rows, want %d (duplicated repopulation?)", i, tab.Len(), perShard[i])
		}
	}
	second, err := c2.Query(ctx, "SELECT COUNT(*), SUM(length) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "durable-reopen", "SELECT COUNT(*), SUM(length) FROM proteins", -1, first, second)
}

// TestGatherTables checks the rebalancing primitive in isolation:
// gathered tables union the partitions, keep replicated tables
// single-copy, and carry the source indexes.
func TestGatherTables(t *testing.T) {
	db, tree := buildFixture(t, fixtureConfig(7))
	c := newCoordinator(t, db, tree, Options{Shards: 3, QueryOptions: rowOptions()})
	g, err := c.GatherTables(context.Background(), []string{"proteins", "ligands"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"proteins", "ligands"} {
		src, err := db.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != src.Len() {
			t.Fatalf("gathered %s has %d rows, want %d", name, got.Len(), src.Len())
		}
		for _, ix := range src.Indexes() {
			if typ, ok := got.HasIndex(ix.Column); !ok || typ != ix.Type {
				t.Fatalf("gathered %s lacks index on %s", name, ix.Column)
			}
		}
	}
}

// TestPartitionErrors pins the constructor's validation.
func TestPartitionErrors(t *testing.T) {
	db, tree := buildFixture(t, fixtureConfig(7))
	if _, err := Partition(db, tree, Options{Shards: 1, QueryOptions: rowOptions()}); err == nil {
		t.Fatal("Partition with 1 shard did not fail")
	}
	if _, err := Partition(db, nil, Options{Shards: 2, QueryOptions: rowOptions()}); err == nil {
		t.Fatal("Partition without tree did not fail")
	}
	if _, err := Partition(db, tree, Options{Shards: 3, QueryOptions: rowOptions(), Cuts: []int64{5}}); err == nil {
		t.Fatal("Partition with wrong cut count did not fail")
	}
	if _, err := Partition(db, tree, Options{Shards: 3, QueryOptions: rowOptions(), Cuts: []int64{9, 4}}); err == nil {
		t.Fatal("Partition with non-increasing cuts did not fail")
	}
}
