package shard

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"drugtree/internal/datagen"
	"drugtree/internal/lint/leaktest"
	"drugtree/internal/phylo"
	"drugtree/internal/query"
	"drugtree/internal/store"
)

// TestMain verifies that no test in this package strands a goroutine:
// every scatter fan-out must be fully joined by the time its query
// returns, including cancelled and failed gathers.
func TestMain(m *testing.M) {
	leaktest.VerifyTestMain(m)
}

// fixtureConfig returns the datagen configuration the shard tests
// partition: big enough that every shard holds real work at 3-4
// shards, small enough to keep the matrix fast.
func fixtureConfig(seed int64) datagen.Config {
	cfg := datagen.DefaultConfig()
	cfg.Seed = seed
	cfg.NumFamilies = 6
	cfg.ProteinsPerFamily = 20
	cfg.SeqLen = 40
	cfg.NumLigands = 40
	cfg.ActivityDensity = 0.5
	return cfg
}

// buildFixture materializes a generated dataset as the four-table
// store the differential corpus queries, plus its indexed tree.
// Unnamed internal tree nodes are given unique clade_<pre> names (the
// same scheme the serving engine applies), which makes the tree's
// name column a sound partition key and gives subtree queries
// named targets.
func buildFixture(t testing.TB, cfg datagen.Config) (*store.DB, *phylo.Tree) {
	t.Helper()
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tree := ds.TrueTree
	for i := 0; i < tree.Len(); i++ {
		id := phylo.NodeID(i)
		if tree.Node(id).Name == "" {
			tree.Node(id).Name = fmt.Sprintf("clade_%d", tree.Pre(id))
		}
	}
	db, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	prot, err := db.CreateTable("proteins", store.MustSchema(
		store.Column{Name: "accession", Kind: store.KindString},
		store.Column{Name: "family", Kind: store.KindString},
		store.Column{Name: "length", Kind: store.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	act, err := db.CreateTable("activities", store.MustSchema(
		store.Column{Name: "protein_id", Kind: store.KindString},
		store.Column{Name: "ligand_id", Kind: store.KindString},
		store.Column{Name: "affinity", Kind: store.KindFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	lig, err := db.CreateTable("ligands", store.MustSchema(
		store.Column{Name: "ligand_id", Kind: store.KindString},
		store.Column{Name: "weight", Kind: store.KindFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := db.CreateTable("tree_nodes", store.MustSchema(
		store.Column{Name: "pre", Kind: store.KindInt},
		store.Column{Name: "name", Kind: store.KindString},
		store.Column{Name: "is_leaf", Kind: store.KindBool},
	))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Proteins {
		prot.Insert(store.Row{
			store.StringValue(p.ID),
			store.StringValue(p.Family),
			store.IntValue(int64(100 + len(p.Residues))),
		})
	}
	for _, a := range ds.Activities {
		act.Insert(store.Row{
			store.StringValue(a.ProteinID),
			store.StringValue(a.LigandID),
			store.FloatValue(a.Affinity),
		})
	}
	for _, l := range ds.Ligands {
		lig.Insert(store.Row{store.StringValue(l.ID), store.FloatValue(l.Weight)})
	}
	for i := 0; i < tree.Len(); i++ {
		id := phylo.NodeID(i)
		nodes.Insert(store.Row{
			store.IntValue(int64(tree.Pre(id))),
			store.StringValue(tree.Node(id).Name),
			store.BoolValue(tree.Node(id).IsLeaf()),
		})
	}
	prot.CreateIndex("accession", store.IndexHash)
	prot.CreateIndex("family", store.IndexHash)
	prot.CreateIndex("length", store.IndexBTree)
	act.CreateIndex("protein_id", store.IndexHash)
	act.CreateIndex("affinity", store.IndexBTree)
	lig.CreateIndex("ligand_id", store.IndexHash)
	nodes.CreateIndex("pre", store.IndexBTree)
	return db, tree
}

func rowOptions() query.Options {
	o := query.DefaultOptions()
	o.Vectorized = false
	o.Parallelism = 1
	return o
}

func vecOptions() query.Options {
	o := query.DefaultOptions()
	o.Parallelism = 1
	return o
}

// newCoordinator partitions db and registers cleanup.
func newCoordinator(t testing.TB, db *store.DB, tree *phylo.Tree, opts Options) *Coordinator {
	t.Helper()
	c, err := Partition(db, tree, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// canonKey encodes a row for multiset comparison with floats rounded
// to 10 significant digits: scatter-gather merges associate SUM/AVG
// additions differently than a single-node run, so bit-exact float
// comparison is unsound.
func canonKey(r store.Row) string {
	var b []byte
	for _, v := range r {
		if v.K == store.KindFloat {
			b = append(b, fmt.Sprintf("|%.9e", v.F)...)
			continue
		}
		b = append(b, '|')
		b = store.AppendValue(b, v)
	}
	return string(b)
}

func canonValue(v store.Value) string {
	if v.K == store.KindFloat {
		return fmt.Sprintf("%.9e", v.F)
	}
	return string(store.AppendValue(nil, v))
}

// assertSameRows applies the differential comparison rules, which
// follow the coordinator's merge contract rather than raw byte order
// (single-node and sharded execution legitimately emit rows in
// different physical orders — shard-concatenation vs table order, and
// unspecified relative order among ORDER BY ties):
//
//   - identical row counts, always;
//   - ordered queries (keyPos >= 0): an identical sort-key sequence —
//     the only ordering the contract pins — plus, when no LIMIT can
//     cut a tie group mid-way, identical full-row multisets;
//   - unordered queries: identical full-row multisets, compared
//     order-insensitively.
//
// Unordered LIMIT (any-N-rows semantics) is excluded here and covered
// by TestShardedUnorderedLimit's subset check.
func assertSameRows(t *testing.T, label, q string, keyPos int, base, got *query.Result) {
	t.Helper()
	if len(base.Rows) != len(got.Rows) {
		t.Fatalf("query %q [%s]: row counts diverge: base %d, got %d", q, label, len(base.Rows), len(got.Rows))
	}
	sameMultiset := func() bool {
		counts := map[string]int{}
		for _, r := range base.Rows {
			counts[canonKey(r)]++
		}
		for _, r := range got.Rows {
			k := canonKey(r)
			counts[k]--
			if counts[k] < 0 {
				return false
			}
		}
		return true
	}
	if keyPos >= 0 {
		for j := range base.Rows {
			a, b := base.Rows[j][keyPos], got.Rows[j][keyPos]
			if a.K != b.K || canonValue(a) != canonValue(b) {
				t.Fatalf("query %q [%s]: sort key %d differs: %v vs %v", q, label, j, a, b)
			}
		}
		// With LIMIT, ties at the cut may legitimately keep different
		// rows per topology; without one, the full multisets must
		// agree even though tie order may not.
		if !hasLimit(q) && !sameMultiset() {
			t.Fatalf("query %q [%s]: ordered result multisets differ (%d rows each)", q, label, len(base.Rows))
		}
		return
	}
	if !sameMultiset() {
		t.Fatalf("query %q [%s]: result multisets differ (%d rows each)", q, label, len(base.Rows))
	}
}

// hasLimit reports whether the statement carries a LIMIT clause.
func hasLimit(q string) bool {
	stmt, err := query.Parse(q)
	if err != nil {
		return strings.Contains(strings.ToUpper(q), "LIMIT")
	}
	return stmt.Limit >= 0
}

// runFourWay executes q against the single-node row-serial baseline
// and the three other corners of the matrix — single-node vectorized,
// sharded row, sharded vectorized — and requires identical results.
func runFourWay(t *testing.T, f *fourWay, q string, keyPos int) {
	t.Helper()
	ctx := context.Background()
	base, err := f.singleRow.Query(ctx, q)
	if err != nil {
		t.Fatalf("query %q: single-node baseline: %v", q, err)
	}
	vec, err := f.singleVec.Query(ctx, q)
	if err != nil {
		t.Fatalf("query %q: single-node vectorized: %v", q, err)
	}
	assertSameRows(t, "single-vec", q, keyPos, base, vec)
	sr, err := f.shardRow.Query(ctx, q)
	if err != nil {
		t.Fatalf("query %q: sharded row: %v", q, err)
	}
	assertSameRows(t, "shard-row", q, keyPos, base, sr)
	sv, err := f.shardVec.Query(ctx, q)
	if err != nil {
		t.Fatalf("query %q: sharded vec: %v", q, err)
	}
	assertSameRows(t, "shard-vec", q, keyPos, base, sv)
}

// fourWay holds the engine matrix built over one fixture.
type fourWay struct {
	db        *store.DB
	tree      *phylo.Tree
	singleRow *query.Engine
	singleVec *query.Engine
	shardRow  *Coordinator
	shardVec  *Coordinator
}

func newFourWay(t testing.TB, cfg datagen.Config, shards int, cuts []int64) *fourWay {
	t.Helper()
	db, tree := buildFixture(t, cfg)
	return &fourWay{
		db:        db,
		tree:      tree,
		singleRow: query.NewEngine(query.NewDBCatalog(db, tree), rowOptions()),
		singleVec: query.NewEngine(query.NewDBCatalog(db, tree), vecOptions()),
		shardRow:  newCoordinator(t, db, tree, Options{Shards: shards, QueryOptions: rowOptions(), Cuts: cuts}),
		shardVec:  newCoordinator(t, db, tree, Options{Shards: shards, QueryOptions: vecOptions(), Cuts: cuts}),
	}
}

// cladeName returns the name of the first non-root internal node —
// a named subtree with a proper subset of the leaves.
func cladeName(tree *phylo.Tree) string {
	for i := 0; i < tree.Len(); i++ {
		id := phylo.NodeID(i)
		if !tree.Node(id).IsLeaf() && tree.Pre(id) != 0 {
			return tree.Node(id).Name
		}
	}
	return ""
}
