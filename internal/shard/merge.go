package shard

import (
	"context"
	"fmt"

	"drugtree/internal/query"
	"drugtree/internal/store"
)

// aggPlan is the decomposition of an aggregate statement into a
// per-shard partial statement, a coordinator-side merge, and a final
// local statement applying HAVING/ORDER/LIMIT to the merged groups.
//
// The shard statement computes mergeable partials only: COUNT and SUM
// re-aggregate by addition, MIN/MAX by comparison, and AVG is split
// into SUM+COUNT. The merge reproduces the single-node engine's type
// discipline exactly — COUNT stays INT and never NULL, SUM/AVG are
// FLOAT or NULL when no non-NULL input was seen, MIN/MAX keep the
// input kind — which a SQL-level re-aggregation (SUM of COUNTs)
// could not, since it would widen INT counts to FLOAT.
type aggPlan struct {
	shardStmt *query.SelectStmt
	groups    int          // leading __g columns in the shard output
	partials  []partialDef // trailing __p columns
	finals    []finalAgg   // merged aggregates, one __a column each
	finalStmt *query.SelectStmt
	tempCols  []string // gather-table columns: __g0.. then __a0..
}

// partialDef is one per-shard partial aggregate column.
type partialDef struct {
	fn query.AggFunc // AggCount, AggSum, AggMin, or AggMax
}

// finalAgg reconstructs one original aggregate from partials: a is
// the primary partial index (the count for COUNT, the sum for
// SUM/AVG, the extremum for MIN/MAX); b is AVG's count partial.
type finalAgg struct {
	fn   query.AggFunc
	a, b int
}

// aggBuilder accumulates the decomposition state while the
// classifier walks the statement.
type aggBuilder struct {
	groupRender []string
	partials    []*query.AggExpr
	partialIdx  map[string]int
	finals      []finalAgg
	finalIdx    map[string]int // agg render → final index
	aliasTemp   map[string]string
}

func (ab *aggBuilder) partial(a *query.AggExpr) int {
	r := a.String()
	if i, ok := ab.partialIdx[r]; ok {
		return i
	}
	i := len(ab.partials)
	ab.partials = append(ab.partials, a)
	ab.partialIdx[r] = i
	return i
}

// registerAgg maps one original aggregate to its partials, returning
// the final column index.
func (ab *aggBuilder) registerAgg(a *query.AggExpr) int {
	r := a.String()
	if i, ok := ab.finalIdx[r]; ok {
		return i
	}
	var f finalAgg
	f.fn = a.Func
	switch a.Func {
	case query.AggCount:
		f.a = ab.partial(&query.AggExpr{Func: query.AggCount, Arg: cloneExpr(a.Arg), Star: a.Star})
	case query.AggSum:
		f.a = ab.partial(&query.AggExpr{Func: query.AggSum, Arg: cloneExpr(a.Arg)})
	case query.AggAvg:
		f.a = ab.partial(&query.AggExpr{Func: query.AggSum, Arg: cloneExpr(a.Arg)})
		f.b = ab.partial(&query.AggExpr{Func: query.AggCount, Arg: cloneExpr(a.Arg)})
	case query.AggMin, query.AggMax:
		f.a = ab.partial(&query.AggExpr{Func: a.Func, Arg: cloneExpr(a.Arg)})
	}
	i := len(ab.finals)
	ab.finals = append(ab.finals, f)
	ab.finalIdx[r] = i
	return i
}

// rewriteFinal rebuilds e over the gather table's columns: whole
// group renders become __g refs, aggregates become __a refs, and
// unqualified refs to item aliases resolve through the alias map.
// ok is false when e reaches a leaf the merged groups cannot answer.
func (ab *aggBuilder) rewriteFinal(e query.Expr) (query.Expr, bool) {
	if e == nil {
		return nil, true
	}
	r := e.String()
	for i, gr := range ab.groupRender {
		if r == gr {
			return &query.ColumnRef{Name: fmt.Sprintf("__g%d", i)}, true
		}
	}
	switch x := e.(type) {
	case *query.AggExpr:
		return &query.ColumnRef{Name: fmt.Sprintf("__a%d", ab.registerAgg(x))}, true
	case *query.ColumnRef:
		if x.Qualifier == "" {
			if tc, ok := ab.aliasTemp[x.Name]; ok {
				return &query.ColumnRef{Name: tc}, true
			}
		}
		return nil, false
	case *query.Literal:
		return cloneExpr(x), true
	case *query.BinaryExpr:
		l, ok := ab.rewriteFinal(x.L)
		if !ok {
			return nil, false
		}
		rr, ok := ab.rewriteFinal(x.R)
		if !ok {
			return nil, false
		}
		return &query.BinaryExpr{Op: x.Op, L: l, R: rr}, true
	case *query.NotExpr:
		inner, ok := ab.rewriteFinal(x.E)
		if !ok {
			return nil, false
		}
		return &query.NotExpr{E: inner}, true
	case *query.NegExpr:
		inner, ok := ab.rewriteFinal(x.E)
		if !ok {
			return nil, false
		}
		return &query.NegExpr{E: inner}, true
	}
	return nil, false
}

// buildAggPlan decomposes an aggregate statement, or reports that it
// is not partial-mergeable (the caller falls back to a full gather).
func (c *Coordinator) buildAggPlan(stmt *query.SelectStmt, aliases []aliasInfo) (*aggPlan, bool) {
	ab := &aggBuilder{
		partialIdx: make(map[string]int),
		finalIdx:   make(map[string]int),
		aliasTemp:  make(map[string]string),
	}
	for _, g := range stmt.GroupBy {
		r := g.String()
		for _, prev := range ab.groupRender {
			if prev == r {
				// Duplicate group renders collide in the engine's
				// name dedup; not worth modelling.
				return nil, false
			}
		}
		ab.groupRender = append(ab.groupRender, r)
	}

	// Each output item must be a whole group expression or a bare
	// aggregate call — the same shapes the single-node aggregate
	// builder accepts.
	type itemRef struct {
		temp string
	}
	itemRefs := make([]itemRef, len(stmt.Items))
	for i, it := range stmt.Items {
		if it.Star {
			return nil, false
		}
		if a, ok := it.Expr.(*query.AggExpr); ok {
			itemRefs[i] = itemRef{temp: fmt.Sprintf("__a%d", ab.registerAgg(a))}
		} else {
			r := it.Expr.String()
			gi := -1
			for j, gr := range ab.groupRender {
				if gr == r {
					gi = j
					break
				}
			}
			if gi < 0 {
				return nil, false
			}
			itemRefs[i] = itemRef{temp: fmt.Sprintf("__g%d", gi)}
		}
		if it.Alias != "" {
			ab.aliasTemp[it.Alias] = itemRefs[i].temp
		}
	}

	having, ok := ab.rewriteFinal(stmt.Having)
	if !ok {
		return nil, false
	}
	var order []query.OrderKey
	for _, k := range stmt.Order {
		e, ok := ab.rewriteFinal(k.Expr)
		if !ok {
			return nil, false
		}
		order = append(order, query.OrderKey{Expr: e, Desc: k.Desc})
	}

	outNames, err := query.OutputColumns(cloneStmt(stmt), query.NewDBCatalog(c.shards[0].DB(), c.tree))
	if err != nil {
		return nil, false
	}
	if len(outNames) != len(stmt.Items) {
		return nil, false
	}

	// The per-shard statement: groups then partials, HAVING/ORDER/
	// LIMIT stripped (they only hold over fully merged groups).
	sp := &query.SelectStmt{From: stmt.From, Limit: -1}
	for _, j := range stmt.Joins {
		sp.Joins = append(sp.Joins, query.JoinClause{Table: j.Table, On: cloneExpr(j.On)})
	}
	sp.Where = cloneExpr(stmt.Where)
	for i, g := range stmt.GroupBy {
		sp.GroupBy = append(sp.GroupBy, cloneExpr(g))
		sp.Items = append(sp.Items, query.SelectItem{Expr: cloneExpr(g), Alias: fmt.Sprintf("__g%d", i)})
	}
	for i, p := range ab.partials {
		sp.Items = append(sp.Items, query.SelectItem{Expr: p, Alias: fmt.Sprintf("__p%d", i)})
	}

	tempCols := make([]string, 0, len(stmt.GroupBy)+len(ab.finals))
	for i := range stmt.GroupBy {
		tempCols = append(tempCols, fmt.Sprintf("__g%d", i))
	}
	for i := range ab.finals {
		tempCols = append(tempCols, fmt.Sprintf("__a%d", i))
	}

	fs := &query.SelectStmt{From: query.TableRef{Name: "gather"}, Where: having, Order: order, Limit: stmt.Limit}
	for i := range stmt.Items {
		fs.Items = append(fs.Items, query.SelectItem{
			Expr:  &query.ColumnRef{Name: itemRefs[i].temp},
			Alias: outNames[i],
		})
	}

	partials := make([]partialDef, len(ab.partials))
	for i, p := range ab.partials {
		partials[i] = partialDef{fn: p.Func}
	}
	return &aggPlan{
		shardStmt: sp,
		groups:    len(stmt.GroupBy),
		partials:  partials,
		finals:    ab.finals,
		finalStmt: fs,
		tempCols:  tempCols,
	}, true
}

// partialState accumulates one partial column across shards.
type partialState struct {
	cnt  int64
	sum  float64
	best store.Value
	seen bool
}

func (ps *partialState) absorb(fn query.AggFunc, v store.Value) {
	switch fn {
	case query.AggCount:
		// Shard counts are INT and never NULL.
		ps.cnt += v.I
	case query.AggSum:
		if !v.IsNull() {
			ps.sum += v.F
			ps.seen = true
		}
	case query.AggMin:
		if !v.IsNull() && (!ps.seen || store.Compare(v, ps.best) < 0) {
			ps.best, ps.seen = v, true
		}
	case query.AggMax:
		if !v.IsNull() && (!ps.seen || store.Compare(v, ps.best) > 0) {
			ps.best, ps.seen = v, true
		}
	}
}

// mergedGroup is one group key with its accumulated partials.
type mergedGroup struct {
	key      []store.Value
	partials []partialState
}

// runPartialAgg scatters the partial statement, merges the shard
// group tables with type-correct re-aggregation, and runs the final
// HAVING/ORDER/LIMIT statement over the merged groups in a temporary
// store.
func (c *Coordinator) runPartialAgg(ctx context.Context, stmt *query.SelectStmt, pl *plan) (*query.Result, error) {
	ap := pl.agg
	results, err := c.scatter(ctx, pl.participate, func(ctx context.Context, s *Shard) (*query.Result, error) {
		return c.runStmt(ctx, s, ap.shardStmt)
	})
	if err != nil {
		return nil, err
	}

	groups := make(map[string]*mergedGroup)
	var order []*mergedGroup
	var keyBuf []byte
	for _, r := range results {
		for _, row := range r.Rows {
			if len(row) != ap.groups+len(ap.partials) {
				return nil, fmt.Errorf("shard: partial row has %d columns, want %d", len(row), ap.groups+len(ap.partials))
			}
			keyBuf = keyBuf[:0]
			for _, v := range row[:ap.groups] {
				keyBuf = store.AppendValue(keyBuf, v)
			}
			g, ok := groups[string(keyBuf)]
			if !ok {
				g = &mergedGroup{
					key:      append([]store.Value(nil), row[:ap.groups]...),
					partials: make([]partialState, len(ap.partials)),
				}
				groups[string(keyBuf)] = g
				order = append(order, g)
			}
			for i, pd := range ap.partials {
				g.partials[i].absorb(pd.fn, row[ap.groups+i])
			}
		}
	}

	rows := make([]store.Row, 0, len(order))
	for _, g := range order {
		row := make(store.Row, 0, len(ap.tempCols))
		row = append(row, g.key...)
		for _, f := range ap.finals {
			row = append(row, finalValue(f, g.partials))
		}
		rows = append(rows, row)
	}

	res, err := c.runFinal(ctx, ap, rows)
	if err != nil {
		// A gather-table kind clash (a group expression mixing INT
		// and FLOAT across groups) is the one shape the temp schema
		// cannot hold; re-run through the exact fallback.
		return c.runFallback(ctx, stmt)
	}
	res.Stats = mergeStats(results)
	res.Stats.RowsReturned = int64(len(res.Rows))
	res.Plan = gatherHeader("partial-agg", len(pl.participate), pl.pruned, len(pl.skipped))
	return res, nil
}

// finalValue reconstructs one aggregate from merged partials with the
// engine's exact type and NULL discipline.
func finalValue(f finalAgg, partials []partialState) store.Value {
	switch f.fn {
	case query.AggCount:
		return store.IntValue(partials[f.a].cnt)
	case query.AggSum:
		if !partials[f.a].seen {
			return store.NullValue()
		}
		return store.FloatValue(partials[f.a].sum)
	case query.AggAvg:
		if partials[f.b].cnt == 0 {
			return store.NullValue()
		}
		return store.FloatValue(partials[f.a].sum / float64(partials[f.b].cnt))
	default: // AggMin, AggMax
		if !partials[f.a].seen {
			return store.NullValue()
		}
		return partials[f.a].best
	}
}

// runFinal loads the merged groups into an in-memory gather table and
// executes the final statement on a local engine.
func (c *Coordinator) runFinal(ctx context.Context, ap *aggPlan, rows []store.Row) (*query.Result, error) {
	cols := make([]store.Column, len(ap.tempCols))
	for i, name := range ap.tempCols {
		kind := store.KindInt
		for _, r := range rows {
			if !r[i].IsNull() {
				kind = r[i].K
				break
			}
		}
		cols[i] = store.Column{Name: name, Kind: kind}
	}
	schema, err := store.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	db, err := store.Open("")
	if err != nil {
		return nil, err
	}
	if _, err := db.CreateTable("gather", schema); err != nil {
		return nil, err
	}
	for _, r := range rows {
		if _, err := db.Insert("gather", r); err != nil {
			return nil, err
		}
	}
	eng := query.NewEngine(query.NewDBCatalog(db, c.tree), c.opts.QueryOptions)
	return eng.Run(ctx, cloneStmt(ap.finalStmt))
}
