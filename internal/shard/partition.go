// Package shard partitions a DrugTree database across N in-process
// shard instances — each owning its own store (with its own WAL when
// durable), secondary indexes, query engine, and admission limiter —
// and serves DTQL through a coordinator that plans once, fans
// subplans out over the shards' morsel/vectorized executors, and
// merges the gathered results (partial re-aggregation for GROUP BY,
// top-k merge for ORDER BY/LIMIT, full gather as the correctness
// fallback).
//
// Placement follows the phylogeny, the axis the paper's workload
// navigates: tree_nodes is range-partitioned on the preorder number
// (each shard owns a contiguous subtree interval), and proteins,
// activities, and annotations follow their protein's leaf through a
// shared name→shard directory, so protein–activity joins and
// tree–activity joins are co-partitioned and execute shard-locally.
// Small reference tables (ligands, annotations-free lookups) are
// replicated to every shard.
package shard

import (
	"fmt"
	"path/filepath"

	"drugtree/internal/admission"
	"drugtree/internal/netsim"
	"drugtree/internal/phylo"
	"drugtree/internal/query"
	"drugtree/internal/replica"
	"drugtree/internal/store"
)

// Partitioner maps a partition-key value to a shard index. Two table
// columns are co-partitioned exactly when their specs reference the
// same Partitioner instance: equality of values then implies equality
// of shard, which is what makes a distributed equi-join shard-local.
type Partitioner interface {
	// Route returns the shard owning rows whose key equals v.
	Route(v store.Value) int
	// RouteRange returns the shards that may own keys in [lo, hi]
	// (nil bounds are open). Partitioners without range structure
	// return every shard.
	RouteRange(lo, hi *store.Value) []int
	// Shards returns the shard count.
	Shards() int
}

// rangePartitioner assigns contiguous integer intervals: shard i owns
// keys in [starts[i], starts[i+1]). starts[0] is the global minimum;
// a key exactly on a boundary belongs to the shard whose interval it
// starts (the boundary tests pin this).
type rangePartitioner struct {
	starts []int64
}

func (r *rangePartitioner) Shards() int { return len(r.starts) }

func (r *rangePartitioner) Route(v store.Value) int {
	if v.K != store.KindInt {
		return 0
	}
	for i := len(r.starts) - 1; i >= 0; i-- {
		if v.I >= r.starts[i] {
			return i
		}
	}
	return 0
}

func (r *rangePartitioner) RouteRange(lo, hi *store.Value) []int {
	first, last := 0, len(r.starts)-1
	if lo != nil && lo.K == store.KindInt {
		first = r.Route(*lo)
	}
	if hi != nil && hi.K == store.KindInt {
		last = r.Route(*hi)
	}
	if first > last {
		return nil
	}
	out := make([]int, 0, last-first+1)
	for i := first; i <= last; i++ {
		out = append(out, i)
	}
	return out
}

// dirPartitioner routes string keys through an explicit directory
// (protein accession / tree-node name → owning shard), falling back
// to a value hash for keys outside the directory so unknown keys
// still route consistently across all tables sharing the instance.
type dirPartitioner struct {
	dir map[string]int
	n   int
}

func (d *dirPartitioner) Shards() int { return d.n }

func (d *dirPartitioner) Route(v store.Value) int {
	if v.K == store.KindString {
		if s, ok := d.dir[v.S]; ok {
			return s
		}
	}
	return int(v.Hash() % uint64(d.n))
}

func (d *dirPartitioner) RouteRange(lo, hi *store.Value) []int {
	out := make([]int, d.n)
	for i := range out {
		out[i] = i
	}
	return out
}

// partKey is one partition key of a table: routing uses the first
// key; additional keys are co-partitioning claims that must agree
// with the first for every row (verified at partition time).
type partKey struct {
	column string
	part   Partitioner
}

// tableSpec is a table's partitioning: nil keys means replicated.
type tableSpec struct {
	keys []partKey
}

// Options configures Partition.
type Options struct {
	// Shards is the partition count; values below 2 are rejected
	// (0/1 is the single-node path and never reaches this package).
	Shards int
	// Dir, when non-empty, makes each shard durable in
	// Dir/shard-<i> with its own snapshot and WAL. A completed
	// partitioning writes Dir/MANIFEST (topology plus per-table
	// source fingerprints); reopening an engine over the same Dir
	// reuses the populated shard stores only when the manifest
	// matches the current source, and re-partitions from scratch
	// when it is absent (interrupted populate) or mismatched
	// (changed dataset or topology). Empty keeps shards in memory.
	Dir string
	// QueryOptions configures each shard's DTQL engine.
	QueryOptions query.Options
	// Admission, when set, gives every shard its own limiter with
	// this configuration, so one overloaded partition sheds without
	// dragging its siblings down.
	Admission *admission.Config
	// Cuts overrides the preorder interval boundaries (len must be
	// Shards-1, strictly increasing). Tests use it to force skew:
	// empty shards, or every row on one shard.
	Cuts []int64
	// Replicas, when positive, wraps every shard in a replica set:
	// one leader plus Replicas followers kept current by WAL
	// shipping, with read subplans routed across the set. WAL
	// shipping needs a log, so an in-memory topology (empty Dir) gets
	// a private temporary durability root that lives and dies with
	// the coordinator. 0 keeps the single-store path.
	Replicas int
	// MaxLagSeqs bounds replica read staleness: a follower more than
	// this many WAL records behind its set's frontier is skipped by
	// the read router. 0 demands fully-caught-up followers; negative
	// disables the bound.
	MaxLagSeqs int64
	// AllowPartial serves queries that need unavailable shards (every
	// replica down) from the reachable ones, annotating the result
	// with SkippedShards, instead of failing with ErrShardUnavailable.
	AllowPartial bool
	// Clock is the replication time source (promotion latency is
	// measured through it). Defaults to the wall clock; the chaos
	// experiments inject a virtual one.
	Clock netsim.Clock
}

// Partition splits src across opts.Shards shard stores and returns
// the coordinator serving them. The source database is read, never
// mutated; the sharded topology is a point-in-time partitioning of
// it, matching the engine's build-then-serve lifecycle.
func Partition(src *store.DB, tree *phylo.Tree, opts Options) (*Coordinator, error) {
	n := opts.Shards
	if n < 2 {
		return nil, fmt.Errorf("shard: need at least 2 shards, got %d", n)
	}
	if tree == nil || !tree.Indexed() {
		return nil, fmt.Errorf("shard: partitioning requires an indexed tree")
	}
	starts, err := preCuts(tree.Len(), n, opts.Cuts)
	if err != nil {
		return nil, err
	}
	rangePart := &rangePartitioner{starts: starts}

	// The directory maps every uniquely named tree node to the shard
	// owning its preorder number; proteins and activities follow
	// their leaf. When all names are unique the tree's name column
	// is itself a sound partition key (t.name = a.protein_id joins
	// run shard-local); duplicate or empty names void that claim.
	dir := make(map[string]int, tree.Len())
	namesUnique := true
	for i := 0; i < tree.Len(); i++ {
		id := phylo.NodeID(i)
		name := tree.Node(id).Name
		if name == "" {
			namesUnique = false
			continue
		}
		if _, dup := dir[name]; dup {
			namesUnique = false
			continue
		}
		dir[name] = rangePart.Route(store.IntValue(int64(tree.Pre(id))))
	}
	dirPart := &dirPartitioner{dir: dir, n: n}

	specs := make(map[string]tableSpec)
	for _, name := range src.TableNames() {
		switch name {
		case "proteins":
			specs[name] = tableSpec{keys: []partKey{{"accession", dirPart}}}
		case "activities", "annotations":
			specs[name] = tableSpec{keys: []partKey{{"protein_id", dirPart}}}
		case "tree_nodes":
			keys := []partKey{{"pre", rangePart}}
			if namesUnique {
				keys = append(keys, partKey{"name", dirPart})
			}
			specs[name] = tableSpec{keys: keys}
		}
	}

	// Every shard store, the manifest, and the temp durability root go
	// through the source store's filesystem seam and inherit its fsync
	// policy, so a FaultFS injected at the source covers the whole
	// sharded topology.
	fsys := src.FS()
	c := &Coordinator{
		tree:  tree,
		opts:  opts,
		specs: specs,
		fsys:  fsys,
	}
	for i := 0; i < tree.Len(); i++ {
		id := phylo.NodeID(i)
		if name := tree.Node(id).Name; name != "" {
			if c.byName == nil {
				c.byName = make(map[string]phylo.NodeID, tree.Len())
			}
			if _, dup := c.byName[name]; !dup {
				c.byName[name] = id
			}
		}
	}
	if opts.Replicas > 0 && opts.Dir == "" {
		td, err := fsys.MkdirTemp("", "drugtree-shards-")
		if err != nil {
			return nil, fmt.Errorf("shard: replica durability root: %w", err)
		}
		opts.Dir = td
		c.tempDir = td
		c.opts.Dir = td
	}
	done := false
	defer func() {
		if !done && c.tempDir != "" {
			fsys.RemoveAll(c.tempDir)
		}
	}()

	// Durable topologies are crash-safe through a completion
	// manifest: only a previous run that populated and checkpointed
	// every shard left one behind, and it must still describe the
	// current source. Anything else — an interrupted populate, a
	// re-generated dataset under the same -dir, a changed shard
	// count or cuts — wipes the shard directories and re-partitions,
	// never trusting a nonzero table length as proof of completeness.
	durable := opts.Dir != ""
	var fp *manifest
	preloaded := false
	if durable {
		var err error
		fp, err = fingerprint(src, n, starts)
		if err != nil {
			return nil, err
		}
		if prev, err := readManifest(fsys, opts.Dir); err == nil && prev.equal(fp) {
			preloaded = true
		} else {
			fsys.Remove(manifestPath(opts.Dir))
			for i := 0; i < n; i++ {
				if err := fsys.RemoveAll(filepath.Join(opts.Dir, fmt.Sprintf("shard-%d", i))); err != nil {
					return nil, fmt.Errorf("shard: clearing stale shard %d: %w", i, err)
				}
			}
		}
	}

	// From here on shard stores (and their WALs) are open: every
	// error path must close what was opened so a failed construction
	// does not leak file handles.
	closeAll := func() {
		for _, s := range c.shards {
			s.db.Close()
		}
	}
	for i := 0; i < n; i++ {
		dir := ""
		if durable {
			dir = filepath.Join(opts.Dir, fmt.Sprintf("shard-%d", i))
		}
		db, err := store.OpenWith(dir, src.Opts())
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s := &Shard{id: i, db: db}
		s.engine = query.NewEngine(query.NewDBCatalog(db, tree), opts.QueryOptions)
		if opts.Admission != nil {
			ac := *opts.Admission
			if ac.Name == "" {
				ac.Name = fmt.Sprintf("shard-%d", i)
			} else {
				ac.Name = fmt.Sprintf("%s-shard-%d", ac.Name, i)
			}
			s.limiter = admission.NewLimiter(ac)
		}
		c.shards = append(c.shards, s)
	}
	if err := c.populate(src, preloaded); err != nil {
		closeAll()
		return nil, err
	}
	if durable && !preloaded {
		for i, s := range c.shards {
			if err := s.db.Checkpoint(); err != nil {
				closeAll()
				return nil, fmt.Errorf("shard %d checkpoint: %w", i, err)
			}
		}
		if err := writeManifest(fsys, opts.Dir, fp); err != nil {
			closeAll()
			return nil, err
		}
	}
	// Replica sets wrap the populated leaders last, so followers seed
	// from the complete partitioning in one snapshot each.
	if opts.Replicas > 0 {
		for i, s := range c.shards {
			set, err := replica.NewSet(s.db, replica.Config{
				Followers:  opts.Replicas,
				MaxLagSeqs: opts.MaxLagSeqs,
				Clock:      opts.Clock,
				OpenEngine: func(db *store.DB) *query.Engine {
					return query.NewEngine(query.NewDBCatalog(db, tree), opts.QueryOptions)
				},
			}, func() { c.epoch.Add(1) })
			if err != nil {
				// NewSet closed shard i's leader on its own failure;
				// close the sets already built and the untouched leaders.
				for _, t := range c.shards {
					if t.set != nil {
						t.set.Close()
					} else if t != s {
						t.db.Close()
					}
				}
				return nil, fmt.Errorf("shard %d replicas: %w", i, err)
			}
			s.set = set
		}
	}
	done = true
	return c, nil
}

// preCuts computes the shards' preorder interval starts: even splits
// of [0, total) by default, or the explicit cut overrides.
func preCuts(total, n int, cuts []int64) ([]int64, error) {
	starts := make([]int64, n)
	if cuts == nil {
		for i := 1; i < n; i++ {
			starts[i] = int64(i * total / n)
		}
		return starts, nil
	}
	if len(cuts) != n-1 {
		return nil, fmt.Errorf("shard: %d cuts for %d shards, want %d", len(cuts), n, n-1)
	}
	prev := int64(0)
	for i, cut := range cuts {
		if cut <= prev {
			return nil, fmt.Errorf("shard: cuts must be positive and strictly increasing")
		}
		starts[i+1] = cut
		prev = cut
	}
	return starts, nil
}

// populate copies src's tables into the shard stores: partitioned
// tables route each row by the first key (verifying that any
// additional co-partitioning keys agree), replicated tables are
// copied to every shard. preloaded means a valid completion manifest
// proved the durable shard stores already hold the full partitioning,
// so only the schema and index layout are (idempotently) ensured —
// never a table-length heuristic, which cannot distinguish a complete
// shard from one interrupted mid-populate.
func (c *Coordinator) populate(src *store.DB, preloaded bool) error {
	for _, name := range src.TableNames() {
		srcTab, err := src.Table(name)
		if err != nil {
			return err
		}
		schema := srcTab.Schema()
		spec := c.specs[name]
		var keyIdx []int
		for _, k := range spec.keys {
			ci := schema.ColumnIndex(k.column)
			if ci < 0 {
				return fmt.Errorf("shard: table %s lacks partition column %q", name, k.column)
			}
			keyIdx = append(keyIdx, ci)
		}
		tabs := make([]*store.Table, len(c.shards))
		for i, s := range c.shards {
			tab, err := s.db.Table(name)
			if err != nil {
				tab, err = s.db.CreateTable(name, schema)
				if err != nil {
					return fmt.Errorf("shard %d: %w", i, err)
				}
			}
			tabs[i] = tab
		}
		if !preloaded {
			var rerr error
			srcTab.Scan(func(_ int64, r store.Row) bool {
				if len(spec.keys) == 0 {
					for _, s := range c.shards {
						if _, err := s.db.Insert(name, r); err != nil {
							rerr = err
							return false
						}
					}
					return true
				}
				owner := spec.keys[0].part.Route(r[keyIdx[0]])
				for k := 1; k < len(spec.keys); k++ {
					if alt := spec.keys[k].part.Route(r[keyIdx[k]]); alt != owner {
						rerr = fmt.Errorf("shard: table %s row routes to shard %d by %s but %d by %s",
							name, owner, spec.keys[0].column, alt, spec.keys[k].column)
						return false
					}
				}
				if _, err := c.shards[owner].db.Insert(name, r); err != nil {
					rerr = err
					return false
				}
				return true
			})
			if rerr != nil {
				return rerr
			}
		}
		for i, tab := range tabs {
			for _, ix := range srcTab.Indexes() {
				if err := tab.CreateIndex(ix.Column, ix.Type); err != nil {
					return fmt.Errorf("shard %d: index %s.%s: %w", i, name, ix.Column, err)
				}
			}
		}
	}
	return nil
}
