package shard

import (
	"fmt"
	"testing"

	"drugtree/internal/phylo"
	"drugtree/internal/query"
	"drugtree/internal/store"
)

// skewCorpus is the query subset the skew topologies replay: one per
// coordinator merge path (scatter, co-partitioned join, partial
// aggregation, top-k merge, pruned range, subtree).
func skewCorpus(clade string) []struct {
	q      string
	keyPos int
} {
	return []struct {
		q      string
		keyPos int
	}{
		{"SELECT * FROM proteins", -1},
		{"SELECT p.accession, a.ligand_id FROM proteins p JOIN activities a ON p.accession = a.protein_id", -1},
		{"SELECT family, COUNT(*), AVG(length) FROM proteins GROUP BY family", -1},
		{"SELECT COUNT(*), SUM(affinity), MIN(affinity), MAX(affinity) FROM activities", -1},
		{"SELECT accession, length FROM proteins ORDER BY length DESC LIMIT 7", 1},
		{"SELECT pre, name FROM tree_nodes WHERE pre >= 10 AND pre <= 40", -1},
		{fmt.Sprintf("SELECT name FROM tree_nodes WHERE WITHIN_SUBTREE(pre, '%s') AND is_leaf = TRUE", clade), -1},
	}
}

// TestShardSkewTopologies re-runs the differential subset over
// deliberately unbalanced interval cuts: every row on the first
// shard (the rest empty), every tree row past pre 3 on the last
// shard, and a lopsided middle split. Empty shards must contribute
// empty partials — not errors — to every merge path.
func TestShardSkewTopologies(t *testing.T) {
	db, tree := buildFixture(t, fixtureConfig(7))
	n := int64(tree.Len())
	cases := []struct {
		name string
		cuts []int64
	}{
		{"all-on-first", []int64{n, n + 1, n + 2}},
		{"all-on-last", []int64{1, 2, 3}},
		{"lopsided", []int64{1, n / 2, n/2 + 1}},
	}
	clade := cladeName(tree)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := &fourWay{
				db:        db,
				tree:      tree,
				singleRow: newSingle(db, tree, rowOptions()),
				singleVec: newSingle(db, tree, vecOptions()),
				shardRow:  newCoordinator(t, db, tree, Options{Shards: 4, QueryOptions: rowOptions(), Cuts: tc.cuts}),
				shardVec:  newCoordinator(t, db, tree, Options{Shards: 4, QueryOptions: vecOptions(), Cuts: tc.cuts}),
			}
			for _, c := range skewCorpus(clade) {
				runFourWay(t, f, c.q, c.keyPos)
			}
		})
	}
	// Sanity on the extreme topologies: all-on-first really does
	// leave shards 1..3 empty.
	c := newCoordinator(t, db, tree, Options{Shards: 4, QueryOptions: rowOptions(), Cuts: []int64{n, n + 1, n + 2}})
	for _, h := range c.Health() {
		if h.Shard == 0 && h.Rows == 0 {
			t.Fatalf("all-on-first: shard 0 holds no rows")
		}
		if h.Shard > 0 && h.Rows != 0 {
			t.Fatalf("all-on-first: shard %d holds %d rows, want 0", h.Shard, h.Rows)
		}
	}
}

// TestPartitionBoundaryPredicates queries partition-key values that
// sit exactly on an interval cut: the boundary value belongs to the
// shard whose interval it starts, and predicates straddling the cut
// must gather from both sides.
func TestPartitionBoundaryPredicates(t *testing.T) {
	db, tree := buildFixture(t, fixtureConfig(7))
	n := int64(tree.Len())
	cut := n / 2
	cuts := []int64{cut / 2, cut, cut + cut/2}
	f := &fourWay{
		db:        db,
		tree:      tree,
		singleRow: newSingle(db, tree, rowOptions()),
		singleVec: newSingle(db, tree, vecOptions()),
		shardRow:  newCoordinator(t, db, tree, Options{Shards: 4, QueryOptions: rowOptions(), Cuts: cuts}),
		shardVec:  newCoordinator(t, db, tree, Options{Shards: 4, QueryOptions: vecOptions(), Cuts: cuts}),
	}
	queries := []string{
		fmt.Sprintf("SELECT pre, name FROM tree_nodes WHERE pre = %d", cut),
		fmt.Sprintf("SELECT pre, name FROM tree_nodes WHERE pre = %d", cut-1),
		fmt.Sprintf("SELECT pre FROM tree_nodes WHERE pre >= %d", cut),
		fmt.Sprintf("SELECT pre FROM tree_nodes WHERE pre <= %d", cut),
		fmt.Sprintf("SELECT pre FROM tree_nodes WHERE pre > %d AND pre < %d", cut-2, cut+2),
		fmt.Sprintf("SELECT pre FROM tree_nodes WHERE pre BETWEEN %d AND %d", cut-1, cut),
		fmt.Sprintf("SELECT COUNT(*) FROM tree_nodes WHERE pre >= %d AND pre <= %d", cut, cut),
		// Kind-mismatched literals on the INT partition key: the
		// engine's `=` coerces INT/FLOAT, so %d.0 matches the pre=%d
		// row — the planner must not route the FLOAT literal through
		// the range partitioner (which would prune to shard 0).
		fmt.Sprintf("SELECT pre, name FROM tree_nodes WHERE pre = %d.0", cut),
		fmt.Sprintf("SELECT pre, name FROM tree_nodes WHERE pre = %d.5", cut),
		fmt.Sprintf("SELECT pre FROM tree_nodes WHERE pre >= %d.0", cut),
	}
	for _, q := range queries {
		runFourWay(t, f, q, -1)
	}
}

// TestRangePartitionerBoundaries pins the interval arithmetic
// directly: starts[i] is owned by shard i, starts[i]-1 by shard i-1.
func TestRangePartitionerBoundaries(t *testing.T) {
	p := &rangePartitioner{starts: []int64{0, 10, 20}}
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {9, 0}, {10, 1}, {19, 1}, {20, 2}, {1000, 2},
	}
	for _, c := range cases {
		if got := p.Route(store.IntValue(c.v)); got != c.want {
			t.Fatalf("Route(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	iv := func(v int64) *store.Value { x := store.IntValue(v); return &x }
	rangeCases := []struct {
		lo, hi *store.Value
		want   []int
	}{
		{iv(0), iv(9), []int{0}},
		{iv(9), iv(10), []int{0, 1}},
		{iv(10), iv(19), []int{1}},
		{iv(5), iv(25), []int{0, 1, 2}},
		{nil, iv(3), []int{0}},
		{iv(20), nil, []int{2}},
		{iv(15), iv(5), nil},
	}
	for _, c := range rangeCases {
		got := p.RouteRange(c.lo, c.hi)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Fatalf("RouteRange(%v, %v) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

// TestShardedZipfSkewCorpus partitions a zipf-skewed dataset — the
// datagen knob concentrates activity rows on low-numbered proteins,
// so shard row counts differ wildly — and requires the matrix to
// agree anyway.
func TestShardedZipfSkewCorpus(t *testing.T) {
	cfg := fixtureConfig(11)
	cfg.ActivitySkew = 1.5
	f := newFourWay(t, cfg, 3, nil)
	queries := []struct {
		q      string
		keyPos int
	}{
		{"SELECT protein_id, ligand_id FROM activities", -1},
		{"SELECT protein_id, COUNT(*), AVG(affinity) FROM activities GROUP BY protein_id", -1},
		{"SELECT p.family, COUNT(*) FROM proteins p JOIN activities a ON p.accession = a.protein_id GROUP BY p.family", -1},
		{"SELECT protein_id, affinity FROM activities ORDER BY affinity DESC LIMIT 9", 1},
		{"SELECT COUNT(*), SUM(affinity) FROM activities", -1},
	}
	for _, c := range queries {
		runFourWay(t, f, c.q, c.keyPos)
	}
	// The skew must be real: the busiest shard holds at least twice
	// the rows of the emptiest.
	var lo, hi int64 = 1 << 62, 0
	for _, h := range f.shardRow.Health() {
		if h.Rows < lo {
			lo = h.Rows
		}
		if h.Rows > hi {
			hi = h.Rows
		}
	}
	if hi < 2*lo {
		t.Fatalf("zipf fixture not skewed: shard rows range [%d, %d]", lo, hi)
	}
}

// newSingle builds a single-node engine over the shared fixture.
func newSingle(db *store.DB, tree *phylo.Tree, opts query.Options) *query.Engine {
	return query.NewEngine(query.NewDBCatalog(db, tree), opts)
}
