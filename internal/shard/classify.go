package shard

import (
	"fmt"

	"drugtree/internal/query"
	"drugtree/internal/store"
)

// class is the execution strategy the classifier picks for a
// statement. The planner is deliberately conservative: any shape it
// cannot prove merge-sound falls back to a full gather, which
// reproduces single-node semantics exactly. The differential matrix
// is what licenses each non-fallback class.
type class int

const (
	// classReplicated: every referenced table is replicated; answer
	// from one healthy shard, prune the rest.
	classReplicated class = iota
	// classScatter: run the statement verbatim on each participating
	// shard and concatenate.
	classScatter
	// classScatterOrdered: push ORDER BY/LIMIT down for per-shard
	// top-k, merge-sort the partials on exposed key columns.
	classScatterOrdered
	// classPartialAgg: per-shard partial aggregation, type-correct
	// re-aggregation at the coordinator, final HAVING/ORDER/LIMIT
	// over the merged groups.
	classPartialAgg
	// classFallback: gather referenced tables to a temporary store
	// and execute the original statement locally.
	classFallback
)

func (c class) String() string {
	switch c {
	case classReplicated:
		return "replicated"
	case classScatter:
		return "scatter"
	case classScatterOrdered:
		return "scatter-ordered"
	case classPartialAgg:
		return "partial-agg"
	default:
		return "gather-fallback"
	}
}

// mergeKey is one coordinator-side sort key of an ordered merge.
type mergeKey struct {
	pos  int // column position in the shard results
	desc bool
}

// plan is the classifier's output: the class plus everything the
// execution paths need.
type plan struct {
	class       class
	participate []int // healthy shard ids running the statement
	pruned      int   // shards excluded by partition-key predicates
	// skipped lists unavailable shards (every replica down) whose rows
	// the answer may need — the predicates did not prune them. Run
	// refuses such plans unless Options.AllowPartial opted in.
	skipped    []int
	shardStmt  *query.SelectStmt
	hiddenKeys int // trailing __k columns appended for the merge
	mergeKeys  []mergeKey
	agg        *aggPlan
}

// aliasInfo is one resolved FROM/JOIN entry.
type aliasInfo struct {
	alias  string
	table  string
	schema *store.Schema
	spec   tableSpec
}

// classify inspects stmt and picks the cheapest strategy whose merge
// is provably equivalent to single-node execution.
func (c *Coordinator) classify(stmt *query.SelectStmt) (*plan, error) {
	healthy := c.healthy()
	if len(healthy) == 0 {
		return nil, &UnavailableError{Shards: c.deadShards()}
	}
	fallback := &plan{class: classFallback, participate: healthy}

	aliases, ok := c.resolveAliases(stmt)
	if !ok {
		// Unknown table or duplicate alias: the fallback engine (or
		// the shard engine it feeds) reports the single-node error.
		return fallback, nil
	}
	partitioned := 0
	for _, a := range aliases {
		if len(a.spec.keys) > 0 {
			partitioned++
		}
	}
	if partitioned == 0 {
		// Replicated tables are whole on every shard; any healthy one
		// answers completely, so down shards cost no rows.
		return &plan{class: classReplicated, participate: healthy[:1], pruned: len(c.shards) - 1}, nil
	}
	// Partitioned rows on an unavailable shard cannot be gathered or
	// scattered over; every plan built past this point carries the
	// list for the coordinator's availability policy.
	fallback.skipped = c.deadShards()
	if hasSubquery(stmt) || hasDistinctAgg(stmt) {
		return fallback, nil
	}
	for _, it := range stmt.Items {
		if len(it.Alias) >= 2 && it.Alias[:2] == "__" {
			// User aliases in the coordinator's reserved namespace
			// would collide with hidden merge columns.
			return fallback, nil
		}
	}
	if partitioned > 1 && !c.coPartitioned(stmt, aliases) {
		return fallback, nil
	}

	participate, pruned, skipped := c.pruneShards(stmt, aliases, healthy)

	isAgg := len(stmt.GroupBy) > 0 || stmt.Having != nil
	for _, it := range stmt.Items {
		if !it.Star && containsAggExpr(it.Expr) {
			isAgg = true
		}
	}
	if isAgg {
		ap, ok := c.buildAggPlan(stmt, aliases)
		if !ok {
			return fallback, nil
		}
		return &plan{class: classPartialAgg, participate: participate, pruned: pruned, skipped: skipped, agg: ap}, nil
	}
	if len(stmt.Order) > 0 {
		sp, keys, hidden, ok := buildOrderedShardStmt(stmt)
		if !ok {
			return fallback, nil
		}
		return &plan{
			class: classScatterOrdered, participate: participate, pruned: pruned, skipped: skipped,
			shardStmt: sp, mergeKeys: keys, hiddenKeys: hidden,
		}, nil
	}
	return &plan{class: classScatter, participate: participate, pruned: pruned, skipped: skipped}, nil
}

// resolveAliases maps the statement's FROM/JOIN entries to tables,
// schemas, and partition specs. ok is false on unknown tables or
// duplicate aliases.
func (c *Coordinator) resolveAliases(stmt *query.SelectStmt) ([]aliasInfo, bool) {
	refs := []query.TableRef{stmt.From}
	for _, j := range stmt.Joins {
		refs = append(refs, j.Table)
	}
	seen := make(map[string]bool, len(refs))
	out := make([]aliasInfo, 0, len(refs))
	for _, r := range refs {
		tab, err := c.shards[0].DB().Table(r.Name)
		if err != nil {
			return nil, false
		}
		alias := r.EffectiveAlias()
		if seen[alias] {
			return nil, false
		}
		seen[alias] = true
		out = append(out, aliasInfo{alias: alias, table: r.Name, schema: tab.Schema(), spec: c.specs[r.Name]})
	}
	return out, true
}

// resolveColumn finds the alias owning cr: by qualifier when present,
// otherwise the unique alias whose schema has the column.
func resolveColumn(aliases []aliasInfo, cr *query.ColumnRef) (int, bool) {
	if cr.Qualifier != "" {
		for i, a := range aliases {
			if a.alias == cr.Qualifier {
				return i, a.schema.ColumnIndex(cr.Name) >= 0
			}
		}
		return 0, false
	}
	found, n := 0, 0
	for i, a := range aliases {
		if a.schema.ColumnIndex(cr.Name) >= 0 {
			found = i
			n++
		}
	}
	return found, n == 1
}

// partitionKeyOf reports whether cr resolves to a partition key,
// returning the owning partitioner and the key column's declared
// kind. Pruning decisions must only route literals of that kind:
// the engine's comparisons coerce INT/FLOAT, so a kind-mismatched
// literal (pre = 5.0) can still match rows, while the partitioner
// would route it arbitrarily.
func partitionKeyOf(aliases []aliasInfo, cr *query.ColumnRef) (Partitioner, store.Kind, bool) {
	ai, ok := resolveColumn(aliases, cr)
	if !ok {
		return nil, store.KindNull, false
	}
	a := aliases[ai]
	for _, k := range a.spec.keys {
		if k.column == cr.Name {
			ci := a.schema.ColumnIndex(cr.Name)
			return k.part, a.schema.Columns[ci].Kind, true
		}
	}
	return nil, store.KindNull, false
}

// conjuncts splits e on top-level ANDs.
func conjuncts(e query.Expr, out []query.Expr) []query.Expr {
	if b, ok := e.(*query.BinaryExpr); ok && b.Op == query.OpAnd {
		return conjuncts(b.R, conjuncts(b.L, out))
	}
	if e != nil {
		out = append(out, e)
	}
	return out
}

// coPartitioned reports whether every partitioned alias is connected
// to the others through partition-key equality edges (JOIN ON and
// top-level WHERE conjuncts) over the same Partitioner instance —
// the condition under which the join runs shard-locally.
func (c *Coordinator) coPartitioned(stmt *query.SelectStmt, aliases []aliasInfo) bool {
	parent := make([]int, len(aliases))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	var conds []query.Expr
	for _, j := range stmt.Joins {
		conds = conjuncts(j.On, conds)
	}
	conds = conjuncts(stmt.Where, conds)
	for _, e := range conds {
		b, ok := e.(*query.BinaryExpr)
		if !ok || b.Op != query.OpEq {
			continue
		}
		lc, lok := b.L.(*query.ColumnRef)
		rc, rok := b.R.(*query.ColumnRef)
		if !lok || !rok {
			continue
		}
		lp, _, lok := partitionKeyOf(aliases, lc)
		rp, _, rok := partitionKeyOf(aliases, rc)
		if !lok || !rok || lp != rp {
			continue
		}
		li, _ := resolveColumn(aliases, lc)
		ri, _ := resolveColumn(aliases, rc)
		parent[find(li)] = find(ri)
	}
	root := -1
	for i, a := range aliases {
		if len(a.spec.keys) == 0 {
			continue
		}
		if root < 0 {
			root = find(i)
		} else if find(i) != root {
			return false
		}
	}
	return true
}

// pruneShards intersects the shard sets implied by partition-key
// predicates in the top-level WHERE conjuncts. The returned slice is
// never empty: a contradiction is served by one healthy shard, which
// provably returns zero rows (any qualifying row would have to live
// in the empty intersection). pruned counts against the full shard
// set, before the health filter. skipped lists the unavailable shards
// the predicates did NOT prune — shards whose rows the answer may
// need but cannot reach.
func (c *Coordinator) pruneShards(stmt *query.SelectStmt, aliases []aliasInfo, healthy []int) ([]int, int, []int) {
	in := make([]bool, len(c.shards))
	for i := range in {
		in[i] = true
	}
	intersect := func(ids []int) {
		keep := make([]bool, len(c.shards))
		for _, id := range ids {
			keep[id] = true
		}
		for i := range in {
			in[i] = in[i] && keep[i]
		}
	}
	for _, e := range conjuncts(stmt.Where, nil) {
		switch x := e.(type) {
		case *query.BinaryExpr:
			cr, lit, op, ok := keyComparison(x)
			if !ok {
				break
			}
			p, kind, ok := partitionKeyOf(aliases, cr)
			if !ok {
				break
			}
			switch op {
			case query.OpEq:
				if lit.K != kind {
					// The engine's `=` coerces INT/FLOAT, so a FLOAT
					// literal can match INT-keyed rows the partitioner
					// would route elsewhere. No claim: keep all shards.
					break
				}
				intersect([]int{p.Route(lit)})
			case query.OpGe, query.OpGt, query.OpLe, query.OpLt:
				if lit.K != store.KindInt || kind != store.KindInt {
					break
				}
				v := lit.I
				switch op {
				case query.OpGe:
					intersect(p.RouteRange(&store.Value{K: store.KindInt, I: v}, nil))
				case query.OpGt:
					intersect(p.RouteRange(&store.Value{K: store.KindInt, I: v + 1}, nil))
				case query.OpLe:
					intersect(p.RouteRange(nil, &store.Value{K: store.KindInt, I: v}))
				case query.OpLt:
					intersect(p.RouteRange(nil, &store.Value{K: store.KindInt, I: v - 1}))
				}
			}
		case *query.SubtreeExpr:
			p, kind, ok := partitionKeyOf(aliases, x.Column)
			if !ok || kind != store.KindInt {
				break
			}
			id, ok := c.byName[x.Node]
			if !ok {
				break
			}
			lo, hi := c.tree.SubtreeInterval(id)
			lov := store.IntValue(int64(lo))
			hiv := store.IntValue(int64(hi))
			intersect(p.RouteRange(&lov, &hiv))
		}
	}
	var participate []int
	healthySet := make(map[int]bool, len(healthy))
	for _, id := range healthy {
		healthySet[id] = true
		if in[id] {
			participate = append(participate, id)
		}
	}
	constrained := 0
	var skipped []int
	for id, keep := range in {
		if keep {
			constrained++
			if !healthySet[id] {
				skipped = append(skipped, id)
			}
		}
	}
	pruned := len(c.shards) - constrained
	if len(participate) == 0 {
		participate = healthy[:1]
	}
	return participate, pruned, skipped
}

// keyComparison matches `col <op> literal` (either operand order,
// flipping the operator when the literal is on the left).
func keyComparison(b *query.BinaryExpr) (*query.ColumnRef, store.Value, query.BinOp, bool) {
	if cr, ok := b.L.(*query.ColumnRef); ok {
		if lit, ok := b.R.(*query.Literal); ok {
			return cr, lit.Val, b.Op, true
		}
	}
	if cr, ok := b.R.(*query.ColumnRef); ok {
		if lit, ok := b.L.(*query.Literal); ok {
			flip := map[query.BinOp]query.BinOp{
				query.OpEq: query.OpEq, query.OpLt: query.OpGt, query.OpLe: query.OpGe,
				query.OpGt: query.OpLt, query.OpGe: query.OpLe,
			}
			if f, ok := flip[b.Op]; ok {
				return cr, lit.Val, f, true
			}
		}
	}
	return nil, store.Value{}, 0, false
}

// buildOrderedShardStmt prepares the per-shard statement of a top-k
// merge: ORDER BY and LIMIT stay pushed down (local top-k), and every
// sort key is exposed as an output column — reusing an existing item
// when one renders identically (or is aliased to the key's name),
// appending a trailing hidden __k column otherwise.
func buildOrderedShardStmt(stmt *query.SelectStmt) (*query.SelectStmt, []mergeKey, int, bool) {
	for _, it := range stmt.Items {
		if it.Star {
			// Key positions within a * expansion depend on schema
			// internals; not worth the coupling.
			return nil, nil, 0, false
		}
	}
	sp := cloneStmt(stmt)
	var keys []mergeKey
	hidden := 0
	for _, k := range stmt.Order {
		pos := -1
		render := k.Expr.String()
		for i, it := range stmt.Items {
			if it.Expr.String() == render {
				pos = i
				break
			}
			if cr, ok := k.Expr.(*query.ColumnRef); ok && cr.Qualifier == "" && it.Alias == cr.Name {
				pos = i
				break
			}
		}
		if pos < 0 {
			pos = len(sp.Items)
			sp.Items = append(sp.Items, query.SelectItem{
				Expr:  cloneExpr(k.Expr),
				Alias: fmt.Sprintf("__k%d", hidden),
			})
			hidden++
		}
		keys = append(keys, mergeKey{pos: pos, desc: k.Desc})
	}
	return sp, keys, hidden, true
}

// hasSubquery reports whether the statement contains a scalar or IN
// subquery anywhere (items, joins, where, group by, having, order).
func hasSubquery(stmt *query.SelectStmt) bool {
	found := false
	visitStmtExprs(stmt, func(e query.Expr) {
		switch e.(type) {
		case *query.SubqueryExpr, *query.InSubqueryExpr:
			found = true
		}
	})
	return found
}

// hasDistinctAgg reports whether any aggregate is DISTINCT — its
// dedup set cannot be reconstructed from per-shard partials.
func hasDistinctAgg(stmt *query.SelectStmt) bool {
	found := false
	visitStmtExprs(stmt, func(e query.Expr) {
		if a, ok := e.(*query.AggExpr); ok && a.Distinct {
			found = true
		}
	})
	return found
}

func containsAggExpr(e query.Expr) bool {
	found := false
	walk(e, func(x query.Expr) {
		if _, ok := x.(*query.AggExpr); ok {
			found = true
		}
	})
	return found
}

// visitStmtExprs walks every expression position of the statement,
// descending into subquery statements (unlike the engine's walker,
// which treats them as closed scopes).
func visitStmtExprs(stmt *query.SelectStmt, fn func(query.Expr)) {
	for _, it := range stmt.Items {
		walk(it.Expr, fn)
	}
	for _, j := range stmt.Joins {
		walk(j.On, fn)
	}
	walk(stmt.Where, fn)
	for _, g := range stmt.GroupBy {
		walk(g, fn)
	}
	walk(stmt.Having, fn)
	for _, o := range stmt.Order {
		walk(o.Expr, fn)
	}
}

// walk visits e depth-first, recursing into subquery statements.
func walk(e query.Expr, fn func(query.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *query.BinaryExpr:
		walk(x.L, fn)
		walk(x.R, fn)
	case *query.NotExpr:
		walk(x.E, fn)
	case *query.NegExpr:
		walk(x.E, fn)
	case *query.AggExpr:
		walk(x.Arg, fn)
	case *query.SubtreeExpr:
		walk(x.Column, fn)
	case *query.AncestorExpr:
		walk(x.Column, fn)
	case *query.TanimotoExpr:
		walk(x.Column, fn)
	case *query.SubqueryExpr:
		visitStmtExprs(x.Stmt, fn)
	case *query.InSubqueryExpr:
		walk(x.Needle, fn)
		visitStmtExprs(x.Stmt, fn)
	}
}

// referencedTables lists every table the statement touches, including
// tables referenced only inside subqueries, in first-reference order.
func referencedTables(stmt *query.SelectStmt) []string {
	var out []string
	seen := make(map[string]bool)
	var collect func(s *query.SelectStmt)
	collect = func(s *query.SelectStmt) {
		add := func(name string) {
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
		add(s.From.Name)
		for _, j := range s.Joins {
			add(j.Table.Name)
		}
		visitStmtExprs(s, func(e query.Expr) {
			switch x := e.(type) {
			case *query.SubqueryExpr:
				collect(x.Stmt)
			case *query.InSubqueryExpr:
				collect(x.Stmt)
			}
		})
	}
	collect(stmt)
	return out
}

// cloneStmt deep-copies a statement so concurrent shard executions
// (whose optimizers rewrite plan inputs derived from the AST) never
// share expression nodes.
func cloneStmt(stmt *query.SelectStmt) *query.SelectStmt {
	if stmt == nil {
		return nil
	}
	out := &query.SelectStmt{
		Explain: stmt.Explain,
		Analyze: stmt.Analyze,
		From:    stmt.From,
		Limit:   stmt.Limit,
	}
	for _, it := range stmt.Items {
		out.Items = append(out.Items, query.SelectItem{Expr: cloneExpr(it.Expr), Alias: it.Alias, Star: it.Star})
	}
	for _, j := range stmt.Joins {
		out.Joins = append(out.Joins, query.JoinClause{Table: j.Table, On: cloneExpr(j.On)})
	}
	out.Where = cloneExpr(stmt.Where)
	for _, g := range stmt.GroupBy {
		out.GroupBy = append(out.GroupBy, cloneExpr(g))
	}
	out.Having = cloneExpr(stmt.Having)
	for _, o := range stmt.Order {
		out.Order = append(out.Order, query.OrderKey{Expr: cloneExpr(o.Expr), Desc: o.Desc})
	}
	return out
}

// cloneExpr deep-copies an expression tree.
func cloneExpr(e query.Expr) query.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *query.ColumnRef:
		c := *x
		return &c
	case *query.Literal:
		c := *x
		return &c
	case *query.BinaryExpr:
		return &query.BinaryExpr{Op: x.Op, L: cloneExpr(x.L), R: cloneExpr(x.R)}
	case *query.NotExpr:
		return &query.NotExpr{E: cloneExpr(x.E)}
	case *query.NegExpr:
		return &query.NegExpr{E: cloneExpr(x.E)}
	case *query.SubtreeExpr:
		return &query.SubtreeExpr{Column: cloneExpr(x.Column).(*query.ColumnRef), Node: x.Node}
	case *query.AncestorExpr:
		return &query.AncestorExpr{Column: cloneExpr(x.Column).(*query.ColumnRef), Node: x.Node}
	case *query.TanimotoExpr:
		return &query.TanimotoExpr{Column: cloneExpr(x.Column).(*query.ColumnRef), SMILES: x.SMILES}
	case *query.AggExpr:
		return &query.AggExpr{Func: x.Func, Arg: cloneExpr(x.Arg), Star: x.Star, Distinct: x.Distinct}
	case *query.SubqueryExpr:
		return &query.SubqueryExpr{Stmt: cloneStmt(x.Stmt)}
	case *query.InSubqueryExpr:
		return &query.InSubqueryExpr{Needle: cloneExpr(x.Needle), Stmt: cloneStmt(x.Stmt)}
	default:
		// Unknown node kinds would defeat the deep copy; fail loudly
		// so a new AST node cannot silently introduce a data race.
		panic(fmt.Sprintf("shard: cloneExpr: unhandled %T", e))
	}
}
