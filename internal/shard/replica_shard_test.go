package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"drugtree/internal/netsim"
	"drugtree/internal/query"
	"drugtree/internal/replica"
	"drugtree/internal/store"
)

// replicaOptions builds a replicated topology on a virtual clock; the
// temp durability root Partition manufactures is removed by Close.
func replicaOptions(followers int) Options {
	return Options{
		Shards:       3,
		QueryOptions: rowOptions(),
		Replicas:     followers,
		MaxLagSeqs:   0,
		Clock:        netsim.NewVirtualClock(),
	}
}

// TestReplicaDifferentialQuiesced is the replication-grade
// differential test: with replication quiesced (every follower at its
// leader's WAL frontier), the scatter results served by followers must
// be row-identical — under the DESIGN §8 merge contract — to the
// leader-served and single-node answers, across every statement class.
func TestReplicaDifferentialQuiesced(t *testing.T) {
	db, tree := buildFixture(t, fixtureConfig(11))
	single := query.NewEngine(query.NewDBCatalog(db, tree), rowOptions())
	c := newCoordinator(t, db, tree, replicaOptions(2))
	ctx := context.Background()
	if err := c.SyncReplicas(ctx); err != nil {
		t.Fatal(err)
	}

	queries := []struct {
		q      string
		keyPos int
	}{
		{"SELECT COUNT(*) FROM proteins", -1},                                   // partial-agg
		{"SELECT accession, family FROM proteins", -1},                          // scatter
		{"SELECT family, COUNT(*), AVG(length) FROM proteins GROUP BY family", -1}, // partial-agg groups
		{"SELECT accession, length FROM proteins ORDER BY length DESC, accession LIMIT 10", 1}, // scatter-ordered
		{"SELECT ligand_id FROM ligands", -1},                                   // replicated
		{"SELECT COUNT(DISTINCT family) FROM proteins", -1},                     // gather fallback
		{"SELECT p.family, a.affinity FROM proteins p JOIN activities a ON p.accession = a.protein_id WHERE a.affinity > 6.0", -1}, // co-partitioned join
	}
	policies := []struct {
		name string
		p    replica.ReadPolicy
	}{
		{"leader", replica.ReadLeader},
		{"followers", replica.ReadFollowers},
		{"any", replica.ReadAny},
	}
	for _, tc := range queries {
		base, err := single.Query(ctx, tc.q)
		if err != nil {
			t.Fatalf("query %q: single-node baseline: %v", tc.q, err)
		}
		for _, pol := range policies {
			c.SetReadPolicy(pol.p)
			got, err := c.Query(ctx, tc.q)
			if err != nil {
				t.Fatalf("query %q [replica-%s]: %v", tc.q, pol.name, err)
			}
			assertSameRows(t, "replica-"+pol.name, tc.q, tc.keyPos, base, got)
		}
	}
	if lag := c.MaxServedLag(); lag != 0 {
		t.Fatalf("quiesced differential served reads at lag %d, want 0", lag)
	}
}

// TestReplicaWriteShipRead pins the write-visibility pipeline: rows
// written through the coordinator land on shard leaders, lag-bounded
// routing keeps stale followers out until a SyncReplicas tick ships
// the tail, after which followers serve the new rows.
func TestReplicaWriteShipRead(t *testing.T) {
	db, tree := buildFixture(t, fixtureConfig(5))
	c := newCoordinator(t, db, tree, replicaOptions(1))
	ctx := context.Background()

	total, err := c.Query(ctx, "SELECT COUNT(*) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	want := total.Rows[0][0].I
	for i := 0; i < 10; i++ {
		row := store.Row{
			store.StringValue(fmt.Sprintf("ZZ%05d", i)),
			store.StringValue("fam-new"),
			store.IntValue(int64(100 + i)),
		}
		if _, err := c.Insert("proteins", row); err != nil {
			t.Fatal(err)
		}
		want++
	}

	// Followers lag; the zero bound forces every read onto leaders, so
	// the count is exact even before shipping.
	c.SetReadPolicy(replica.ReadAny)
	res, err := c.Query(ctx, "SELECT COUNT(*) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != want {
		t.Fatalf("pre-ship COUNT(*) = %d, want %d", res.Rows[0][0].I, want)
	}
	if lag := c.MaxServedLag(); lag != 0 {
		t.Fatalf("zero-bound routing served stale reads (lag %d)", lag)
	}

	if err := c.SyncReplicas(ctx); err != nil {
		t.Fatal(err)
	}
	c.SetReadPolicy(replica.ReadFollowers)
	res, err = c.Query(ctx, "SELECT COUNT(*) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != want {
		t.Fatalf("follower-served COUNT(*) after ship = %d, want %d", res.Rows[0][0].I, want)
	}
	for _, h := range c.Health() {
		if h.Status != "ok" {
			t.Fatalf("shard %d status %q after ship, want ok", h.Shard, h.Status)
		}
		for _, rh := range h.Replicas {
			if rh.Lag != 0 {
				t.Fatalf("shard %d replica %d lag %d after ship", h.Shard, rh.Replica, rh.Lag)
			}
		}
		if h.WALSeq == 0 {
			t.Fatalf("shard %d reports WALSeq 0 with a durable WAL", h.Shard)
		}
	}
}

// TestKillLeaderPromoteFailover kills one shard's leader mid-service:
// reads keep flowing from the surviving follower, writes to that shard
// fail until SyncReplicas promotes it, and the topology epoch moves at
// both transitions so statement caches cannot serve stale answers.
func TestKillLeaderPromoteFailover(t *testing.T) {
	db, tree := buildFixture(t, fixtureConfig(7))
	c := newCoordinator(t, db, tree, replicaOptions(1))
	ctx := context.Background()

	total, err := c.Query(ctx, "SELECT COUNT(*) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	want := total.Rows[0][0].I

	part := c.specs["proteins"].keys[0].part
	victim := part.Route(strVal("DT00000"))
	// Find a fresh accession the hash fallback routes to the victim.
	var row store.Row
	for i := 0; ; i++ {
		acc := fmt.Sprintf("ZZ%05d", i)
		if part.Route(strVal(acc)) == victim {
			row = store.Row{strVal(acc), strVal("fam"), store.IntValue(123)}
			break
		}
	}

	e0 := c.Epoch()
	c.KillLeader(victim)
	if c.Epoch() == e0 {
		t.Fatal("killing a leader did not move the topology epoch")
	}

	// The shard is degraded but serving: its follower answers reads.
	res, err := c.Query(ctx, "SELECT COUNT(*) FROM proteins")
	if err != nil {
		t.Fatalf("read with a dead leader: %v", err)
	}
	if res.Rows[0][0].I != want {
		t.Fatalf("COUNT(*) with dead leader = %d, want %d", res.Rows[0][0].I, want)
	}
	if h := c.Health()[victim]; h.Status != "degraded" {
		t.Fatalf("victim status %q with dead leader, want degraded", h.Status)
	}
	// Writes to the victim shard have no leader to land on.
	if _, err := c.Insert("proteins", row); !errors.Is(err, replica.ErrLeaderDown) {
		t.Fatalf("insert with dead leader: err = %v, want ErrLeaderDown", err)
	}

	e1 := c.Epoch()
	if err := c.SyncReplicas(ctx); err != nil {
		t.Fatal(err)
	}
	if c.Promotions() != 1 {
		t.Fatalf("promotions = %d after sync with dead leader, want 1", c.Promotions())
	}
	if c.Epoch() == e1 {
		t.Fatal("promotion did not move the topology epoch")
	}
	if _, err := c.Insert("proteins", row); err != nil {
		t.Fatalf("insert after promotion: %v", err)
	}
	res, err = c.Query(ctx, "SELECT COUNT(*) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != want+1 {
		t.Fatalf("COUNT(*) after failover insert = %d, want %d", res.Rows[0][0].I, want+1)
	}
}

// TestUnavailableShardPolicy pins the default refusal: when every
// replica of a shard is down, queries needing its rows fail with the
// typed ErrShardUnavailable naming the shards, while replicated-table
// and pruned-away queries keep working; restarting a replica restores
// service without a new coordinator.
func TestUnavailableShardPolicy(t *testing.T) {
	db, tree := buildFixture(t, fixtureConfig(7))
	c := newCoordinator(t, db, tree, replicaOptions(1))
	ctx := context.Background()

	victim := c.specs["proteins"].keys[0].part.Route(strVal("DT00000"))
	c.KillLeader(victim)
	c.KillReplica(victim, 1)
	if h := c.Health()[victim]; h.Status != "failed" {
		t.Fatalf("victim status %q with every replica down, want failed", h.Status)
	}

	_, err := c.Query(ctx, "SELECT COUNT(*) FROM proteins")
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("scatter needing a dead shard: err = %v, want ErrShardUnavailable", err)
	}
	var ue *UnavailableError
	if !errors.As(err, &ue) || len(ue.Shards) != 1 || ue.Shards[0] != victim {
		t.Fatalf("unavailable error names shards %v, want [%d]", ue.Shards, victim)
	}

	// Replicated tables are whole on every healthy shard.
	if _, err := c.Query(ctx, "SELECT ligand_id FROM ligands"); err != nil {
		t.Fatalf("replicated-table query with a dead shard: %v", err)
	}
	// The fallback gather also needs the dead shard's partitioned rows.
	if _, err := c.Query(ctx, "SELECT COUNT(DISTINCT family) FROM proteins"); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("fallback needing a dead shard: err = %v, want ErrShardUnavailable", err)
	}

	// A surviving replica restores service: restart the follower, let
	// SyncReplicas promote it, and the scatter answers again.
	if err := c.RestartReplica(ctx, victim, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncReplicas(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(ctx, "SELECT COUNT(*) FROM proteins"); err != nil {
		t.Fatalf("scatter after replica restart: %v", err)
	}
}
