package shard

import (
	"context"
	"testing"

	"drugtree/internal/replica"
	"drugtree/internal/store"
	"drugtree/internal/vfs"
)

// These tests run the sharded topology on a deterministic FaultFS:
// the manifest commit must survive a power loss (the parent-directory
// fsync after the atomic rename is load-bearing), and at-rest rot on
// a replica follower must be healed by the coordinator's scrub pass.

// cloneSourceOn copies src's tables (schema, rows, secondary indexes)
// into a fresh in-memory store whose filesystem seam is fsys, so a
// Partition over the clone inherits the fault-injecting FS for every
// shard store, follower, and manifest write.
func cloneSourceOn(t *testing.T, src *store.DB, fsys vfs.FS) *store.DB {
	t.Helper()
	db, err := store.OpenWith("", store.Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range src.TableNames() {
		st, err := src.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := db.CreateTable(name, st.Schema())
		if err != nil {
			t.Fatal(err)
		}
		var ierr error
		st.Scan(func(_ int64, r store.Row) bool {
			_, ierr = tab.Insert(r)
			return ierr == nil
		})
		if ierr != nil {
			t.Fatal(ierr)
		}
		for _, ix := range st.Indexes() {
			if err := tab.CreateIndex(ix.Column, ix.Type); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

// TestManifestSurvivesCrash partitions durably on a FaultFS, crashes
// the machine right after Close, and proves the completion manifest —
// committed by tmp + fsync + rename + directory fsync — is still
// present, intact, and matching, so the reopened coordinator reuses
// the shard stores instead of re-partitioning.
func TestManifestSurvivesCrash(t *testing.T) {
	fsys := vfs.NewFault(7)
	mem, tree := buildFixture(t, fixtureConfig(7))
	db := cloneSourceOn(t, mem, fsys)
	opts := Options{Shards: 3, QueryOptions: rowOptions(), Dir: "shards"}
	ctx := context.Background()

	c1, err := Partition(db, tree, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c1.Query(ctx, "SELECT COUNT(*), SUM(length) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	fsys.Reboot() // power loss: only fsynced state survives

	m, err := readManifest(fsys, "shards")
	if err != nil {
		t.Fatalf("manifest did not survive the crash: %v", err)
	}
	fp, err := fingerprint(db, 3, m.Starts)
	if err != nil {
		t.Fatal(err)
	}
	if !m.equal(fp) {
		t.Fatalf("surviving manifest %+v does not match the source fingerprint", m)
	}
	c2, err := Partition(db, tree, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	res, err := c2.Query(ctx, "SELECT COUNT(*), SUM(length) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "crash-reopen", "SELECT COUNT(*), SUM(length) FROM proteins", -1, want, res)
}

// TestManifestNeedsDirSync is the harness-has-teeth counterpart:
// behind a vfs.NoDirSync wrapper the same partitioning loses its
// manifest at power loss, because a renamed directory entry that is
// never fsynced is not durable under the strict crash model. If this
// test ever starts passing readManifest, the fault model has gone
// soft and the durability tests above prove nothing.
func TestManifestNeedsDirSync(t *testing.T) {
	fsys := vfs.NewFault(7)
	mem, tree := buildFixture(t, fixtureConfig(7))
	db := cloneSourceOn(t, mem, vfs.NoDirSync(fsys))
	opts := Options{Shards: 3, QueryOptions: rowOptions(), Dir: "shards"}

	c1, err := Partition(db, tree, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	fsys.Reboot()

	if _, err := readManifest(fsys, "shards"); err == nil {
		t.Fatal("manifest survived a crash with directory fsyncs disabled; the crash model is not enforcing entry durability")
	}
}

// TestScrubReplicasHealsCorruptFollower rots one follower's seed
// snapshot at rest and runs the coordinator's scrub pass: exactly that
// follower must be quarantined and re-seeded, its directory verifiable
// again, and the replicated topology must keep answering correctly.
func TestScrubReplicasHealsCorruptFollower(t *testing.T) {
	fsys := vfs.NewFault(3)
	mem, tree := buildFixture(t, fixtureConfig(3))
	db := cloneSourceOn(t, mem, fsys)
	opts := Options{Shards: 2, Replicas: 1, MaxLagSeqs: -1, QueryOptions: rowOptions(), Dir: "shards"}
	ctx := context.Background()

	c, err := Partition(db, tree, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want, err := c.Query(ctx, "SELECT COUNT(*), SUM(length) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}

	const rotted = "shards/shard-0-replica-1"
	if err := fsys.Corrupt(rotted+"/snapshot.dts", 16, 0x20); err != nil {
		t.Fatal(err)
	}
	if err := store.VerifyDir(fsys, rotted); err == nil {
		t.Fatal("corrupted follower still verifies; the rot did not land")
	}
	healed, err := c.ScrubReplicas(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if healed != 1 {
		t.Fatalf("ScrubReplicas healed %d followers, want 1", healed)
	}
	if err := store.VerifyDir(fsys, rotted); err != nil {
		t.Fatalf("follower fails verification after scrub: %v", err)
	}
	// A second pass finds nothing: the heal is complete, not cyclic.
	if healed, err = c.ScrubReplicas(ctx); err != nil || healed != 0 {
		t.Fatalf("second scrub pass = (%d, %v), want (0, nil)", healed, err)
	}
	// Route reads through the followers so the healed node itself
	// answers — it must serve the leader's rows, never the rotted image.
	c.SetReadPolicy(replica.ReadFollowers)
	res, err := c.Query(ctx, "SELECT COUNT(*), SUM(length) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "post-scrub", "SELECT COUNT(*), SUM(length) FROM proteins", -1, want, res)
}
