package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"drugtree/internal/admission"
	"drugtree/internal/phylo"
	"drugtree/internal/query"
	"drugtree/internal/store"
)

// Shard is one partition instance: its own store (own WAL when
// durable), its own query engine over the shared tree, and its own
// admission limiter. failed simulates a crashed instance for the
// failover experiments: a failed shard is skipped by the scatter
// planner and surfaced as degraded health.
type Shard struct {
	id      int
	db      *store.DB
	engine  *query.Engine
	limiter *admission.Limiter
	failed  atomic.Bool
}

// DB exposes the shard's store (read-only use expected).
func (s *Shard) DB() *store.DB { return s.db }

// Limiter exposes the shard's admission limiter (nil when admission
// is unconfigured).
func (s *Shard) Limiter() *admission.Limiter { return s.limiter }

// Coordinator plans a DTQL statement once, classifies it, prunes
// shards by partition-key predicates, fans the per-shard statements
// out over the shard engines, and merges the gathered results.
type Coordinator struct {
	shards []*Shard
	tree   *phylo.Tree
	opts   Options
	specs  map[string]tableSpec
	byName map[string]phylo.NodeID

	// gateHook, when set, runs inside every scatter goroutine before
	// the shard statement executes. Tests use it to make one shard
	// slow (blocking on ctx) so cancellation and leak behavior of a
	// mid-flight gather is deterministic.
	gateHook func(ctx context.Context, shard int) error

	// epoch counts topology transitions (FailShard/RestoreShard).
	// Result caches in front of the coordinator fold it into their
	// version so an entry filled against one topology is never served
	// against another — a full COUNT cached before a shard failed
	// must not mask the degraded answer, nor the reverse.
	epoch atomic.Int64
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Shard returns the i-th shard.
func (c *Coordinator) Shard(i int) *Shard { return c.shards[i] }

// Close closes every shard store.
func (c *Coordinator) Close() error {
	var first error
	for _, s := range c.shards {
		if err := s.db.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// FailShard marks a shard failed: the scatter planner skips it and
// Health reports it degraded. Queries keep being answered from the
// remaining healthy shards (with the failed partition's rows
// missing), the same degrade-don't-die stance the source layer takes
// when an upstream goes dark.
func (c *Coordinator) FailShard(i int) {
	c.shards[i].failed.Store(true)
	c.epoch.Add(1)
}

// RestoreShard clears a simulated failure.
func (c *Coordinator) RestoreShard(i int) {
	c.shards[i].failed.Store(false)
	c.epoch.Add(1)
}

// Epoch returns the topology-transition counter: it changes whenever
// a shard fails or is restored, so cached results keyed on it are
// invalidated across topology changes.
func (c *Coordinator) Epoch() int64 { return c.epoch.Load() }

// Health is one shard's liveness and size snapshot.
type Health struct {
	Shard  int
	Status string // "ok" or "failed"
	Rows   int64  // partitioned rows resident on the shard
}

// Health reports per-shard status for the serving layers (the mobile
// status message surfaces these next to source freshness).
func (c *Coordinator) Health() []Health {
	out := make([]Health, len(c.shards))
	for i, s := range c.shards {
		h := Health{Shard: i, Status: "ok"}
		if s.failed.Load() {
			h.Status = "failed"
		}
		for name := range c.specs {
			if t, err := s.db.Table(name); err == nil {
				h.Rows += int64(t.Len())
			}
		}
		out[i] = h
	}
	return out
}

// healthy returns the indexes of shards not marked failed.
func (c *Coordinator) healthy() []int {
	var out []int
	for i, s := range c.shards {
		if !s.failed.Load() {
			out = append(out, i)
		}
	}
	return out
}

// Query parses, classifies, scatters, and merges one DTQL statement.
// ctx cancels mid-flight execution on every shard: the fan-out
// goroutines run shard engines that poll cancellation, and the
// gather unwinds with ctx.Err() without stranding a goroutine.
func (c *Coordinator) Query(ctx context.Context, src string) (*query.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	stmt, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	return c.Run(ctx, stmt)
}

// Run executes a parsed statement through the scatter-gather planner.
func (c *Coordinator) Run(ctx context.Context, stmt *query.SelectStmt) (*query.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pl, err := c.classify(stmt)
	if err != nil {
		return nil, err
	}
	if stmt.Explain {
		return c.explain(ctx, stmt, pl)
	}
	switch pl.class {
	case classReplicated:
		return c.runReplicated(ctx, stmt, pl)
	case classScatter:
		return c.runScatter(ctx, stmt, pl)
	case classScatterOrdered:
		return c.runScatterOrdered(ctx, stmt, pl)
	case classPartialAgg:
		return c.runPartialAgg(ctx, stmt, pl)
	default:
		return c.runFallback(ctx, stmt)
	}
}

// scatter fans run out over the given shards, one goroutine per
// shard, joined before returning. The first shard error (in shard
// order, preferring root causes over cancellation echoes) cancels
// the siblings and is returned.
func (c *Coordinator) scatter(parent context.Context, ids []int, run func(ctx context.Context, s *Shard) (*query.Result, error)) ([]*query.Result, error) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	results := make([]*query.Result, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, s *Shard) {
			defer wg.Done()
			if c.gateHook != nil {
				if err := c.gateHook(ctx, s.id); err != nil {
					errs[i] = err
					cancel()
					return
				}
			}
			results[i], errs[i] = c.runOne(ctx, s, run)
			if errs[i] != nil {
				cancel()
			}
		}(i, c.shards[id])
	}
	wg.Wait()
	if err := parent.Err(); err != nil {
		return nil, err
	}
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// runOne executes one shard statement under the shard's admission
// limiter.
func (c *Coordinator) runOne(ctx context.Context, s *Shard, run func(ctx context.Context, s *Shard) (*query.Result, error)) (*query.Result, error) {
	if s.limiter != nil {
		release, err := s.limiter.Acquire(ctx, 1)
		if err != nil {
			return nil, fmt.Errorf("shard %d admission: %w", s.id, err)
		}
		defer release()
	}
	return run(ctx, s)
}

// mergeStats sums the work counters of the gathered partial results.
func mergeStats(results []*query.Result) query.ExecStats {
	var st query.ExecStats
	for _, r := range results {
		if r == nil {
			continue
		}
		st.RowsScanned += r.Stats.RowsScanned
		st.RowsIndexed += r.Stats.RowsIndexed
		st.RowsJoined += r.Stats.RowsJoined
	}
	return st
}

// runReplicated answers a query touching only replicated tables from
// the first healthy shard; every other shard is pruned.
func (c *Coordinator) runReplicated(ctx context.Context, stmt *query.SelectStmt, pl *plan) (*query.Result, error) {
	s := c.shards[pl.participate[0]]
	return c.runOne(ctx, s, func(ctx context.Context, s *Shard) (*query.Result, error) {
		return s.engine.Run(ctx, cloneStmt(stmt))
	})
}

// runScatter executes the statement as-is on every participating
// shard and concatenates the row sets (truncated to LIMIT when one
// is present — each shard already applied it locally).
//
// Merge contract: the result is the same row *multiset* as
// single-node execution, in shard-concatenation order rather than
// table order. With a LIMIT (and no ORDER BY — that is
// scatter-ordered), DTQL's unordered LIMIT means "any N qualifying
// rows", so the kept subset may differ from single-node's; the
// differential tests check count + membership for that shape, not
// row identity.
func (c *Coordinator) runScatter(ctx context.Context, stmt *query.SelectStmt, pl *plan) (*query.Result, error) {
	results, err := c.scatter(ctx, pl.participate, func(ctx context.Context, s *Shard) (*query.Result, error) {
		return s.engine.Run(ctx, cloneStmt(stmt))
	})
	if err != nil {
		return nil, err
	}
	out := &query.Result{Columns: results[0].Columns, Stats: mergeStats(results)}
	for _, r := range results {
		out.Rows = append(out.Rows, r.Rows...)
	}
	if stmt.Limit >= 0 && len(out.Rows) > stmt.Limit {
		out.Rows = out.Rows[:stmt.Limit]
	}
	out.Stats.RowsReturned = int64(len(out.Rows))
	out.Plan = fmt.Sprintf("Gather [shards=%d pruned=%d mode=scatter]", len(pl.participate), pl.pruned)
	return out, nil
}

// runScatterOrdered pushes ORDER BY + LIMIT to every shard (each
// returns its local top-k with the sort-key columns exposed), then
// top-k-merges the partials: a global stable sort over the key
// columns, the global LIMIT, and the hidden keys stripped.
//
// Merge contract: the sort-key sequence is identical to single-node
// execution; the relative order *within* a tie group is unspecified
// (the stable sort preserves shard-concatenation order, single-node
// preserves table order), and when a LIMIT cuts through a tie group,
// which of the tied rows survive may differ per topology — the same
// latitude SQL gives any executor for an under-specified ORDER BY.
func (c *Coordinator) runScatterOrdered(ctx context.Context, stmt *query.SelectStmt, pl *plan) (*query.Result, error) {
	shardStmt := pl.shardStmt
	results, err := c.scatter(ctx, pl.participate, func(ctx context.Context, s *Shard) (*query.Result, error) {
		return s.engine.Run(ctx, cloneStmt(shardStmt))
	})
	if err != nil {
		return nil, err
	}
	out := &query.Result{Stats: mergeStats(results)}
	baseLen := len(results[0].Columns) - pl.hiddenKeys
	out.Columns = append([]string(nil), results[0].Columns[:baseLen]...)
	var rows []store.Row
	for _, r := range results {
		rows = append(rows, r.Rows...)
	}
	keys := pl.mergeKeys
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			cmp := store.Compare(rows[i][k.pos], rows[j][k.pos])
			if k.desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	if stmt.Limit >= 0 && len(rows) > stmt.Limit {
		rows = rows[:stmt.Limit]
	}
	for i := range rows {
		rows[i] = rows[i][:baseLen]
	}
	out.Rows = rows
	out.Stats.RowsReturned = int64(len(out.Rows))
	out.Plan = fmt.Sprintf("Gather [shards=%d pruned=%d mode=scatter-ordered]", len(pl.participate), pl.pruned)
	return out, nil
}

// GatherTables copies the named tables out of the healthy shards
// into a fresh in-memory database: partitioned tables are unioned
// across shards, replicated ones taken from the first healthy shard,
// and secondary indexes recreated. It is the correctness fallback
// for statement shapes the scatter planner cannot merge soundly
// (subqueries, DISTINCT aggregates, non-co-partitioned joins) and a
// rebalancing primitive in its own right.
func (c *Coordinator) GatherTables(ctx context.Context, names []string) (*store.DB, error) {
	healthy := c.healthy()
	if len(healthy) == 0 {
		return nil, fmt.Errorf("shard: no healthy shards")
	}
	db, err := store.Open("")
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		first, err := c.shards[healthy[0]].db.Table(name)
		if err != nil {
			return nil, err
		}
		tab, err := db.CreateTable(name, first.Schema())
		if err != nil {
			return nil, err
		}
		from := healthy
		if len(c.specs[name].keys) == 0 {
			from = healthy[:1]
		}
		for _, si := range from {
			st, err := c.shards[si].db.Table(name)
			if err != nil {
				return nil, err
			}
			for _, r := range st.Snapshot() {
				if _, err := tab.Insert(r); err != nil {
					return nil, err
				}
			}
		}
		for _, ix := range first.Indexes() {
			if err := tab.CreateIndex(ix.Column, ix.Type); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// runFallback gathers every referenced table into a temporary
// database and runs the original statement on a local engine —
// reproducing single-node behavior (including its errors) exactly,
// at the cost of moving the data to the query.
func (c *Coordinator) runFallback(ctx context.Context, stmt *query.SelectStmt) (*query.Result, error) {
	names := referencedTables(stmt)
	db, err := c.GatherTables(ctx, names)
	if err != nil {
		return nil, err
	}
	eng := query.NewEngine(query.NewDBCatalog(db, c.tree), c.opts.QueryOptions)
	res, err := eng.Run(ctx, cloneStmt(stmt))
	if err != nil {
		return nil, err
	}
	if stmt.Explain {
		res.Plan = fmt.Sprintf("Gather [shards=%d pruned=0 mode=gather-fallback tables=%s]\n%s",
			len(c.healthy()), strings.Join(names, ","), indent(res.Plan))
	}
	return res, nil
}

// explain renders the scatter plan: the gather header with shard and
// pruning counts, then each participating shard's plan — annotated
// with per-operator rows/batches counters under EXPLAIN ANALYZE,
// which executes the shard statements in full.
func (c *Coordinator) explain(ctx context.Context, stmt *query.SelectStmt, pl *plan) (*query.Result, error) {
	if pl.class == classFallback {
		return c.runFallback(ctx, stmt)
	}
	shardStmt := stmt
	switch pl.class {
	case classScatterOrdered:
		shardStmt = pl.shardStmt
	case classPartialAgg:
		shardStmt = pl.agg.shardStmt
	}
	run := func(ctx context.Context, s *Shard) (*query.Result, error) {
		sub := cloneStmt(shardStmt)
		sub.Explain, sub.Analyze = true, stmt.Analyze
		return s.engine.Run(ctx, sub)
	}
	var results []*query.Result
	var err error
	if stmt.Analyze {
		results, err = c.scatter(ctx, pl.participate, run)
	} else {
		// Plain EXPLAIN never executes; plan each shard serially.
		for _, id := range pl.participate {
			r, rerr := c.runOne(ctx, c.shards[id], run)
			if rerr != nil {
				err = rerr
				break
			}
			results = append(results, r)
		}
	}
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Gather [shards=%d pruned=%d mode=%s]", len(pl.participate), pl.pruned, pl.class)
	for i, r := range results {
		fmt.Fprintf(&b, "\nshard %d:\n%s", pl.participate[i], indent(r.Plan))
	}
	out := &query.Result{Columns: results[0].Columns, Plan: b.String(), Stats: mergeStats(results)}
	return out, nil
}

// indent shifts every line of s right by two spaces.
func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n")
}
