package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"drugtree/internal/admission"
	"drugtree/internal/phylo"
	"drugtree/internal/query"
	"drugtree/internal/replica"
	"drugtree/internal/store"
	"drugtree/internal/vfs"
)

// ErrShardUnavailable is the sentinel matched (via errors.Is) by the
// typed UnavailableError the coordinator returns when a query needs a
// shard whose every replica is down and Options.AllowPartial is off.
var ErrShardUnavailable = errors.New("shard: shard unavailable")

// UnavailableError reports which shards a query needed but could not
// reach. By default the coordinator refuses to answer with silently
// missing rows; callers that prefer degraded service opt in with
// Options.AllowPartial and read Result.SkippedShards instead.
type UnavailableError struct {
	Shards []int
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("shard: shards %v unavailable (every replica down); "+
		"enable AllowPartial to serve without their rows", e.Shards)
}

func (e *UnavailableError) Is(target error) bool { return target == ErrShardUnavailable }

// Shard is one partition instance: its own store (own WAL when
// durable), its own query engine over the shared tree, and its own
// admission limiter. With Options.Replicas > 0 the store is wrapped
// in a replica.Set (leader + followers) and reads route across it.
// failed simulates a crashed instance for the failover experiments: a
// failed shard is skipped by the scatter planner and surfaced as
// degraded health.
type Shard struct {
	id      int
	db      *store.DB // the original leader store; authoritative when set == nil
	set     *replica.Set
	engine  *query.Engine
	limiter *admission.Limiter
	failed  atomic.Bool
}

// DB exposes the shard's current leader store (writes and resync
// always go here; read-only use expected otherwise).
func (s *Shard) DB() *store.DB {
	if s.set != nil {
		return s.set.Leader()
	}
	return s.db
}

// Replicas exposes the shard's replica set (nil without replication).
func (s *Shard) Replicas() *replica.Set { return s.set }

// alive reports whether the shard can serve reads: not failed, and —
// when replicated — at least one replica live.
func (s *Shard) alive() bool {
	if s.failed.Load() {
		return false
	}
	if s.set != nil {
		return s.set.Live() > 0
	}
	return true
}

// Limiter exposes the shard's admission limiter (nil when admission
// is unconfigured).
func (s *Shard) Limiter() *admission.Limiter { return s.limiter }

// Coordinator plans a DTQL statement once, classifies it, prunes
// shards by partition-key predicates, fans the per-shard statements
// out over the shard engines, and merges the gathered results.
type Coordinator struct {
	shards []*Shard
	tree   *phylo.Tree
	opts   Options
	specs  map[string]tableSpec
	byName map[string]phylo.NodeID

	// gateHook, when set, runs inside every scatter goroutine before
	// the shard statement executes. Tests use it to make one shard
	// slow (blocking on ctx) so cancellation and leak behavior of a
	// mid-flight gather is deterministic.
	gateHook func(ctx context.Context, shard int) error

	// epoch counts topology transitions (FailShard/RestoreShard,
	// replica kill/restart, promotion). Result caches in front of the
	// coordinator fold it into their version so an entry filled
	// against one topology is never served against another — a full
	// COUNT cached before a shard failed must not mask the degraded
	// answer, nor the reverse, nor a pre-promotion answer after one.
	epoch atomic.Int64

	// policy selects which replica of a set answers reads (ReadAny
	// round-robin by default). Stored as int32 for lock-free reads on
	// the scatter path.
	policy atomic.Int32

	// tempDir is the auto-created durability root when replication was
	// requested over an in-memory topology; removed on Close.
	tempDir string

	// fsys is the filesystem seam inherited from the source store at
	// partition time; everything the coordinator persists or removes
	// goes through it.
	fsys vfs.FS
}

// SetReadPolicy switches how read subplans route across each shard's
// replica set. It does not change data, only placement, so it does
// not bump the topology epoch.
func (c *Coordinator) SetReadPolicy(p replica.ReadPolicy) { c.policy.Store(int32(p)) }

// ReadPolicy returns the current read routing policy.
func (c *Coordinator) ReadPolicy() replica.ReadPolicy {
	return replica.ReadPolicy(c.policy.Load())
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Shard returns the i-th shard.
func (c *Coordinator) Shard(i int) *Shard { return c.shards[i] }

// Close closes every shard store (and replica set), then removes the
// auto-created durability root if replication manufactured one.
func (c *Coordinator) Close() error {
	var first error
	for _, s := range c.shards {
		var err error
		if s.set != nil {
			err = s.set.Close()
		} else {
			err = s.db.Close()
		}
		if err != nil && first == nil {
			first = err
		}
	}
	if c.tempDir != "" {
		fsys := c.fsys
		if fsys == nil {
			fsys = vfs.OS()
		}
		if err := fsys.RemoveAll(c.tempDir); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// FailShard marks a shard failed: the scatter planner skips it and
// Health reports it degraded. Queries keep being answered from the
// remaining healthy shards (with the failed partition's rows
// missing), the same degrade-don't-die stance the source layer takes
// when an upstream goes dark.
func (c *Coordinator) FailShard(i int) {
	c.shards[i].failed.Store(true)
	c.epoch.Add(1)
}

// RestoreShard clears a simulated failure.
func (c *Coordinator) RestoreShard(i int) {
	c.shards[i].failed.Store(false)
	c.epoch.Add(1)
}

// KillLeader crashes shard i's current leader. With replicas the
// followers keep serving reads (the shard stays available, read-only)
// until SyncReplicas promotes one; without replicas it degrades to
// FailShard. The replica set's topology callback bumps the epoch.
func (c *Coordinator) KillLeader(i int) {
	s := c.shards[i]
	if s.set == nil {
		c.FailShard(i)
		return
	}
	s.set.Kill(s.set.LeaderIndex())
}

// KillReplica crashes replica j of shard i.
func (c *Coordinator) KillReplica(i, j int) {
	if s := c.shards[i]; s.set != nil {
		s.set.Kill(j)
	}
}

// RestartReplica brings replica j of shard i back: it reopens from
// its durable state and catches up (tailing, or re-seeding if it was
// down across a promotion).
func (c *Coordinator) RestartReplica(ctx context.Context, i, j int) error {
	s := c.shards[i]
	if s.set == nil {
		return fmt.Errorf("shard %d has no replicas", i)
	}
	return s.set.Restart(ctx, j)
}

// SyncReplicas is one replication tick across every shard: a shard
// whose leader died gets the most-caught-up live follower promoted
// (tail replayed, epoch bumped so the statement cache invalidates),
// then every live leader ships its pending WAL tail to its followers.
// Shards with every replica down are skipped — they surface through
// Health and the unavailable-shard policy, not as a sync error.
func (c *Coordinator) SyncReplicas(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var first error
	for i, s := range c.shards {
		if s.set == nil {
			continue
		}
		if s.set.Live() == 0 {
			continue
		}
		if _, err := s.set.Promote(ctx); err != nil {
			if first == nil {
				first = fmt.Errorf("shard %d promote: %w", i, err)
			}
			continue
		}
		if err := s.set.Ship(ctx); err != nil {
			if first == nil {
				first = fmt.Errorf("shard %d ship: %w", i, err)
			}
		}
	}
	return first
}

// ScrubReplicas runs one scrub pass over every shard's replica set:
// each live follower's on-disk image is verified (snapshot envelope,
// checksums, WAL record CRCs) and any follower that fails is
// quarantined and re-seeded from its leader. It returns the number of
// followers healed. Shards without replication, or whose leader is
// down (nothing to re-seed from until a promotion), are skipped.
func (c *Coordinator) ScrubReplicas(ctx context.Context) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	healed := 0
	var first error
	for i, s := range c.shards {
		if err := ctx.Err(); err != nil {
			return healed, err
		}
		if s.set == nil {
			continue
		}
		n, err := s.set.Scrub()
		healed += n
		if err != nil && !errors.Is(err, replica.ErrLeaderDown) && first == nil {
			first = fmt.Errorf("shard %d scrub: %w", i, err)
		}
	}
	return healed, first
}

// MaxServedLag returns the largest replica lag any served read has
// observed across all shards — the empirical staleness bound the T12
// chaos run asserts against Options.MaxLagSeqs.
func (c *Coordinator) MaxServedLag() int64 {
	var max int64
	for _, s := range c.shards {
		if s.set == nil {
			continue
		}
		if l := s.set.MaxServedLag(); l > max {
			max = l
		}
	}
	return max
}

// Promotions returns the total leader promotions across all shards.
func (c *Coordinator) Promotions() int64 {
	var n int64
	for _, s := range c.shards {
		if s.set != nil {
			n += s.set.Promotions()
		}
	}
	return n
}

// LastPromotion reports the slowest promotion any shard's replica set
// has performed — its latency and the WAL tail records it replayed —
// or zeros when no leader has been promoted over. Experiments use it
// as the failover-cost measurement.
func (c *Coordinator) LastPromotion() (time.Duration, int64) {
	var lat time.Duration
	var replayed int64
	for _, s := range c.shards {
		if s.set == nil {
			continue
		}
		if l, r := s.set.LastPromotion(); l > lat || (l == lat && r > replayed) {
			lat, replayed = l, r
		}
	}
	return lat, replayed
}

// Insert routes one row write to the owning shard's leader: by the
// table's first partition key, or to every shard for replicated
// tables. It is the coordinator-level write path the chaos workload
// drives while leaders are being killed.
func (c *Coordinator) Insert(table string, r store.Row) (int64, error) {
	spec, ok := c.specs[table]
	if !ok || len(spec.keys) == 0 {
		var last int64
		for _, s := range c.shards {
			id, err := c.insertShard(s, table, r)
			if err != nil {
				return 0, err
			}
			last = id
		}
		return last, nil
	}
	tab, err := c.shards[0].DB().Table(table)
	if err != nil {
		return 0, err
	}
	ci := tab.Schema().ColumnIndex(spec.keys[0].column)
	if ci < 0 || ci >= len(r) {
		return 0, fmt.Errorf("shard: row lacks partition key %s.%s", table, spec.keys[0].column)
	}
	return c.insertShard(c.shards[spec.keys[0].part.Route(r[ci])], table, r)
}

func (c *Coordinator) insertShard(s *Shard, table string, r store.Row) (int64, error) {
	if s.set != nil {
		return s.set.Insert(table, r)
	}
	return s.db.Insert(table, r)
}

// Epoch returns the topology-transition counter: it changes whenever
// a shard fails or is restored, so cached results keyed on it are
// invalidated across topology changes.
func (c *Coordinator) Epoch() int64 { return c.epoch.Load() }

// Health is one shard's liveness and size snapshot.
type Health struct {
	Shard    int
	Status   string // "ok", "degraded" (some replica down), or "failed"
	Rows     int64  // partitioned rows resident on the shard
	WALSeq   int64  // leader WAL frontier (0 for in-memory stores)
	Replicas []replica.Health // per-replica status (nil without replication)
}

// Health reports per-shard status for the serving layers (the mobile
// status message surfaces these next to source freshness).
func (c *Coordinator) Health() []Health {
	out := make([]Health, len(c.shards))
	for i, s := range c.shards {
		h := Health{Shard: i, Status: "ok"}
		if !s.alive() {
			h.Status = "failed"
		}
		if s.set != nil {
			h.Replicas = s.set.Health()
			h.WALSeq = s.set.Frontier()
			if h.Status == "ok" && s.set.Live() < s.set.Nodes() {
				h.Status = "degraded"
			}
		} else {
			h.WALSeq = s.db.WALSeq()
		}
		for name := range c.specs {
			if t, err := s.DB().Table(name); err == nil {
				h.Rows += int64(t.Len())
			}
		}
		out[i] = h
	}
	return out
}

// healthy returns the indexes of shards that can serve reads.
func (c *Coordinator) healthy() []int {
	var out []int
	for i, s := range c.shards {
		if s.alive() {
			out = append(out, i)
		}
	}
	return out
}

// deadShards returns the indexes of shards that cannot serve reads.
func (c *Coordinator) deadShards() []int {
	var out []int
	for i, s := range c.shards {
		if !s.alive() {
			out = append(out, i)
		}
	}
	return out
}

// Query parses, classifies, scatters, and merges one DTQL statement.
// ctx cancels mid-flight execution on every shard: the fan-out
// goroutines run shard engines that poll cancellation, and the
// gather unwinds with ctx.Err() without stranding a goroutine.
func (c *Coordinator) Query(ctx context.Context, src string) (*query.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	stmt, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	return c.Run(ctx, stmt)
}

// Run executes a parsed statement through the scatter-gather planner.
func (c *Coordinator) Run(ctx context.Context, stmt *query.SelectStmt) (*query.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pl, err := c.classify(stmt)
	if err != nil {
		return nil, err
	}
	if len(pl.skipped) > 0 && !c.opts.AllowPartial {
		// The answer would need rows from shards with every replica
		// down. Refuse rather than silently under-report; AllowPartial
		// opts into degraded answers annotated with SkippedShards.
		return nil, &UnavailableError{Shards: pl.skipped}
	}
	var res *query.Result
	if stmt.Explain {
		res, err = c.explain(ctx, stmt, pl)
	} else {
		switch pl.class {
		case classReplicated:
			res, err = c.runReplicated(ctx, stmt, pl)
		case classScatter:
			res, err = c.runScatter(ctx, stmt, pl)
		case classScatterOrdered:
			res, err = c.runScatterOrdered(ctx, stmt, pl)
		case classPartialAgg:
			res, err = c.runPartialAgg(ctx, stmt, pl)
		default:
			res, err = c.runFallback(ctx, stmt)
		}
	}
	if err != nil {
		return nil, err
	}
	if len(pl.skipped) > 0 {
		res.SkippedShards = append([]int(nil), pl.skipped...)
	}
	return res, nil
}

// routeEngine picks the engine that answers a read subplan on shard
// s: the replica router under the coordinator's read policy when the
// shard is replicated, the shard's single engine otherwise. ok is
// false when every replica of the shard is down.
func (c *Coordinator) routeEngine(s *Shard) (*query.Engine, bool) {
	if s.set == nil {
		return s.engine, true
	}
	eng, _, ok := s.set.Route(c.ReadPolicy())
	return eng, ok
}

// runStmt clones and executes one shard-local statement on a routed
// replica of s.
func (c *Coordinator) runStmt(ctx context.Context, s *Shard, stmt *query.SelectStmt) (*query.Result, error) {
	eng, ok := c.routeEngine(s)
	if !ok {
		return nil, &UnavailableError{Shards: []int{s.id}}
	}
	return eng.Run(ctx, cloneStmt(stmt))
}

// gatherHeader renders the scatter plan header. The skipped count is
// appended only when shards were actually skipped, keeping the
// common-case plan strings stable across the replication feature.
func gatherHeader(mode string, participate, pruned, skipped int) string {
	if skipped > 0 {
		return fmt.Sprintf("Gather [shards=%d pruned=%d skipped=%d mode=%s]", participate, pruned, skipped, mode)
	}
	return fmt.Sprintf("Gather [shards=%d pruned=%d mode=%s]", participate, pruned, mode)
}

// scatter fans run out over the given shards, one goroutine per
// shard, joined before returning. The first shard error (in shard
// order, preferring root causes over cancellation echoes) cancels
// the siblings and is returned.
func (c *Coordinator) scatter(parent context.Context, ids []int, run func(ctx context.Context, s *Shard) (*query.Result, error)) ([]*query.Result, error) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	results := make([]*query.Result, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, s *Shard) {
			defer wg.Done()
			if c.gateHook != nil {
				if err := c.gateHook(ctx, s.id); err != nil {
					errs[i] = err
					cancel()
					return
				}
			}
			results[i], errs[i] = c.runOne(ctx, s, run)
			if errs[i] != nil {
				cancel()
			}
		}(i, c.shards[id])
	}
	wg.Wait()
	if err := parent.Err(); err != nil {
		return nil, err
	}
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// runOne executes one shard statement under the shard's admission
// limiter.
func (c *Coordinator) runOne(ctx context.Context, s *Shard, run func(ctx context.Context, s *Shard) (*query.Result, error)) (*query.Result, error) {
	if s.limiter != nil {
		release, err := s.limiter.Acquire(ctx, 1)
		if err != nil {
			return nil, fmt.Errorf("shard %d admission: %w", s.id, err)
		}
		defer release()
	}
	return run(ctx, s)
}

// mergeStats sums the work counters of the gathered partial results.
func mergeStats(results []*query.Result) query.ExecStats {
	var st query.ExecStats
	for _, r := range results {
		if r == nil {
			continue
		}
		st.RowsScanned += r.Stats.RowsScanned
		st.RowsIndexed += r.Stats.RowsIndexed
		st.RowsJoined += r.Stats.RowsJoined
	}
	return st
}

// runReplicated answers a query touching only replicated tables from
// the first healthy shard; every other shard is pruned.
func (c *Coordinator) runReplicated(ctx context.Context, stmt *query.SelectStmt, pl *plan) (*query.Result, error) {
	s := c.shards[pl.participate[0]]
	return c.runOne(ctx, s, func(ctx context.Context, s *Shard) (*query.Result, error) {
		return c.runStmt(ctx, s, stmt)
	})
}

// runScatter executes the statement as-is on every participating
// shard and concatenates the row sets (truncated to LIMIT when one
// is present — each shard already applied it locally).
//
// Merge contract: the result is the same row *multiset* as
// single-node execution, in shard-concatenation order rather than
// table order. With a LIMIT (and no ORDER BY — that is
// scatter-ordered), DTQL's unordered LIMIT means "any N qualifying
// rows", so the kept subset may differ from single-node's; the
// differential tests check count + membership for that shape, not
// row identity.
func (c *Coordinator) runScatter(ctx context.Context, stmt *query.SelectStmt, pl *plan) (*query.Result, error) {
	results, err := c.scatter(ctx, pl.participate, func(ctx context.Context, s *Shard) (*query.Result, error) {
		return c.runStmt(ctx, s, stmt)
	})
	if err != nil {
		return nil, err
	}
	out := &query.Result{Columns: results[0].Columns, Stats: mergeStats(results)}
	for _, r := range results {
		out.Rows = append(out.Rows, r.Rows...)
	}
	if stmt.Limit >= 0 && len(out.Rows) > stmt.Limit {
		out.Rows = out.Rows[:stmt.Limit]
	}
	out.Stats.RowsReturned = int64(len(out.Rows))
	out.Plan = gatherHeader("scatter", len(pl.participate), pl.pruned, len(pl.skipped))
	return out, nil
}

// runScatterOrdered pushes ORDER BY + LIMIT to every shard (each
// returns its local top-k with the sort-key columns exposed), then
// top-k-merges the partials: a global stable sort over the key
// columns, the global LIMIT, and the hidden keys stripped.
//
// Merge contract: the sort-key sequence is identical to single-node
// execution; the relative order *within* a tie group is unspecified
// (the stable sort preserves shard-concatenation order, single-node
// preserves table order), and when a LIMIT cuts through a tie group,
// which of the tied rows survive may differ per topology — the same
// latitude SQL gives any executor for an under-specified ORDER BY.
func (c *Coordinator) runScatterOrdered(ctx context.Context, stmt *query.SelectStmt, pl *plan) (*query.Result, error) {
	shardStmt := pl.shardStmt
	results, err := c.scatter(ctx, pl.participate, func(ctx context.Context, s *Shard) (*query.Result, error) {
		return c.runStmt(ctx, s, shardStmt)
	})
	if err != nil {
		return nil, err
	}
	out := &query.Result{Stats: mergeStats(results)}
	baseLen := len(results[0].Columns) - pl.hiddenKeys
	out.Columns = append([]string(nil), results[0].Columns[:baseLen]...)
	var rows []store.Row
	for _, r := range results {
		rows = append(rows, r.Rows...)
	}
	keys := pl.mergeKeys
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			cmp := store.Compare(rows[i][k.pos], rows[j][k.pos])
			if k.desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	if stmt.Limit >= 0 && len(rows) > stmt.Limit {
		rows = rows[:stmt.Limit]
	}
	for i := range rows {
		rows[i] = rows[i][:baseLen]
	}
	out.Rows = rows
	out.Stats.RowsReturned = int64(len(out.Rows))
	out.Plan = gatherHeader("scatter-ordered", len(pl.participate), pl.pruned, len(pl.skipped))
	return out, nil
}

// GatherTables copies the named tables out of the healthy shards
// into a fresh in-memory database: partitioned tables are unioned
// across shards, replicated ones taken from the first healthy shard,
// and secondary indexes recreated. It is the correctness fallback
// for statement shapes the scatter planner cannot merge soundly
// (subqueries, DISTINCT aggregates, non-co-partitioned joins) and a
// rebalancing primitive in its own right.
func (c *Coordinator) GatherTables(ctx context.Context, names []string) (*store.DB, error) {
	healthy := c.healthy()
	if len(healthy) == 0 {
		return nil, &UnavailableError{Shards: c.deadShards()}
	}
	db, err := store.Open("")
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		first, err := c.shards[healthy[0]].DB().Table(name)
		if err != nil {
			return nil, err
		}
		tab, err := db.CreateTable(name, first.Schema())
		if err != nil {
			return nil, err
		}
		from := healthy
		if len(c.specs[name].keys) == 0 {
			from = healthy[:1]
		}
		for _, si := range from {
			st, err := c.shards[si].DB().Table(name)
			if err != nil {
				return nil, err
			}
			for _, r := range st.Snapshot() {
				if _, err := tab.Insert(r); err != nil {
					return nil, err
				}
			}
		}
		for _, ix := range first.Indexes() {
			if err := tab.CreateIndex(ix.Column, ix.Type); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// runFallback gathers every referenced table into a temporary
// database and runs the original statement on a local engine —
// reproducing single-node behavior (including its errors) exactly,
// at the cost of moving the data to the query.
func (c *Coordinator) runFallback(ctx context.Context, stmt *query.SelectStmt) (*query.Result, error) {
	names := referencedTables(stmt)
	db, err := c.GatherTables(ctx, names)
	if err != nil {
		return nil, err
	}
	eng := query.NewEngine(query.NewDBCatalog(db, c.tree), c.opts.QueryOptions)
	res, err := eng.Run(ctx, cloneStmt(stmt))
	if err != nil {
		return nil, err
	}
	if stmt.Explain {
		res.Plan = fmt.Sprintf("Gather [shards=%d pruned=0 mode=gather-fallback tables=%s]\n%s",
			len(c.healthy()), strings.Join(names, ","), indent(res.Plan))
	}
	return res, nil
}

// explain renders the scatter plan: the gather header with shard and
// pruning counts, then each participating shard's plan — annotated
// with per-operator rows/batches counters under EXPLAIN ANALYZE,
// which executes the shard statements in full.
func (c *Coordinator) explain(ctx context.Context, stmt *query.SelectStmt, pl *plan) (*query.Result, error) {
	if pl.class == classFallback {
		return c.runFallback(ctx, stmt)
	}
	shardStmt := stmt
	switch pl.class {
	case classScatterOrdered:
		shardStmt = pl.shardStmt
	case classPartialAgg:
		shardStmt = pl.agg.shardStmt
	}
	run := func(ctx context.Context, s *Shard) (*query.Result, error) {
		eng, ok := c.routeEngine(s)
		if !ok {
			return nil, &UnavailableError{Shards: []int{s.id}}
		}
		sub := cloneStmt(shardStmt)
		sub.Explain, sub.Analyze = true, stmt.Analyze
		return eng.Run(ctx, sub)
	}
	var results []*query.Result
	var err error
	if stmt.Analyze {
		results, err = c.scatter(ctx, pl.participate, run)
	} else {
		// Plain EXPLAIN never executes; plan each shard serially.
		for _, id := range pl.participate {
			r, rerr := c.runOne(ctx, c.shards[id], run)
			if rerr != nil {
				err = rerr
				break
			}
			results = append(results, r)
		}
	}
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString(gatherHeader(pl.class.String(), len(pl.participate), pl.pruned, len(pl.skipped)))
	for i, r := range results {
		fmt.Fprintf(&b, "\nshard %d:\n%s", pl.participate[i], indent(r.Plan))
	}
	out := &query.Result{Columns: results[0].Columns, Plan: b.String(), Stats: mergeStats(results)}
	return out, nil
}

// indent shifts every line of s right by two spaces.
func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n")
}
