package chem

import (
	"math/bits"
)

// FingerprintBits is the fixed width of ligand fingerprints. 1024 bits
// matches the classic Daylight-style path fingerprint size.
const FingerprintBits = 1024

// Fingerprint is a fixed-width bitset summarizing a molecule's linear
// paths. Similar molecules share many set bits, so Tanimoto similarity
// over fingerprints approximates structural similarity cheaply.
type Fingerprint [FingerprintBits / 64]uint64

// setBit sets bit i (mod width).
func (f *Fingerprint) setBit(h uint64) {
	i := h % FingerprintBits
	f[i/64] |= 1 << (i % 64)
}

// PopCount returns the number of set bits.
func (f *Fingerprint) PopCount() int {
	n := 0
	for _, w := range f {
		n += bits.OnesCount64(w)
	}
	return n
}

// Tanimoto returns |A∧B| / |A∨B| in [0,1]; two empty fingerprints
// score 1 (identical).
func (f *Fingerprint) Tanimoto(g *Fingerprint) float64 {
	var inter, union int
	for i := range f {
		inter += bits.OnesCount64(f[i] & g[i])
		union += bits.OnesCount64(f[i] | g[i])
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// maxPathLen is the maximum path length (in atoms) enumerated by the
// fingerprint, matching the common 7-atom Daylight default.
const maxPathLen = 7

// ComputeFingerprint enumerates all simple paths of up to maxPathLen
// atoms, hashes each path's element/bond string, and folds the hashes
// into the fixed-width bitset.
func (m *Mol) ComputeFingerprint() *Fingerprint {
	fp := &Fingerprint{}
	if len(m.Atoms) == 0 {
		return fp
	}
	visited := make([]bool, len(m.Atoms))
	var walk func(atom int, h uint64, depth int)
	walk = func(atom int, h uint64, depth int) {
		h = fnvMix(h, atomCode(&m.Atoms[atom]))
		fp.setBit(h)
		if depth >= maxPathLen {
			return
		}
		visited[atom] = true
		for _, bi := range m.adj[atom] {
			b := m.Bonds[bi]
			next := m.Other(b, atom)
			if visited[next] {
				continue
			}
			walk(next, fnvMix(h, uint64(b.Order)), depth+1)
		}
		visited[atom] = false
	}
	for a := range m.Atoms {
		walk(a, fnvOffset, 1)
	}
	return fp
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	h ^= v
	h *= fnvPrime
	return h
}

// atomCode packs an atom's identity into a hashable code.
func atomCode(a *Atom) uint64 {
	code := uint64(0)
	for i := 0; i < len(a.Element); i++ {
		code = code<<8 | uint64(a.Element[i])
	}
	if a.Aromatic {
		code |= 1 << 40
	}
	code ^= uint64(int64(a.Charge)+8) << 44
	return code
}
