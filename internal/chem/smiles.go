package chem

import (
	"fmt"
	"strconv"
)

// ParseSMILES parses a SMILES string covering the common subset:
// organic-subset atoms (B C N O P S F Cl Br I), aromatic lowercase
// forms (b c n o p s), bracket atoms with isotope/charge/H-count,
// bonds - = # :, branches with parentheses, and ring-closure digits
// (including %nn two-digit closures). Stereochemistry markers are not
// supported and are rejected rather than silently dropped.
func ParseSMILES(s string) (*Mol, error) {
	p := &smilesParser{src: s, mol: &Mol{SMILES: s}, rings: map[int]ringOpen{}}
	if err := p.parse(); err != nil {
		return nil, fmt.Errorf("chem: parsing %q: %w", s, err)
	}
	m := p.mol
	m.buildAdjacency()
	m.fillImplicitHydrogens()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

type ringOpen struct {
	atom int
	bond BondOrder // 0 means unspecified
}

type smilesParser struct {
	src   string
	pos   int
	mol   *Mol
	prev  int // last atom index, -1 before the first atom
	stack []int
	bond  BondOrder // pending bond symbol, 0 if none
	rings map[int]ringOpen
}

func (p *smilesParser) parse() error {
	p.prev = -1
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '(':
			if p.prev < 0 {
				return fmt.Errorf("branch before any atom at offset %d", p.pos)
			}
			p.stack = append(p.stack, p.prev)
			p.pos++
		case c == ')':
			if len(p.stack) == 0 {
				return fmt.Errorf("unmatched ')' at offset %d", p.pos)
			}
			p.prev = p.stack[len(p.stack)-1]
			p.stack = p.stack[:len(p.stack)-1]
			p.pos++
		case c == '-':
			p.bond = BondSingle
			p.pos++
		case c == '=':
			p.bond = BondDouble
			p.pos++
		case c == '#':
			p.bond = BondTriple
			p.pos++
		case c == ':':
			p.bond = BondAromatic
			p.pos++
		case c == '.':
			// Disconnected component separator.
			p.prev = -1
			p.bond = 0
			p.pos++
		case c >= '0' && c <= '9':
			if err := p.ringClosure(int(c - '0')); err != nil {
				return err
			}
			p.pos++
		case c == '%':
			if p.pos+2 >= len(p.src) {
				return fmt.Errorf("truncated %%nn ring closure at offset %d", p.pos)
			}
			n, err := strconv.Atoi(p.src[p.pos+1 : p.pos+3])
			if err != nil {
				return fmt.Errorf("bad %%nn ring closure at offset %d", p.pos)
			}
			if err := p.ringClosure(n); err != nil {
				return err
			}
			p.pos += 3
		case c == '[':
			if err := p.bracketAtom(); err != nil {
				return err
			}
		case c == '/' || c == '\\' || c == '@':
			return fmt.Errorf("stereochemistry marker %q not supported (offset %d)", c, p.pos)
		default:
			if err := p.organicAtom(); err != nil {
				return err
			}
		}
	}
	if len(p.stack) != 0 {
		return fmt.Errorf("unclosed '(' at end of input")
	}
	if len(p.rings) != 0 {
		return fmt.Errorf("unclosed ring bond at end of input")
	}
	if p.bond != 0 {
		return fmt.Errorf("dangling bond symbol at end of input")
	}
	return nil
}

// addAtom appends the atom, bonds it to prev (if any), and makes it
// the new prev.
func (p *smilesParser) addAtom(a Atom) {
	idx := len(p.mol.Atoms)
	p.mol.Atoms = append(p.mol.Atoms, a)
	if p.prev >= 0 {
		order := p.bond
		if order == 0 {
			if a.Aromatic && p.mol.Atoms[p.prev].Aromatic {
				order = BondAromatic
			} else {
				order = BondSingle
			}
		}
		p.mol.Bonds = append(p.mol.Bonds, Bond{A: p.prev, B: idx, Order: order})
	}
	p.bond = 0
	p.prev = idx
}

func (p *smilesParser) ringClosure(n int) error {
	if p.prev < 0 {
		return fmt.Errorf("ring closure before any atom at offset %d", p.pos)
	}
	if open, ok := p.rings[n]; ok {
		delete(p.rings, n)
		if open.atom == p.prev {
			return fmt.Errorf("ring bond %d closes onto its own atom", n)
		}
		order := p.bond
		if order == 0 {
			order = open.bond
		}
		if order == 0 {
			if p.mol.Atoms[open.atom].Aromatic && p.mol.Atoms[p.prev].Aromatic {
				order = BondAromatic
			} else {
				order = BondSingle
			}
		}
		p.mol.Bonds = append(p.mol.Bonds, Bond{A: open.atom, B: p.prev, Order: order})
		p.bond = 0
		return nil
	}
	p.rings[n] = ringOpen{atom: p.prev, bond: p.bond}
	p.bond = 0
	return nil
}

// organicAtom parses an unbracketed organic-subset atom.
func (p *smilesParser) organicAtom() error {
	c := p.src[p.pos]
	// Two-letter halogens first.
	if c == 'C' && p.pos+1 < len(p.src) && p.src[p.pos+1] == 'l' {
		p.addAtom(Atom{Element: "Cl"})
		p.pos += 2
		return nil
	}
	if c == 'B' && p.pos+1 < len(p.src) && p.src[p.pos+1] == 'r' {
		p.addAtom(Atom{Element: "Br"})
		p.pos += 2
		return nil
	}
	switch c {
	case 'B', 'C', 'N', 'O', 'P', 'S', 'F', 'I':
		p.addAtom(Atom{Element: string(c)})
	case 'b', 'c', 'n', 'o', 'p', 's':
		p.addAtom(Atom{Element: string(c - 'a' + 'A'), Aromatic: true})
	default:
		return fmt.Errorf("unexpected character %q at offset %d", c, p.pos)
	}
	p.pos++
	return nil
}

// bracketAtom parses "[isotope? symbol H-count? charge?]".
func (p *smilesParser) bracketAtom() error {
	start := p.pos
	p.pos++ // consume '['
	a := Atom{}
	// Isotope.
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		a.Isotope = a.Isotope*10 + int(p.src[p.pos]-'0')
		p.pos++
	}
	// Element symbol: uppercase + optional lowercase, or aromatic
	// lowercase single letter.
	if p.pos >= len(p.src) {
		return fmt.Errorf("truncated bracket atom at offset %d", start)
	}
	c := p.src[p.pos]
	switch {
	case c >= 'A' && c <= 'Z':
		sym := string(c)
		p.pos++
		if p.pos < len(p.src) && p.src[p.pos] >= 'a' && p.src[p.pos] <= 'z' {
			two := sym + string(p.src[p.pos])
			if _, ok := atomicWeights[two]; ok {
				sym = two
				p.pos++
			}
		}
		a.Element = sym
	case c >= 'a' && c <= 'z':
		a.Element = string(c - 'a' + 'A')
		a.Aromatic = true
		p.pos++
	default:
		return fmt.Errorf("bad element in bracket atom at offset %d", p.pos)
	}
	// Hydrogen count.
	if p.pos < len(p.src) && p.src[p.pos] == 'H' {
		p.pos++
		a.HCount = 1
		if p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			a.HCount = int(p.src[p.pos] - '0')
			p.pos++
		}
	}
	// Charge.
	for p.pos < len(p.src) && (p.src[p.pos] == '+' || p.src[p.pos] == '-') {
		sign := 1
		if p.src[p.pos] == '-' {
			sign = -1
		}
		p.pos++
		if p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			a.Charge += sign * int(p.src[p.pos]-'0')
			p.pos++
		} else {
			a.Charge += sign
		}
	}
	if p.pos >= len(p.src) || p.src[p.pos] != ']' {
		return fmt.Errorf("unterminated bracket atom at offset %d", start)
	}
	p.pos++
	// Bracket atoms use their written H count verbatim (zero when no
	// H token appears) and never receive implicit hydrogens.
	p.addAtom(a)
	p.mol.explicitH = append(p.mol.explicitH, len(p.mol.Atoms)-1)
	return nil
}

func (m *Mol) buildAdjacency() {
	m.adj = make([][]int, len(m.Atoms))
	for i, b := range m.Bonds {
		m.adj[b.A] = append(m.adj[b.A], i)
		m.adj[b.B] = append(m.adj[b.B], i)
	}
}

// fillImplicitHydrogens applies the organic-subset rule: implicit H =
// default valence − bond-order sum, floored at zero. Aromatic atoms
// get one fewer implicit hydrogen when the plain sum underestimates
// the aromatic system (the standard c1ccccc1 → benzene C6H6 result
// falls out of counting aromatic bonds as order 1 each plus one extra
// for the delocalized system on carbon with 2 aromatic neighbors...).
//
// Concretely: for an aromatic atom, the valence consumed is
// (number of bonds) + 1 (for its share of the π system).
func (m *Mol) fillImplicitHydrogens() {
	explicit := make([]bool, len(m.Atoms))
	for _, i := range m.explicitH {
		explicit[i] = true
	}
	for i := range m.Atoms {
		if explicit[i] {
			continue
		}
		m.Atoms[i].HCount = m.implicitHydrogens(i)
	}
}

// implicitHydrogens computes the organic-subset implicit hydrogen
// count the parser assigns to a bare atom at index i.
func (m *Mol) implicitHydrogens(i int) int {
	a := &m.Atoms[i]
	val, ok := defaultValence[a.Element]
	if !ok {
		return 0
	}
	used := 0
	aromatic := 0
	for _, bi := range m.adj[i] {
		b := m.Bonds[bi]
		if b.Order == BondAromatic {
			aromatic++
			used++
		} else {
			used += b.Order.order()
		}
	}
	if a.Aromatic && aromatic > 0 {
		used++ // π-system share
	}
	h := val - used
	if h < 0 {
		h = 0
	}
	return h
}
