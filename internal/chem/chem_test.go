package chem

import (
	"math"
	"testing"
)

func mustParse(t *testing.T, s string) *Mol {
	t.Helper()
	m, err := ParseSMILES(s)
	if err != nil {
		t.Fatalf("ParseSMILES(%q): %v", s, err)
	}
	return m
}

func TestParseMethane(t *testing.T) {
	m := mustParse(t, "C")
	if m.NumAtoms() != 1 || m.NumBonds() != 0 {
		t.Fatalf("atoms=%d bonds=%d", m.NumAtoms(), m.NumBonds())
	}
	if m.Atoms[0].HCount != 4 {
		t.Fatalf("methane H count = %d, want 4", m.Atoms[0].HCount)
	}
	if m.Formula() != "CH4" {
		t.Fatalf("formula = %q, want CH4", m.Formula())
	}
}

func TestParseEthanol(t *testing.T) {
	m := mustParse(t, "CCO")
	if m.Formula() != "C2H6O" {
		t.Fatalf("formula = %q, want C2H6O", m.Formula())
	}
	// Weight ≈ 46.07.
	if w := m.Weight(); math.Abs(w-46.07) > 0.05 {
		t.Fatalf("weight = %g, want ≈46.07", w)
	}
}

func TestParseDoubleTripleBonds(t *testing.T) {
	co2 := mustParse(t, "O=C=O")
	if co2.Formula() != "CO2" {
		t.Fatalf("CO2 formula = %q", co2.Formula())
	}
	hcn := mustParse(t, "C#N")
	if hcn.Formula() != "CHN" {
		t.Fatalf("HCN formula = %q", hcn.Formula())
	}
	if hcn.Bonds[0].Order != BondTriple {
		t.Fatalf("bond order = %v", hcn.Bonds[0].Order)
	}
}

func TestParseBranches(t *testing.T) {
	// Isobutane: CC(C)C → C4H10.
	m := mustParse(t, "CC(C)C")
	if m.Formula() != "C4H10" {
		t.Fatalf("isobutane formula = %q", m.Formula())
	}
	// tert-butanol: CC(C)(C)O → C4H10O.
	m2 := mustParse(t, "CC(C)(C)O")
	if m2.Formula() != "C4H10O" {
		t.Fatalf("tert-butanol formula = %q", m2.Formula())
	}
}

func TestParseCyclohexane(t *testing.T) {
	m := mustParse(t, "C1CCCCC1")
	if m.NumAtoms() != 6 || m.NumBonds() != 6 {
		t.Fatalf("atoms=%d bonds=%d, want 6/6", m.NumAtoms(), m.NumBonds())
	}
	if m.Formula() != "C6H12" {
		t.Fatalf("cyclohexane formula = %q", m.Formula())
	}
	if m.RingCount() != 1 {
		t.Fatalf("ring count = %d, want 1", m.RingCount())
	}
}

func TestParseBenzene(t *testing.T) {
	m := mustParse(t, "c1ccccc1")
	if m.Formula() != "C6H6" {
		t.Fatalf("benzene formula = %q, want C6H6", m.Formula())
	}
	for _, b := range m.Bonds {
		if b.Order != BondAromatic {
			t.Fatalf("benzene has non-aromatic bond %v", b)
		}
	}
	if m.RingCount() != 1 {
		t.Fatalf("ring count = %d", m.RingCount())
	}
}

func TestParsePyridineAndPhenol(t *testing.T) {
	// Pyridine c1ccncc1 → C5H5N.
	m := mustParse(t, "c1ccncc1")
	if m.Formula() != "C5H5N" {
		t.Fatalf("pyridine formula = %q, want C5H5N", m.Formula())
	}
	// Phenol c1ccccc1O → C6H6O.
	m2 := mustParse(t, "c1ccccc1O")
	if m2.Formula() != "C6H6O" {
		t.Fatalf("phenol formula = %q, want C6H6O", m2.Formula())
	}
}

func TestParseNaphthalene(t *testing.T) {
	m := mustParse(t, "c1ccc2ccccc2c1")
	if m.Formula() != "C10H8" {
		t.Fatalf("naphthalene formula = %q, want C10H8", m.Formula())
	}
	if m.RingCount() != 2 {
		t.Fatalf("ring count = %d, want 2", m.RingCount())
	}
}

func TestParseBracketAtoms(t *testing.T) {
	m := mustParse(t, "[NH4+]")
	a := m.Atoms[0]
	if a.Element != "N" || a.HCount != 4 || a.Charge != 1 {
		t.Fatalf("ammonium parsed as %+v", a)
	}
	m2 := mustParse(t, "[13CH4]")
	if m2.Atoms[0].Isotope != 13 || m2.Atoms[0].HCount != 4 {
		t.Fatalf("13C methane parsed as %+v", m2.Atoms[0])
	}
	m3 := mustParse(t, "[O-2]")
	if m3.Atoms[0].Charge != -2 {
		t.Fatalf("oxide charge = %d", m3.Atoms[0].Charge)
	}
	// Bracket atom without H gets none implicitly.
	m4 := mustParse(t, "[C]")
	if m4.Atoms[0].HCount != 0 {
		t.Fatalf("[C] H count = %d, want 0", m4.Atoms[0].HCount)
	}
}

func TestParseHalogens(t *testing.T) {
	m := mustParse(t, "ClCCBr")
	if m.Formula() != "C2H4BrCl" {
		t.Fatalf("formula = %q, want C2H4BrCl", m.Formula())
	}
}

func TestParseDisconnected(t *testing.T) {
	m := mustParse(t, "C.C")
	if m.NumAtoms() != 2 || m.NumBonds() != 0 {
		t.Fatalf("atoms=%d bonds=%d", m.NumAtoms(), m.NumBonds())
	}
	if m.RingCount() != 0 {
		t.Fatalf("ring count = %d", m.RingCount())
	}
}

func TestParsePercentRingClosure(t *testing.T) {
	// Same molecule as cyclohexane but via %12 closure.
	m := mustParse(t, "C%12CCCCC%12")
	if m.NumBonds() != 6 {
		t.Fatalf("bonds = %d, want 6", m.NumBonds())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"C(",      // unclosed branch
		"C)",      // unmatched close
		"C1CC",    // unclosed ring
		"C=",      // dangling bond
		"(C)C",    // branch before atom
		"C@H",     // stereo marker
		"[C",      // unterminated bracket
		"[]",      // empty bracket
		"Cx",      // unknown atom
		"C11",     // ring closes onto itself
		"%1C",     // truncated %nn
		"1CC",     // closure before atom
		"[Qq]",    // unsupported element
		"C/C=C/C", // cis/trans marker
	}
	for _, s := range bad {
		if _, err := ParseSMILES(s); err == nil {
			t.Errorf("ParseSMILES(%q) accepted", s)
		}
	}
}

func TestAspirinFormula(t *testing.T) {
	// Aspirin: CC(=O)Oc1ccccc1C(=O)O → C9H8O4, MW ≈ 180.16.
	m := mustParse(t, "CC(=O)Oc1ccccc1C(=O)O")
	if m.Formula() != "C9H8O4" {
		t.Fatalf("aspirin formula = %q, want C9H8O4", m.Formula())
	}
	if w := m.Weight(); math.Abs(w-180.16) > 0.1 {
		t.Fatalf("aspirin weight = %g, want ≈180.16", w)
	}
}

func TestCaffeineFormula(t *testing.T) {
	// Caffeine: Cn1cnc2c1c(=O)n(C)c(=O)n2C → C8H10N4O2.
	m := mustParse(t, "Cn1cnc2c1c(=O)n(C)c(=O)n2C")
	if m.Formula() != "C8H10N4O2" {
		t.Fatalf("caffeine formula = %q, want C8H10N4O2", m.Formula())
	}
}

func TestFingerprintSelfSimilarity(t *testing.T) {
	m := mustParse(t, "CC(=O)Oc1ccccc1C(=O)O")
	fp := m.ComputeFingerprint()
	if fp.PopCount() == 0 {
		t.Fatal("fingerprint is empty")
	}
	if sim := fp.Tanimoto(fp); sim != 1 {
		t.Fatalf("self Tanimoto = %g, want 1", sim)
	}
}

func TestFingerprintSimilarityOrdering(t *testing.T) {
	ethanol := mustParse(t, "CCO").ComputeFingerprint()
	propanol := mustParse(t, "CCCO").ComputeFingerprint()
	benzene := mustParse(t, "c1ccccc1").ComputeFingerprint()
	near := ethanol.Tanimoto(propanol)
	far := ethanol.Tanimoto(benzene)
	if near <= far {
		t.Fatalf("ethanol~propanol (%g) not more similar than ethanol~benzene (%g)", near, far)
	}
}

func TestFingerprintSymmetric(t *testing.T) {
	a := mustParse(t, "CC(C)Cc1ccc(cc1)C(C)C(=O)O").ComputeFingerprint() // ibuprofen
	b := mustParse(t, "CC(=O)Oc1ccccc1C(=O)O").ComputeFingerprint()      // aspirin
	if s1, s2 := a.Tanimoto(b), b.Tanimoto(a); s1 != s2 {
		t.Fatalf("Tanimoto asymmetric: %g vs %g", s1, s2)
	}
}

func TestTanimotoEmptyFingerprints(t *testing.T) {
	var a, b Fingerprint
	if s := a.Tanimoto(&b); s != 1 {
		t.Fatalf("empty Tanimoto = %g, want 1", s)
	}
}

func TestTanimotoRange(t *testing.T) {
	mols := []string{"C", "CCO", "c1ccccc1", "CC(=O)Oc1ccccc1C(=O)O", "C#N", "ClCCBr"}
	fps := make([]*Fingerprint, len(mols))
	for i, s := range mols {
		fps[i] = mustParse(t, s).ComputeFingerprint()
	}
	for i := range fps {
		for j := range fps {
			s := fps[i].Tanimoto(fps[j])
			if s < 0 || s > 1 {
				t.Fatalf("Tanimoto(%s,%s) = %g out of range", mols[i], mols[j], s)
			}
		}
	}
}

func TestValidateCatchesBadGraphs(t *testing.T) {
	m := &Mol{Atoms: []Atom{{Element: "C"}}, Bonds: []Bond{{A: 0, B: 0, Order: BondSingle}}}
	if err := m.Validate(); err == nil {
		t.Error("self-loop accepted")
	}
	m2 := &Mol{Atoms: []Atom{{Element: "C"}, {Element: "C"}},
		Bonds: []Bond{{A: 0, B: 1, Order: BondSingle}, {A: 1, B: 0, Order: BondDouble}}}
	if err := m2.Validate(); err == nil {
		t.Error("duplicate bond accepted")
	}
	m3 := &Mol{Atoms: []Atom{{Element: "C"}}, Bonds: []Bond{{A: 0, B: 5, Order: BondSingle}}}
	if err := m3.Validate(); err == nil {
		t.Error("out-of-range bond accepted")
	}
}

func TestBondOrderString(t *testing.T) {
	if BondSingle.String() != "-" || BondDouble.String() != "=" ||
		BondTriple.String() != "#" || BondAromatic.String() != ":" {
		t.Fatal("bond order strings wrong")
	}
}
