// Package chem provides the ligand-side substrate: a SMILES-subset
// parser producing molecular graphs, formula and weight computation,
// and path-based hashed fingerprints with Tanimoto similarity for
// ligand comparison queries.
package chem

import (
	"fmt"
	"sort"
	"strings"
)

// Atom is one vertex of a molecular graph.
type Atom struct {
	// Element is the element symbol with canonical capitalization
	// ("C", "Cl", "Br", ...).
	Element string
	// Aromatic marks atoms written lowercase in SMILES.
	Aromatic bool
	// Charge is the formal charge from a bracket expression.
	Charge int
	// HCount is the hydrogen count: explicit from brackets, otherwise
	// filled in by the implicit-hydrogen rule at parse time.
	HCount int
	// Isotope is the isotope number from a bracket expression, or 0.
	Isotope int
}

// BondOrder enumerates bond types.
type BondOrder uint8

const (
	BondSingle BondOrder = iota + 1
	BondDouble
	BondTriple
	BondAromatic
)

func (b BondOrder) String() string {
	switch b {
	case BondSingle:
		return "-"
	case BondDouble:
		return "="
	case BondTriple:
		return "#"
	case BondAromatic:
		return ":"
	}
	return "?"
}

// order returns the integral valence contribution of the bond
// (aromatic counts as 1; the aromatic system correction is applied
// separately, matching the Daylight implicit-H convention closely
// enough for formula purposes).
func (b BondOrder) order() int {
	switch b {
	case BondDouble:
		return 2
	case BondTriple:
		return 3
	default:
		return 1
	}
}

// Bond is one edge of a molecular graph.
type Bond struct {
	A, B  int // atom indices
	Order BondOrder
}

// Mol is a molecular graph parsed from SMILES.
type Mol struct {
	Atoms []Atom
	Bonds []Bond
	// adj[i] lists bond indices incident to atom i.
	adj [][]int
	// explicitH lists atom indices whose hydrogen count was written
	// explicitly in a bracket expression (never overwritten by the
	// implicit-hydrogen rule).
	explicitH []int
	// SMILES is the input string the molecule was parsed from.
	SMILES string
}

// atomicWeights holds standard atomic weights for the supported
// elements.
var atomicWeights = map[string]float64{
	"H": 1.008, "B": 10.81, "C": 12.011, "N": 14.007, "O": 15.999,
	"F": 18.998, "P": 30.974, "S": 32.06, "Cl": 35.45, "Br": 79.904,
	"I": 126.904, "Si": 28.085, "Se": 78.971, "Na": 22.990, "K": 39.098,
	"Li": 6.94, "Ca": 40.078, "Mg": 24.305, "Zn": 65.38, "Fe": 55.845,
}

// defaultValence gives the default valence used for implicit-hydrogen
// filling (Daylight organic-subset rules).
var defaultValence = map[string]int{
	"B": 3, "C": 4, "N": 3, "O": 2, "P": 3, "S": 2,
	"F": 1, "Cl": 1, "Br": 1, "I": 1,
}

// NumAtoms returns the number of heavy atoms.
func (m *Mol) NumAtoms() int { return len(m.Atoms) }

// NumBonds returns the number of bonds.
func (m *Mol) NumBonds() int { return len(m.Bonds) }

// Neighbors returns the bond indices incident to atom i.
func (m *Mol) Neighbors(i int) []int { return m.adj[i] }

// Other returns the atom at the far end of bond b from atom i.
func (m *Mol) Other(b Bond, i int) int {
	if b.A == i {
		return b.B
	}
	return b.A
}

// Weight returns the molecular weight including implicit and explicit
// hydrogens.
func (m *Mol) Weight() float64 {
	w := 0.0
	for _, a := range m.Atoms {
		w += atomicWeights[a.Element]
		w += float64(a.HCount) * atomicWeights["H"]
	}
	return w
}

// Formula returns the Hill-order molecular formula (C first, H second,
// then other elements alphabetically).
func (m *Mol) Formula() string {
	counts := map[string]int{}
	for _, a := range m.Atoms {
		counts[a.Element]++
		counts["H"] += a.HCount
	}
	var b strings.Builder
	emit := func(el string) {
		n := counts[el]
		if n == 0 {
			return
		}
		b.WriteString(el)
		if n > 1 {
			fmt.Fprintf(&b, "%d", n)
		}
		delete(counts, el)
	}
	emit("C")
	emit("H")
	rest := make([]string, 0, len(counts))
	for el := range counts {
		rest = append(rest, el)
	}
	sort.Strings(rest)
	for _, el := range rest {
		emit(el)
	}
	return b.String()
}

// RingCount returns the cyclomatic number (bonds - atoms + components),
// the number of independent rings.
func (m *Mol) RingCount() int {
	if len(m.Atoms) == 0 {
		return 0
	}
	seen := make([]bool, len(m.Atoms))
	components := 0
	var stack []int
	for s := range m.Atoms {
		if seen[s] {
			continue
		}
		components++
		stack = append(stack[:0], s)
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, bi := range m.adj[v] {
				o := m.Other(m.Bonds[bi], v)
				if !seen[o] {
					seen[o] = true
					stack = append(stack, o)
				}
			}
		}
	}
	return len(m.Bonds) - len(m.Atoms) + components
}

// Validate checks graph invariants: bond endpoints in range, no
// self-bonds, no duplicate bonds, adjacency consistency.
func (m *Mol) Validate() error {
	type pair struct{ a, b int }
	seen := map[pair]bool{}
	for i, b := range m.Bonds {
		if b.A < 0 || b.A >= len(m.Atoms) || b.B < 0 || b.B >= len(m.Atoms) {
			return fmt.Errorf("chem: bond %d endpoints out of range", i)
		}
		if b.A == b.B {
			return fmt.Errorf("chem: bond %d is a self-loop on atom %d", i, b.A)
		}
		p := pair{b.A, b.B}
		if p.a > p.b {
			p.a, p.b = p.b, p.a
		}
		if seen[p] {
			return fmt.Errorf("chem: duplicate bond between %d and %d", p.a, p.b)
		}
		seen[p] = true
	}
	for i, a := range m.Atoms {
		if _, ok := atomicWeights[a.Element]; !ok {
			return fmt.Errorf("chem: atom %d has unsupported element %q", i, a.Element)
		}
		if a.HCount < 0 {
			return fmt.Errorf("chem: atom %d has negative hydrogen count", i)
		}
	}
	return nil
}
