package chem

import (
	"testing"
)

// roundTrip writes and re-parses a molecule, asserting graph-level
// equivalence: same atom/bond counts, formula, weight and fingerprint.
func roundTrip(t *testing.T, src string) {
	t.Helper()
	m1, err := ParseSMILES(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	out, err := m1.WriteSMILES()
	if err != nil {
		t.Fatalf("write %q: %v", src, err)
	}
	m2, err := ParseSMILES(out)
	if err != nil {
		t.Fatalf("re-parse %q (from %q): %v", out, src, err)
	}
	if m1.NumAtoms() != m2.NumAtoms() || m1.NumBonds() != m2.NumBonds() {
		t.Fatalf("%q → %q: graph shape changed (%d/%d atoms, %d/%d bonds)",
			src, out, m1.NumAtoms(), m2.NumAtoms(), m1.NumBonds(), m2.NumBonds())
	}
	if f1, f2 := m1.Formula(), m2.Formula(); f1 != f2 {
		t.Fatalf("%q → %q: formula %s → %s", src, out, f1, f2)
	}
	if m1.ComputeFingerprint().Tanimoto(m2.ComputeFingerprint()) != 1 {
		t.Fatalf("%q → %q: fingerprints differ", src, out)
	}
}

func TestWriteSMILESRoundTrip(t *testing.T) {
	for _, src := range []string{
		"C",
		"CCO",
		"O=C=O",
		"C#N",
		"CC(C)C",
		"CC(C)(C)O",
		"C1CCCCC1",
		"c1ccccc1",
		"c1ccncc1",
		"c1ccc2ccccc2c1",
		"CC(=O)Oc1ccccc1C(=O)O",
		"Cn1cnc2c1c(=O)n(C)c(=O)n2C",
		"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
		"ClCCBr",
		"C.C",
		"[NH4+]",
		"[13CH4]",
		"[O-2]",
		"[C]",
		"[CH2]",
	} {
		roundTrip(t, src)
	}
}

func TestWriteSMILESEmptyRejected(t *testing.T) {
	if _, err := (&Mol{}).WriteSMILES(); err == nil {
		t.Fatal("empty molecule serialized")
	}
}

func TestWriteSMILESDoubleRoundTripStable(t *testing.T) {
	// Writing twice yields the same string (the writer is
	// deterministic over a parsed graph).
	src := "CC(=O)Oc1ccccc1C(=O)O"
	m, _ := ParseSMILES(src)
	w1, err := m.WriteSMILES()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ParseSMILES(w1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := m2.WriteSMILES()
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Fatalf("unstable writer: %q vs %q", w1, w2)
	}
}
