package chem

import "testing"

var benchSMILES = []string{
	"CC(=O)Oc1ccccc1C(=O)O",         // aspirin
	"Cn1cnc2c1c(=O)n(C)c(=O)n2C",    // caffeine
	"CC(C)Cc1ccc(cc1)C(C)C(=O)O",    // ibuprofen
	"c1ccc2ccccc2c1",                // naphthalene
	"CC(C)(C)NCC(O)c1ccc(O)c(CO)c1", // salbutamol-ish
}

func BenchmarkParseSMILES(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseSMILES(benchSMILES[i%len(benchSMILES)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFingerprint(b *testing.B) {
	mols := make([]*Mol, len(benchSMILES))
	for i, s := range benchSMILES {
		m, err := ParseSMILES(s)
		if err != nil {
			b.Fatal(err)
		}
		mols[i] = m
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mols[i%len(mols)].ComputeFingerprint()
	}
}

func BenchmarkTanimoto(b *testing.B) {
	m1, _ := ParseSMILES(benchSMILES[0])
	m2, _ := ParseSMILES(benchSMILES[2])
	f1 := m1.ComputeFingerprint()
	f2 := m2.ComputeFingerprint()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f1.Tanimoto(f2)
	}
}
