package chem

import (
	"fmt"
	"strings"
)

// WriteSMILES serializes the molecular graph back to SMILES: a DFS
// spanning forest with ring-closure digits for the non-tree bonds.
// The output is not the canonical form of the input string, but it
// parses back (ParseSMILES) to a graph with the same atoms, bonds,
// formula and fingerprint — the property the tests pin down.
func (m *Mol) WriteSMILES() (string, error) {
	if len(m.Atoms) == 0 {
		return "", fmt.Errorf("chem: empty molecule")
	}
	// Assign ring-closure numbers to non-tree bonds discovered by a
	// DFS over each connected component.
	visited := make([]bool, len(m.Atoms))
	bondUsed := make([]bool, len(m.Bonds))
	type closure struct {
		digit int
		order BondOrder
	}
	closures := make(map[int][]closure, 4) // atom → pending closures
	nextDigit := 1

	var sb strings.Builder
	var walk func(atom, fromBond int) error
	walk = func(atom, fromBond int) error {
		visited[atom] = true
		sb.WriteString(m.atomToken(atom))
		for _, cl := range closures[atom] {
			sb.WriteString(bondToken(cl.order, &m.Atoms[atom], &m.Atoms[atom]))
			sb.WriteString(closureToken(cl.digit))
		}
		// Collect outgoing tree edges; every non-tree bond was marked
		// used by the closure pre-pass, so each remaining edge leads
		// to an unvisited atom.
		type edge struct {
			bondIdx int
			next    int
		}
		var tree []edge
		for _, bi := range m.adj[atom] {
			if bi == fromBond || bondUsed[bi] {
				continue
			}
			tree = append(tree, edge{bi, m.Other(m.Bonds[bi], atom)})
		}
		for i, e := range tree {
			bondUsed[e.bondIdx] = true
			b := m.Bonds[e.bondIdx]
			branch := i < len(tree)-1
			if branch {
				sb.WriteByte('(')
			}
			sb.WriteString(bondToken(b.Order, &m.Atoms[atom], &m.Atoms[e.next]))
			if err := walk(e.next, e.bondIdx); err != nil {
				return err
			}
			if branch {
				sb.WriteByte(')')
			}
		}
		return nil
	}

	// Pre-pass: find non-tree (ring) bonds via a DFS that marks tree
	// bonds, then assign closure digits to both endpoints.
	treeBond := make([]bool, len(m.Bonds))
	seen := make([]bool, len(m.Atoms))
	var mark func(atom int)
	mark = func(atom int) {
		seen[atom] = true
		for _, bi := range m.adj[atom] {
			next := m.Other(m.Bonds[bi], atom)
			if !seen[next] {
				treeBond[bi] = true
				mark(next)
			}
		}
	}
	for a := range m.Atoms {
		if !seen[a] {
			mark(a)
		}
	}
	for bi, b := range m.Bonds {
		if treeBond[bi] {
			continue
		}
		if nextDigit > 99 {
			return "", fmt.Errorf("chem: more than 99 ring closures")
		}
		closures[b.A] = append(closures[b.A], closure{nextDigit, b.Order})
		closures[b.B] = append(closures[b.B], closure{nextDigit, b.Order})
		bondUsed[bi] = true // never walked as a tree edge
		nextDigit++
	}

	first := true
	for a := range m.Atoms {
		if visited[a] {
			continue
		}
		if !first {
			sb.WriteByte('.')
		}
		first = false
		if err := walk(a, -1); err != nil {
			return "", err
		}
	}
	return sb.String(), nil
}

// atomToken renders the atom at index i. Organic-subset atoms whose
// hydrogen count matches what a bare token would re-derive print
// bare; everything else gets brackets (so explicit-H bracket atoms
// like [CH2] round-trip exactly).
func (m *Mol) atomToken(i int) string {
	a := &m.Atoms[i]
	_, organic := defaultValence[a.Element]
	if organic && a.Charge == 0 && a.Isotope == 0 && a.HCount == m.implicitHydrogens(i) {
		if a.Aromatic {
			return strings.ToLower(a.Element)
		}
		return a.Element
	}
	var sb strings.Builder
	sb.WriteByte('[')
	if a.Isotope > 0 {
		fmt.Fprintf(&sb, "%d", a.Isotope)
	}
	if a.Aromatic {
		sb.WriteString(strings.ToLower(a.Element))
	} else {
		sb.WriteString(a.Element)
	}
	if a.HCount == 1 {
		sb.WriteByte('H')
	} else if a.HCount > 1 {
		fmt.Fprintf(&sb, "H%d", a.HCount)
	}
	switch {
	case a.Charge == 1:
		sb.WriteByte('+')
	case a.Charge == -1:
		sb.WriteByte('-')
	case a.Charge > 1:
		fmt.Fprintf(&sb, "+%d", a.Charge)
	case a.Charge < -1:
		fmt.Fprintf(&sb, "-%d", -a.Charge)
	}
	sb.WriteByte(']')
	return sb.String()
}

// bondToken renders the bond symbol between two atoms; single and
// aromatic-between-aromatics are implicit.
func bondToken(o BondOrder, from, to *Atom) string {
	switch o {
	case BondDouble:
		return "="
	case BondTriple:
		return "#"
	case BondAromatic:
		if from.Aromatic && to.Aromatic {
			return ""
		}
		return ":"
	}
	return ""
}

func closureToken(digit int) string {
	if digit < 10 {
		return fmt.Sprint(digit)
	}
	return fmt.Sprintf("%%%02d", digit)
}
