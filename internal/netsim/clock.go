package netsim

import (
	"sync"
	"time"
)

// Clock abstracts elapsed time for the resilience layer: fault
// schedules, retry backoff, and circuit-breaker cooldowns all read and
// advance time through it, so experiments can run scripted failure
// timelines on a virtual clock (instantly, deterministically) while
// production code uses the wall clock.
type Clock interface {
	// Now returns monotonic elapsed time since the clock's origin.
	Now() time.Duration
	// Sleep blocks for d (wall clock) or advances the timeline by d
	// (virtual clock).
	Sleep(d time.Duration)
}

// VirtualClock is a manually driven Clock: Sleep advances it, and a
// harness can also move it forward explicitly with AdvanceTo. It is
// safe for concurrent use.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewVirtualClock returns a virtual clock at time zero.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now implements Clock.
func (c *VirtualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the clock by d without blocking.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// AdvanceTo moves the clock forward to t; it never moves backwards
// (a sleep may already have carried the timeline past t).
func (c *VirtualClock) AdvanceTo(t time.Duration) {
	c.mu.Lock()
	if t > c.now {
		c.now = t
	}
	c.mu.Unlock()
}

// wallClock implements Clock over real time.
type wallClock struct{ origin time.Time }

// NewWallClock returns a Clock reading real elapsed time from now.
func NewWallClock() Clock { return &wallClock{origin: time.Now()} }

func (c *wallClock) Now() time.Duration    { return time.Since(c.origin) }
func (c *wallClock) Sleep(d time.Duration) { time.Sleep(d) }

// linkClock adapts a Link to the Clock interface: Now reads the link's
// accumulated timeline and Sleep charges idle time to it (advancing
// the virtual clock in simulated mode, sleeping in real mode). It is
// the default clock of a simulated source: backoff waits show up on
// the same timeline as request costs.
type linkClock struct{ link *Link }

// LinkClock returns a Clock backed by the link's timeline.
func LinkClock(l *Link) Clock { return &linkClock{link: l} }

func (c *linkClock) Now() time.Duration    { return c.link.Now() }
func (c *linkClock) Sleep(d time.Duration) { c.link.Advance(d) }
