// Package netsim models network links deterministically so that
// remote-source access cost and mobile interaction latency are
// reproducible across benchmark runs.
//
// Two abstractions are provided:
//
//   - Link: a request/response cost model. Callers ask "how long does
//     moving N bytes take?" and either sleep for that duration (real
//     elapsed-time experiments) or accumulate it on a virtual clock
//     (fast simulated-time experiments).
//   - Conn: a net.Conn wrapper that injects the Link's latency and
//     bandwidth shaping into a real byte stream, used by the mobile
//     wire protocol tests and demos.
package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Profile describes a link's characteristics.
type Profile struct {
	// Name identifies the profile in reports.
	Name string
	// RTT is the round-trip time; each request pays RTT/2 in each
	// direction before the first byte moves.
	RTT time.Duration
	// DownBps and UpBps are bandwidths in bytes per second.
	DownBps int64
	UpBps   int64
	// Jitter is the max random extra latency added per direction,
	// uniformly distributed in [0, Jitter].
	Jitter time.Duration
	// LossPct is the probability (0..1) that a message must be
	// retransmitted once (modelled as paying RTT again).
	LossPct float64
}

// Standard profiles used throughout the experiments. Values follow
// commonly cited 2013-era figures for cellular and local links.
var (
	ProfileLAN  = Profile{Name: "LAN", RTT: 500 * time.Microsecond, DownBps: 125_000_000, UpBps: 125_000_000}
	ProfileWiFi = Profile{Name: "WiFi", RTT: 5 * time.Millisecond, DownBps: 6_250_000, UpBps: 6_250_000, Jitter: 2 * time.Millisecond}
	Profile4G   = Profile{Name: "4G", RTT: 50 * time.Millisecond, DownBps: 1_500_000, UpBps: 750_000, Jitter: 10 * time.Millisecond, LossPct: 0.005}
	Profile3G   = Profile{Name: "3G", RTT: 150 * time.Millisecond, DownBps: 250_000, UpBps: 100_000, Jitter: 30 * time.Millisecond, LossPct: 0.02}
	Profile2G   = Profile{Name: "2G", RTT: 400 * time.Millisecond, DownBps: 20_000, UpBps: 10_000, Jitter: 80 * time.Millisecond, LossPct: 0.05}
)

// Profiles lists the standard profiles from fastest to slowest.
func Profiles() []Profile {
	return []Profile{ProfileLAN, ProfileWiFi, Profile4G, Profile3G, Profile2G}
}

// ProfileByName returns the named standard profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("netsim: unknown profile %q", name)
}

// Link is a deterministic cost model over a Profile. It is safe for
// concurrent use; the random stream is protected by a mutex so
// concurrent callers still see a reproducible *set* of delays for a
// given seed (order may vary under the Go scheduler).
type Link struct {
	profile Profile

	mu  sync.Mutex
	rng *rand.Rand

	// virtual clock accumulation (SimulatedTime mode)
	simulated bool
	simNow    time.Duration

	bytesDown int64
	bytesUp   int64
	requests  int64
}

// NewLink creates a link over profile with a seeded random stream.
// When simulated is true, Wait* calls advance a virtual clock instead
// of sleeping, so experiments over slow profiles run instantly.
func NewLink(profile Profile, seed int64, simulated bool) *Link {
	return &Link{
		profile:   profile,
		rng:       rand.New(rand.NewSource(seed)),
		simulated: simulated,
	}
}

// Profile returns the link's profile.
func (l *Link) Profile() Profile { return l.profile }

// Simulated reports whether the link advances a virtual clock rather
// than sleeping.
func (l *Link) Simulated() bool { return l.simulated }

// transferTime computes the one-way cost of moving n bytes at bps
// including half-RTT, jitter, and possible retransmission.
func (l *Link) transferTime(n int64, bps int64) time.Duration {
	p := l.profile
	d := p.RTT / 2
	if bps > 0 && n > 0 {
		d += time.Duration(float64(n) / float64(bps) * float64(time.Second))
	}
	if p.Jitter > 0 {
		d += time.Duration(l.rng.Int63n(int64(p.Jitter) + 1))
	}
	if p.LossPct > 0 && l.rng.Float64() < p.LossPct {
		d += p.RTT
	}
	return d
}

// RequestCost returns the modelled duration of a full request/response
// exchange sending reqBytes up and receiving respBytes down, and
// records the traffic. It advances the virtual clock or sleeps
// depending on the link mode.
func (l *Link) RequestCost(reqBytes, respBytes int64) time.Duration {
	l.mu.Lock()
	d := l.transferTime(reqBytes, l.profile.UpBps) + l.transferTime(respBytes, l.profile.DownBps)
	l.bytesUp += reqBytes
	l.bytesDown += respBytes
	l.requests++
	if l.simulated {
		l.simNow += d
		l.mu.Unlock()
		return d
	}
	l.mu.Unlock()
	time.Sleep(d)
	return d
}

// Advance charges d of non-transfer time to the link's timeline: in
// simulated mode the virtual clock moves forward instantly; in real
// mode the caller sleeps. Retry backoff and brownout penalties use it
// so waiting appears on the same timeline as request costs.
func (l *Link) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	l.mu.Lock()
	if l.simulated {
		l.simNow += d
		l.mu.Unlock()
		return
	}
	l.mu.Unlock()
	time.Sleep(d)
}

// Now returns the virtual clock value (simulated mode only); in real
// mode it returns the accumulated cost that RequestCost charged.
func (l *Link) Now() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.simNow
}

// Stats reports the traffic moved over the link so far.
func (l *Link) Stats() (requests, bytesUp, bytesDown int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.requests, l.bytesUp, l.bytesDown
}

// ResetStats zeroes the traffic counters and virtual clock.
func (l *Link) ResetStats() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.requests, l.bytesUp, l.bytesDown, l.simNow = 0, 0, 0, 0
}
