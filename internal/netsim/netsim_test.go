package netsim

import (
	"bytes"
	"io"
	"testing"
	"time"
)

func TestProfileByName(t *testing.T) {
	for _, want := range Profiles() {
		got, err := ProfileByName(want.Name)
		if err != nil {
			t.Fatalf("ProfileByName(%q): %v", want.Name, err)
		}
		if got.RTT != want.RTT {
			t.Errorf("%s RTT = %v, want %v", want.Name, got.RTT, want.RTT)
		}
	}
	if _, err := ProfileByName("5G"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestSimulatedLinkDeterministic(t *testing.T) {
	run := func() (time.Duration, int64, int64) {
		l := NewLink(Profile3G, 42, true)
		for i := 0; i < 100; i++ {
			l.RequestCost(200, 4096)
		}
		_, up, down := l.Stats()
		return l.Now(), up, down
	}
	t1, up1, down1 := run()
	t2, up2, down2 := run()
	if t1 != t2 || up1 != up2 || down1 != down2 {
		t.Fatalf("same seed diverged: %v/%d/%d vs %v/%d/%d", t1, up1, down1, t2, up2, down2)
	}
	if up1 != 100*200 || down1 != 100*4096 {
		t.Fatalf("traffic counters wrong: up=%d down=%d", up1, down1)
	}
}

func TestSimulatedLinkDoesNotSleep(t *testing.T) {
	l := NewLink(Profile2G, 1, true)
	start := time.Now()
	for i := 0; i < 1000; i++ {
		l.RequestCost(100, 100000)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("simulated link slept: %v elapsed", elapsed)
	}
	if l.Now() < time.Second {
		t.Fatalf("2G virtual time for 1000 large requests = %v, want ≥ 1s", l.Now())
	}
}

func TestRequestCostScalesWithBytes(t *testing.T) {
	// No jitter/loss profile so costs are exact.
	p := Profile{Name: "test", RTT: 10 * time.Millisecond, DownBps: 1000, UpBps: 1000}
	l := NewLink(p, 0, true)
	small := l.RequestCost(0, 100)  // 100 bytes at 1000 B/s = 100ms + RTT
	large := l.RequestCost(0, 1000) // 1s + RTT
	if small != 110*time.Millisecond {
		t.Errorf("small request = %v, want 110ms", small)
	}
	if large != 1010*time.Millisecond {
		t.Errorf("large request = %v, want 1010ms", large)
	}
}

func TestLinkResetStats(t *testing.T) {
	l := NewLink(ProfileLAN, 0, true)
	l.RequestCost(10, 10)
	l.ResetStats()
	req, up, down := l.Stats()
	if req != 0 || up != 0 || down != 0 || l.Now() != 0 {
		t.Fatalf("reset incomplete: %d/%d/%d/%v", req, up, down, l.Now())
	}
}

func TestFasterProfilesAreFaster(t *testing.T) {
	cost := func(p Profile) time.Duration {
		// Strip jitter/loss so the comparison is deterministic.
		p.Jitter = 0
		p.LossPct = 0
		l := NewLink(p, 0, true)
		return l.RequestCost(512, 64*1024)
	}
	lan, wifi, g4, g3, g2 := cost(ProfileLAN), cost(ProfileWiFi), cost(Profile4G), cost(Profile3G), cost(Profile2G)
	if !(lan < wifi && wifi < g4 && g4 < g3 && g3 < g2) {
		t.Fatalf("profile ordering broken: %v %v %v %v %v", lan, wifi, g4, g3, g2)
	}
}

func TestLinkAccessors(t *testing.T) {
	l := NewLink(Profile3G, 1, true)
	if l.Profile().Name != "3G" || !l.Simulated() {
		t.Fatalf("accessors: %v %v", l.Profile().Name, l.Simulated())
	}
}

func TestShapedConnReadPath(t *testing.T) {
	// Data flowing server→client passes the shaped Read: delivery
	// must pay the downlink latency.
	link := NewLink(Profile{Name: "slow", RTT: 60 * time.Millisecond, DownBps: 1 << 30, UpBps: 1 << 30}, 0, false)
	client, server := Pipe(link)
	defer client.Close()
	defer server.Close()
	go server.Write([]byte("response!"))
	start := time.Now()
	buf := make([]byte, 9)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("shaped read took %v, want ≥ 25ms", elapsed)
	}
	_, _, down := link.Stats()
	if down != 9 {
		t.Fatalf("downlink bytes = %d, want 9", down)
	}
}

func TestShapedConnDelivers(t *testing.T) {
	link := NewLink(Profile{Name: "fast", RTT: time.Millisecond, DownBps: 1 << 30, UpBps: 1 << 30}, 0, false)
	client, server := Pipe(link)
	defer client.Close()
	defer server.Close()

	msg := []byte("hello drugtree")
	errc := make(chan error, 1)
	go func() {
		_, err := client.Write(msg)
		errc <- err
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("got %q, want %q", buf, msg)
	}
	_, up, _ := link.Stats()
	if up != int64(len(msg)) {
		t.Fatalf("uplink bytes = %d, want %d", up, len(msg))
	}
}

func TestShapedConnImposesLatency(t *testing.T) {
	link := NewLink(Profile{Name: "slow", RTT: 60 * time.Millisecond, DownBps: 1 << 30, UpBps: 1 << 30}, 0, false)
	client, server := Pipe(link)
	defer client.Close()
	defer server.Close()

	start := time.Now()
	go client.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("one-way delivery took %v, want ≥ 25ms (half of 60ms RTT)", elapsed)
	}
}
