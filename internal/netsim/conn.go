package netsim

import (
	"net"
	"sync"
	"time"
)

// Conn wraps a net.Conn and shapes traffic according to a Link
// profile: each Write pays half-RTT latency once per message plus a
// bandwidth-proportional serialization delay. It is used to run the
// real mobile wire protocol over an in-process net.Pipe while still
// observing cellular-like timing.
type Conn struct {
	net.Conn
	link *Link

	mu        sync.Mutex
	writeBusy time.Time // when the uplink frees up
	readBusy  time.Time // when the downlink frees up
}

// NewConn wraps inner with the link's shaping. The link must be in
// real (non-simulated) mode; a simulated link has no meaningful
// relationship to wall-clock I/O.
func NewConn(inner net.Conn, link *Link) *Conn {
	return &Conn{Conn: inner, link: link}
}

// shape computes the wall-clock delay a message of n bytes must wait
// before delivery, modelling a serialized link: messages queue behind
// previous ones (busy-until bookkeeping) and each pays latency.
func (c *Conn) shape(n int, bps int64, busy *time.Time) time.Duration {
	c.link.mu.Lock()
	d := c.link.transferTime(int64(n), bps)
	c.link.mu.Unlock()

	c.mu.Lock()
	now := time.Now()
	start := now
	if busy.After(now) {
		start = *busy
	}
	done := start.Add(d)
	*busy = done
	c.mu.Unlock()
	return done.Sub(now)
}

// Write delays by the uplink cost of the payload, then writes to the
// underlying connection.
func (c *Conn) Write(p []byte) (int, error) {
	delay := c.shape(len(p), c.link.profile.UpBps, &c.writeBusy)
	time.Sleep(delay)
	c.link.mu.Lock()
	c.link.bytesUp += int64(len(p))
	c.link.mu.Unlock()
	return c.Conn.Write(p)
}

// Read reads from the underlying connection and then delays by the
// downlink cost of the data actually received, modelling arrival time.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		delay := c.shape(n, c.link.profile.DownBps, &c.readBusy)
		time.Sleep(delay)
		c.link.mu.Lock()
		c.link.bytesDown += int64(n)
		c.link.mu.Unlock()
	}
	return n, err
}

// Pipe returns both ends of an in-process connection where the client
// side is shaped by link. The server end is unshaped (the asymmetry
// models a well-connected server talking to a mobile client; shaping
// one side is sufficient to impose the link cost on every exchange).
func Pipe(link *Link) (client net.Conn, server net.Conn) {
	a, b := net.Pipe()
	return NewConn(a, link), b
}
