package netsim

import (
	"io"
	"testing"
	"time"
)

func TestShapedConnBandwidth(t *testing.T) {
	// 64 KiB over a 1 MiB/s downlink must take ≥ ~50ms beyond RTT.
	link := NewLink(Profile{
		Name: "narrow", RTT: time.Millisecond,
		DownBps: 1 << 20, UpBps: 1 << 20,
	}, 0, false)
	client, server := Pipe(link)
	defer client.Close()
	defer server.Close()

	payload := make([]byte, 64<<10)
	go func() {
		client.Write(payload)
	}()
	start := time.Now()
	buf := make([]byte, len(payload))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 64 KiB at 1 MiB/s = 62.5ms serialization.
	if elapsed < 40*time.Millisecond {
		t.Fatalf("64KiB over 1MiB/s took %v, want ≥ 40ms", elapsed)
	}
}

func TestShapedConnQueuesSequentialWrites(t *testing.T) {
	// Two back-to-back writes serialize: the second waits for the
	// first's transmission slot (busy-until bookkeeping).
	link := NewLink(Profile{
		Name: "narrow", RTT: 0,
		DownBps: 1 << 30, UpBps: 256 << 10, // 256 KiB/s uplink
	}, 0, false)
	client, server := Pipe(link)
	defer client.Close()
	defer server.Close()

	done := make(chan time.Duration, 1)
	go func() {
		start := time.Now()
		client.Write(make([]byte, 32<<10)) // 125ms at 256KiB/s
		client.Write(make([]byte, 32<<10)) // queued behind the first
		done <- time.Since(start)
	}()
	buf := make([]byte, 64<<10)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := <-done; elapsed < 180*time.Millisecond {
		t.Fatalf("two queued 32KiB writes took %v, want ≥ 180ms", elapsed)
	}
}
